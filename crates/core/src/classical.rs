//! The classical (flat, non-nested) serialization-graph test, as presented
//! in Bernstein–Hadzilacos–Goodman and Papadimitriou — the baseline the
//! paper generalizes.
//!
//! Nodes are the committed top-level transactions (children of `T0`); there
//! is an edge `Ti → Tj` when some committed access of `Ti` conflicts with a
//! later committed access of `Tj`. Conflicts are read/write. The classical
//! theory considers the *committed projection* only and knows nothing about
//! nesting: accesses anywhere in a subtree are attributed to the top-level
//! ancestor. Used by experiment E8 to compare the nested construction
//! against its classical ancestor on flat workloads, and to show that the
//! nested construction coincides with the classical one when nesting is
//! trivial.

use nt_model::seq::Status;
use nt_model::{Action, ObjId, TxId, TxTree};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The classical serialization graph over top-level transactions.
#[derive(Clone, Debug, Default)]
pub struct ClassicalSg {
    /// Adjacency between top-level transactions.
    pub succ: BTreeMap<TxId, BTreeSet<TxId>>,
    /// All node names (committed top-level transactions with accesses).
    pub nodes: BTreeSet<TxId>,
}

impl ClassicalSg {
    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succ.values().map(BTreeSet::len).sum()
    }

    /// Is the graph acyclic (the classical criterion for conflict
    /// serializability of the committed projection)?
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm.
        let mut indeg: BTreeMap<TxId, usize> = self.nodes.iter().map(|&n| (n, 0)).collect();
        for succs in self.succ.values() {
            for &t in succs {
                *indeg.entry(t).or_insert(0) += 1;
            }
        }
        let mut ready: Vec<TxId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut seen = 0usize;
        while let Some(n) = ready.pop() {
            seen += 1;
            if let Some(succs) = self.succ.get(&n) {
                for &m in succs {
                    let d = indeg
                        .get_mut(&m)
                        .expect("every edge target got an indeg entry in the seeding loop");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(m);
                    }
                }
            }
        }
        seen == self.nodes.len()
    }
}

/// Build the classical serialization graph of `beta`'s committed
/// projection: each access is attributed to its top-level ancestor, and two
/// committed accesses to the same object conflict unless both are reads.
pub fn build_classical_sg(tree: &TxTree, beta: &[Action]) -> ClassicalSg {
    let status = Status::of(tree, beta);
    let mut g = ClassicalSg::default();
    // Committed-projection accesses in order: (top-level tx, object, is_write).
    let mut per_object: HashMap<ObjId, Vec<(TxId, bool)>> = HashMap::new();
    for a in beta {
        if let Action::RequestCommit(t, _) = a {
            let Some(x) = tree.object_of(*t) else {
                continue;
            };
            // Committed projection: the access and its whole chain committed.
            if !status.is_visible(tree, *t, TxId::ROOT) {
                continue;
            }
            let top = if tree.parent(*t) == Some(TxId::ROOT) {
                *t
            } else {
                tree.child_toward(TxId::ROOT, *t)
            };
            let is_write = tree.op_of(*t).is_some_and(|op| !op.is_observer());
            g.nodes.insert(top);
            per_object.entry(x).or_default().push((top, is_write));
        }
    }
    for events in per_object.values() {
        for (p, &(ti, wi)) in events.iter().enumerate() {
            for &(tj, wj) in events.iter().skip(p + 1) {
                if ti != tj && (wi || wj) {
                    g.succ.entry(ti).or_default().insert(tj);
                }
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_model::{Op, Value};

    fn flat_two_tx() -> (TxTree, TxId, TxId, TxId, TxId) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let u = tree.add_access(a, x, Op::Write(5));
        let w = tree.add_access(b, x, Op::Read);
        (tree, a, b, u, w)
    }

    #[test]
    fn flat_conflict_produces_edge() {
        let (tree, a, b, u, w) = flat_two_tx();
        let beta = vec![
            Action::RequestCommit(u, Value::Ok),
            Action::Commit(u),
            Action::Commit(a),
            Action::RequestCommit(w, Value::Int(5)),
            Action::Commit(w),
            Action::Commit(b),
        ];
        let g = build_classical_sg(&tree, &beta);
        assert_eq!(g.edge_count(), 1);
        assert!(g.succ[&a].contains(&b));
        assert!(g.is_acyclic());
    }

    #[test]
    fn uncommitted_accesses_ignored() {
        let (tree, _a, _b, u, w) = flat_two_tx();
        let beta = vec![
            Action::RequestCommit(u, Value::Ok),
            Action::RequestCommit(w, Value::Int(5)),
        ];
        let g = build_classical_sg(&tree, &beta);
        assert_eq!(g.edge_count(), 0);
        assert!(g.nodes.is_empty());
    }

    #[test]
    fn crossing_conflicts_make_cycle() {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let y = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let ax = tree.add_access(a, x, Op::Write(1));
        let ay = tree.add_access(a, y, Op::Read);
        let bx = tree.add_access(b, x, Op::Read);
        let by = tree.add_access(b, y, Op::Write(2));
        let beta = vec![
            Action::RequestCommit(ax, Value::Ok),
            Action::Commit(ax),
            Action::RequestCommit(by, Value::Ok),
            Action::Commit(by),
            Action::RequestCommit(bx, Value::Int(1)),
            Action::Commit(bx),
            Action::RequestCommit(ay, Value::Int(2)),
            Action::Commit(ay),
            Action::Commit(a),
            Action::Commit(b),
        ];
        let g = build_classical_sg(&tree, &beta);
        assert!(!g.is_acyclic());
    }

    #[test]
    fn nested_accesses_attributed_to_top_level() {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let a1 = tree.add_inner(a);
        let b = tree.add_inner(TxId::ROOT);
        let u = tree.add_access(a1, x, Op::Write(1));
        let w = tree.add_access(b, x, Op::Write(2));
        let beta = vec![
            Action::RequestCommit(u, Value::Ok),
            Action::Commit(u),
            Action::Commit(a1),
            Action::Commit(a),
            Action::RequestCommit(w, Value::Ok),
            Action::Commit(w),
            Action::Commit(b),
        ];
        let g = build_classical_sg(&tree, &beta);
        assert!(g.succ[&a].contains(&b), "u attributed to a, not a1");
    }
}
