//! # nt-sgt
//!
//! The paper's primary contribution, executable: the **serialization graph
//! construction for nested transactions** of
//!
//! > Fekete, Lynch, Weihl. *A Serialization Graph Construction for Nested
//! > Transactions.* PODS 1990.
//!
//! Given a behavior `β` of a nested transaction system (any system that
//! implements the *simple system* of §2.3), this crate decides the paper's
//! sufficient condition for serial correctness for `T0`:
//!
//! 1. **Appropriate return values** (§3.2 for read/write objects, §6.1 for
//!    arbitrary types): the operations visible to `T0`, replayed per object
//!    in `β` order, are legal for each object's serial specification —
//!    checked by [`checker::appropriate_return_values`] (the replay path)
//!    and, for read/write systems, by the *current & safe* sufficient
//!    conditions of Lemma 6 ([`checker::check_current_and_safe`]).
//! 2. **Acyclicity of `SG(β)`** (§4): the union over transactions `T`
//!    visible to `T0` of per-parent digraphs on the children of `T`, with
//!    *conflict* edges (ordered conflicting operations of descendants) and
//!    *precedes* edges (report before sibling request — external
//!    consistency). Built by [`relations::build_sg`], with conflicts drawn
//!    either from the read/write table (§4) or from failure of backward
//!    commutativity (§6.1).
//!
//! [`checker::check_serial_correctness`] is Theorem 8/19 end to end, and
//! goes beyond the theorem statement: on success it **constructs the
//! witness** serial behavior `γ` with `γ|T0 = β|T0` (following the
//! theorem's proof) and validates it against the serial system — so every
//! "serially correct" verdict carries machine-checked evidence
//! ([`witness::reconstruct_witness`]).
//!
//! [`classical`] implements the textbook flat serialization graph as the
//! comparison baseline the paper generalizes.
//!
//! ```
//! use nt_model::{Action, Op, TxId, TxTree, Value};
//! use nt_serial::{ObjectTypes, RwRegister};
//! use nt_sgt::{check_serial_correctness, ConflictSource};
//! use std::sync::Arc;
//!
//! // T0 → a → (write X 5); a commits; T0 → b → (read X = 5); b commits.
//! let mut tree = TxTree::new();
//! let x = tree.add_object();
//! let a = tree.add_inner(TxId::ROOT);
//! let b = tree.add_inner(TxId::ROOT);
//! let w = tree.add_access(a, x, Op::Write(5));
//! let r = tree.add_access(b, x, Op::Read);
//! let beta = vec![
//!     Action::Create(TxId::ROOT),
//!     Action::RequestCreate(a), Action::Create(a),
//!     Action::RequestCreate(w), Action::Create(w),
//!     Action::RequestCommit(w, Value::Ok), Action::Commit(w),
//!     Action::ReportCommit(w, Value::Ok),
//!     Action::RequestCommit(a, Value::Ok), Action::Commit(a),
//!     Action::RequestCreate(b), Action::Create(b),
//!     Action::RequestCreate(r), Action::Create(r),
//!     Action::RequestCommit(r, Value::Int(5)), Action::Commit(r),
//!     Action::ReportCommit(r, Value::Int(5)),
//!     Action::RequestCommit(b, Value::Ok), Action::Commit(b),
//! ];
//! let types = ObjectTypes::uniform(1, Arc::new(RwRegister::new(0)));
//! let verdict = check_serial_correctness(&tree, &beta, &types,
//!                                        ConflictSource::ReadWrite);
//! assert!(verdict.is_serially_correct());
//! ```

#![forbid(unsafe_code)]

pub mod checker;
pub mod classical;
pub mod graph;
pub mod relations;
pub mod witness;

pub use checker::{
    appropriate_return_values, certify_recorded, check_current_and_safe, check_serial_correctness,
    check_serial_correctness_traced, sg_is_acyclic, view, visible_operations, Inappropriate,
    RecordedCertificate, RwConditionFailure, Verdict,
};
pub use classical::{build_classical_sg, ClassicalSg};
pub use graph::{EdgeKind, SerializationGraph, SgEdge};
pub use relations::{build_sg, build_sg_traced, conflict_edges, precedes_edges, ConflictSource};
pub use witness::{reconstruct_witness, WitnessError};
