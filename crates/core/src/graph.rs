//! The serialization graph `SG(β)` (§4): a disjoint union of directed
//! graphs `SG(β, T)`, one per transaction `T` visible to `T0`, whose nodes
//! are the children of `T` and whose edges come from the `conflict(β)` and
//! `precedes(β)` relations.

use nt_model::{SiblingOrder, TxId};
use nt_obs::{Event, TraceHandle};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Why an edge is present.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// A conflict edge: descendants performed conflicting operations, the
    /// `from` side first (§4 / §6.1).
    Conflict,
    /// A precedence edge: a report event for `from` preceded
    /// `REQUEST_CREATE(to)` (external consistency, §4).
    Precedes,
}

impl EdgeKind {
    /// Stable lowercase name (journal / export vocabulary).
    pub fn as_str(self) -> &'static str {
        match self {
            EdgeKind::Conflict => "conflict",
            EdgeKind::Precedes => "precedes",
        }
    }
}

/// One edge of the serialization graph, with a witness for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SgEdge {
    /// The common parent: this edge lives in `SG(β, parent)`.
    pub parent: TxId,
    /// Source sibling.
    pub from: TxId,
    /// Target sibling.
    pub to: TxId,
    /// Conflict or precedence.
    pub kind: EdgeKind,
    /// Indices into the analyzed sequence of the two events that induced
    /// the edge (the conflicting `REQUEST_COMMIT`s, or the report and the
    /// `REQUEST_CREATE`).
    pub witness: (usize, usize),
}

#[derive(Default, Clone, Debug)]
struct SubGraph {
    /// Node set: the children of the parent transaction that participate.
    nodes: BTreeSet<TxId>,
    /// Adjacency (deduplicated).
    succ: BTreeMap<TxId, BTreeSet<TxId>>,
}

/// The serialization graph of a behavior.
#[derive(Clone, Debug, Default)]
pub struct SerializationGraph {
    /// All edges with provenance, in insertion order, deduplicated by
    /// `(from, to, kind)`.
    pub edges: Vec<SgEdge>,
    graphs: BTreeMap<TxId, SubGraph>,
    dedup: HashMap<(TxId, TxId, EdgeKind), ()>,
    /// Observability sink; every deduplicated edge insertion is journaled
    /// (disabled by default, so plain construction stays silent).
    trace: TraceHandle,
}

impl SerializationGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach an observability sink: subsequent edge insertions emit
    /// `sg_edge_inserted` journal events.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Ensure `child` is a node of `SG(β, parent)`.
    pub fn add_node(&mut self, parent: TxId, child: TxId) {
        self.graphs.entry(parent).or_default().nodes.insert(child);
    }

    /// Add an edge (idempotent per `(from, to, kind)`).
    pub fn add_edge(&mut self, e: SgEdge) {
        let g = self.graphs.entry(e.parent).or_default();
        g.nodes.insert(e.from);
        g.nodes.insert(e.to);
        if self.dedup.insert((e.from, e.to, e.kind), ()).is_none() {
            g.succ.entry(e.from).or_default().insert(e.to);
            if self.trace.enabled() {
                self.trace.record(Event::SgEdgeInserted {
                    parent: e.parent.0,
                    from: e.from.0,
                    to: e.to.0,
                    kind: e.kind.as_str(),
                });
            }
            self.edges.push(e);
        }
    }

    /// The parents `T` with a (non-trivial or registered) subgraph
    /// `SG(β, T)`.
    pub fn parents(&self) -> impl Iterator<Item = TxId> + '_ {
        self.graphs.keys().copied()
    }

    /// Nodes of `SG(β, parent)`.
    pub fn nodes_of(&self, parent: TxId) -> Vec<TxId> {
        self.graphs
            .get(&parent)
            .map(|g| g.nodes.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Successors of `child` within its parent's subgraph.
    pub fn successors(&self, parent: TxId, child: TxId) -> Vec<TxId> {
        self.graphs
            .get(&parent)
            .and_then(|g| g.succ.get(&child))
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Total number of distinct edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Total number of nodes across all subgraphs.
    pub fn node_count(&self) -> usize {
        self.graphs.values().map(|g| g.nodes.len()).sum()
    }

    /// Find a cycle in some `SG(β, T)`, returned as the sequence of
    /// siblings along the cycle (first element repeated at the end), or
    /// `None` if every subgraph is acyclic (Theorem 8's hypothesis).
    pub fn find_cycle(&self) -> Option<Vec<TxId>> {
        for g in self.graphs.values() {
            if let Some(cycle) = find_cycle_in(g) {
                return Some(cycle);
            }
        }
        None
    }

    /// True iff the whole graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Topologically sort every subgraph, producing the sibling order `R`
    /// used in the proof of Theorem 8 (deterministic: Kahn's algorithm with
    /// smallest-`TxId`-first tie-breaking). `None` if some subgraph is
    /// cyclic.
    pub fn topological_order(&self) -> Option<SiblingOrder> {
        let mut lists = Vec::with_capacity(self.graphs.len());
        for (&parent, g) in &self.graphs {
            let sorted = topo_sort(g)?;
            lists.push((parent, sorted));
        }
        Some(SiblingOrder::from_lists(lists))
    }
}

fn topo_sort(g: &SubGraph) -> Option<Vec<TxId>> {
    let mut indeg: BTreeMap<TxId, usize> = g.nodes.iter().map(|&n| (n, 0)).collect();
    for succs in g.succ.values() {
        for &t in succs {
            *indeg.get_mut(&t).expect("edge endpoints are nodes") += 1;
        }
    }
    // BTreeSet as a priority queue: smallest TxId first, deterministically.
    let mut ready: BTreeSet<TxId> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    let mut out = Vec::with_capacity(g.nodes.len());
    while let Some(&n) = ready.iter().next() {
        ready.remove(&n);
        out.push(n);
        if let Some(succs) = g.succ.get(&n) {
            for &m in succs {
                let d = indeg
                    .get_mut(&m)
                    .expect("add_edge inserts both endpoints into the node set");
                *d -= 1;
                if *d == 0 {
                    ready.insert(m);
                }
            }
        }
    }
    (out.len() == g.nodes.len()).then_some(out)
}

fn find_cycle_in(g: &SubGraph) -> Option<Vec<TxId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<TxId, Color> = g.nodes.iter().map(|&n| (n, Color::White)).collect();
    let empty = BTreeSet::new();
    for &start in &g.nodes {
        if color[&start] != Color::White {
            continue;
        }
        let mut stack: Vec<(TxId, std::collections::btree_set::Iter<'_, TxId>)> =
            vec![(start, g.succ.get(&start).unwrap_or(&empty).iter())];
        color.insert(start, Color::Gray);
        while let Some((v, it)) = stack.last_mut() {
            let v = *v;
            match it.next() {
                Some(&w) => match color[&w] {
                    Color::White => {
                        color.insert(w, Color::Gray);
                        stack.push((w, g.succ.get(&w).unwrap_or(&empty).iter()));
                    }
                    Color::Gray => {
                        // Reconstruct the cycle from the gray stack.
                        let pos = stack
                            .iter()
                            .position(|(u, _)| *u == w)
                            .expect("a Gray node is always on the DFS stack");
                        let mut cycle: Vec<TxId> = stack[pos..].iter().map(|(u, _)| *u).collect();
                        cycle.push(w);
                        return Some(cycle);
                    }
                    Color::Black => {}
                },
                None => {
                    color.insert(v, Color::Black);
                    stack.pop();
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_model::TxTree;

    fn edge(parent: TxId, from: TxId, to: TxId, kind: EdgeKind) -> SgEdge {
        SgEdge {
            parent,
            from,
            to,
            kind,
            witness: (0, 0),
        }
    }

    fn three_children() -> (TxTree, TxId, TxId, TxId) {
        let mut tree = TxTree::new();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let c = tree.add_inner(TxId::ROOT);
        (tree, a, b, c)
    }

    #[test]
    fn acyclic_graph_topo_sorts() {
        let (_t, a, b, c) = three_children();
        let mut g = SerializationGraph::new();
        g.add_edge(edge(TxId::ROOT, a, b, EdgeKind::Conflict));
        g.add_edge(edge(TxId::ROOT, b, c, EdgeKind::Precedes));
        assert!(g.is_acyclic());
        assert_eq!(g.find_cycle(), None);
        let order = g.topological_order().expect("acyclic");
        assert_eq!(order.orders(a, b), Some(true));
        assert_eq!(order.orders(b, c), Some(true));
        assert_eq!(order.orders(a, c), Some(true));
    }

    #[test]
    fn cycle_detected_and_reported() {
        let (_t, a, b, c) = three_children();
        let mut g = SerializationGraph::new();
        g.add_edge(edge(TxId::ROOT, a, b, EdgeKind::Conflict));
        g.add_edge(edge(TxId::ROOT, b, c, EdgeKind::Conflict));
        g.add_edge(edge(TxId::ROOT, c, a, EdgeKind::Precedes));
        assert!(!g.is_acyclic());
        assert!(g.topological_order().is_none());
        let cycle = g.find_cycle().expect("cyclic");
        assert!(cycle.len() == 4, "triangle + repeated head: {cycle:?}");
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn edges_deduplicate_but_keep_kinds_distinct() {
        let (_t, a, b, _c) = three_children();
        let mut g = SerializationGraph::new();
        g.add_edge(edge(TxId::ROOT, a, b, EdgeKind::Conflict));
        g.add_edge(edge(TxId::ROOT, a, b, EdgeKind::Conflict));
        g.add_edge(edge(TxId::ROOT, a, b, EdgeKind::Precedes));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.successors(TxId::ROOT, a), vec![b]);
    }

    #[test]
    fn disjoint_subgraphs_sorted_independently() {
        let mut tree = TxTree::new();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let a1 = tree.add_inner(a);
        let a2 = tree.add_inner(a);
        let mut g = SerializationGraph::new();
        g.add_edge(edge(TxId::ROOT, b, a, EdgeKind::Conflict));
        g.add_edge(edge(a, a2, a1, EdgeKind::Conflict));
        let order = g.topological_order().expect("acyclic");
        assert_eq!(order.orders(b, a), Some(true));
        assert_eq!(order.orders(a2, a1), Some(true));
        assert_eq!(order.orders(a1, b), None, "different parents");
        let parents: Vec<_> = g.parents().collect();
        assert_eq!(parents, vec![TxId::ROOT, a]);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let (_t, a, _b, _c) = three_children();
        let mut g = SerializationGraph::new();
        g.add_edge(edge(TxId::ROOT, a, a, EdgeKind::Conflict));
        assert!(!g.is_acyclic());
    }

    #[test]
    fn isolated_nodes_are_ordered() {
        let (_t, a, b, _c) = three_children();
        let mut g = SerializationGraph::new();
        g.add_node(TxId::ROOT, a);
        g.add_node(TxId::ROOT, b);
        let order = g.topological_order().expect("acyclic");
        assert!(order.orders(a, b).is_some(), "topo sort totalizes");
    }
}
