//! The `conflict(β)` and `precedes(β)` relations (§4, §6.1) and the
//! construction of the serialization graph from a behavior.
//!
//! All functions operate on a sequence of *serial* actions (callers strip
//! `INFORM_*` with [`nt_model::seq::serial_projection`] first) plus the
//! naming tree.

use crate::graph::{EdgeKind, SerializationGraph, SgEdge};
use nt_model::seq::Status;
use nt_model::{Action, ObjId, TxId, TxTree, Value};
use nt_serial::ObjectTypes;
use std::collections::HashMap;

/// Where the conflict relation on operations comes from.
#[derive(Clone, Copy)]
pub enum ConflictSource<'a> {
    /// §4: read/write objects — two accesses to the same object conflict
    /// unless both are reads.
    ReadWrite,
    /// §6.1: arbitrary data types — operations conflict iff they fail to
    /// commute backward per the object's serial type.
    Types(&'a ObjectTypes),
}

impl ConflictSource<'_> {
    /// Do the operations `(op_a, v_a)` and `(op_b, v_b)` on object `x`
    /// conflict?
    pub fn conflicts(
        &self,
        x: ObjId,
        op_a: &nt_model::Op,
        v_a: &Value,
        op_b: &nt_model::Op,
        v_b: &Value,
    ) -> bool {
        match self {
            ConflictSource::ReadWrite => !(op_a.is_rw_read() && op_b.is_rw_read()),
            ConflictSource::Types(types) => !types
                .get(x)
                .commutes_backward(&(op_a.clone(), v_a.clone()), &(op_b.clone(), v_b.clone())),
        }
    }
}

/// Compute the `conflict(β)` edges (§4): for each ordered pair of
/// conflicting operations in `visible(β, T0)` on the same object, an edge
/// between the children of the least common ancestor of the two accesses.
///
/// Complexity: O(k²) over the k visible operations of each object (the
/// relation itself is quadratic in the worst case); pairs are deduplicated
/// by the graph.
pub fn conflict_edges(
    tree: &TxTree,
    beta: &[Action],
    source: ConflictSource<'_>,
    out: &mut SerializationGraph,
) {
    let status = Status::of(tree, beta);
    // Visible REQUEST_COMMITs of accesses, grouped per object, in order.
    let mut per_object: HashMap<ObjId, Vec<(usize, TxId, &Value)>> = HashMap::new();
    for (i, a) in beta.iter().enumerate() {
        if let Action::RequestCommit(t, v) = a {
            if let Some(x) = tree.object_of(*t) {
                if status.is_visible(tree, *t, TxId::ROOT) {
                    per_object.entry(x).or_default().push((i, *t, v));
                }
            }
        }
    }
    for (x, events) in per_object {
        for (p, &(i, u, v)) in events.iter().enumerate() {
            let op_u = tree
                .op_of(u)
                .expect("object_of was Some, so u is an access with an op");
            for &(j, u2, v2) in events.iter().skip(p + 1) {
                let op_u2 = tree
                    .op_of(u2)
                    .expect("object_of was Some, so u2 is an access with an op");
                if !source.conflicts(x, op_u, v, op_u2, v2) {
                    continue;
                }
                let l = tree.lca(u, u2);
                let from = tree.child_toward(l, u);
                let to = tree.child_toward(l, u2);
                debug_assert_ne!(from, to, "distinct accesses diverge below lca");
                out.add_edge(SgEdge {
                    parent: l,
                    from,
                    to,
                    kind: EdgeKind::Conflict,
                    witness: (i, j),
                });
            }
        }
    }
}

/// Compute the `precedes(β)` edges (§4): siblings `(T, T')` whose common
/// parent is visible to `T0` such that a report event for `T` precedes
/// `REQUEST_CREATE(T')`.
pub fn precedes_edges(tree: &TxTree, beta: &[Action], out: &mut SerializationGraph) {
    let status = Status::of(tree, beta);
    let mut first_report: HashMap<TxId, usize> = HashMap::new();
    for (j, a) in beta.iter().enumerate() {
        match a {
            Action::ReportCommit(t, _) | Action::ReportAbort(t) => {
                first_report.entry(*t).or_insert(j);
            }
            Action::RequestCreate(t2) => {
                let Some(parent) = tree.parent(*t2) else {
                    continue;
                };
                if !status.is_visible(tree, parent, TxId::ROOT) {
                    continue;
                }
                for &t in tree.children(parent) {
                    if t == *t2 {
                        continue;
                    }
                    if let Some(&r) = first_report.get(&t) {
                        if r < j {
                            out.add_edge(SgEdge {
                                parent,
                                from: t,
                                to: *t2,
                                kind: EdgeKind::Precedes,
                                witness: (r, j),
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Build the full serialization graph `SG(β)` (§4): conflict edges plus
/// precedence edges, with a node for every child of a visible parent that
/// is the lowtransaction of some visible event (so topological sorting
/// totalizes the order over every pair suitability condition 1 mentions).
pub fn build_sg(tree: &TxTree, beta: &[Action], source: ConflictSource<'_>) -> SerializationGraph {
    build_sg_traced(tree, beta, source, nt_obs::TraceHandle::disabled())
}

/// [`build_sg`] with an observability sink attached to the graph: every
/// deduplicated edge insertion is journaled as `sg_edge_inserted`.
pub fn build_sg_traced(
    tree: &TxTree,
    beta: &[Action],
    source: ConflictSource<'_>,
    trace: nt_obs::TraceHandle,
) -> SerializationGraph {
    let mut g = SerializationGraph::new();
    g.attach_trace(trace);
    let status = Status::of(tree, beta);
    for a in beta {
        let Some(high) = a.hightransaction(tree) else {
            continue;
        };
        if !status.is_visible(tree, high, TxId::ROOT) {
            continue;
        }
        let low = a
            .lowtransaction(tree)
            .expect("every action with a hightransaction has a lowtransaction");
        if let Some(p) = tree.parent(low) {
            g.add_node(p, low);
        }
    }
    conflict_edges(tree, beta, source, &mut g);
    precedes_edges(tree, beta, &mut g);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_model::{Op, Value};
    use nt_serial::RwRegister;
    use std::sync::Arc;

    /// Two top-level transactions, each with one access to X:
    /// a writes, b reads; both commit; a's access first.
    fn rw_scenario() -> (TxTree, TxId, TxId, Vec<Action>) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let u = tree.add_access(a, x, Op::Write(5));
        let w = tree.add_access(b, x, Op::Read);
        let beta = vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::RequestCreate(b),
            Action::Create(a),
            Action::Create(b),
            Action::RequestCreate(u),
            Action::Create(u),
            Action::RequestCommit(u, Value::Ok), // 7
            Action::Commit(u),
            Action::ReportCommit(u, Value::Ok),
            Action::RequestCreate(w),
            Action::Create(w),
            Action::RequestCommit(w, Value::Int(5)), // 12
            Action::Commit(w),
            Action::ReportCommit(w, Value::Int(5)),
            Action::RequestCommit(a, Value::Ok),
            Action::Commit(a),
            Action::RequestCommit(b, Value::Ok),
            Action::Commit(b),
        ];
        (tree, a, b, beta)
    }

    #[test]
    fn conflict_edge_projects_to_top_level_siblings() {
        let (tree, a, b, beta) = rw_scenario();
        let g = build_sg(&tree, &beta, ConflictSource::ReadWrite);
        let conflicts: Vec<_> = g
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Conflict)
            .collect();
        assert_eq!(conflicts.len(), 1);
        let e = conflicts[0];
        assert_eq!((e.parent, e.from, e.to), (TxId::ROOT, a, b));
        assert_eq!(e.witness, (7, 12));
        assert!(g.is_acyclic());
    }

    #[test]
    fn read_read_is_not_a_conflict() {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let u = tree.add_access(a, x, Op::Read);
        let w = tree.add_access(b, x, Op::Read);
        let beta = vec![
            Action::RequestCommit(u, Value::Int(0)),
            Action::Commit(u),
            Action::RequestCommit(w, Value::Int(0)),
            Action::Commit(w),
            Action::Commit(a),
            Action::Commit(b),
        ];
        let mut g = SerializationGraph::new();
        conflict_edges(&tree, &beta, ConflictSource::ReadWrite, &mut g);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn invisible_operations_produce_no_conflict_edges() {
        let (tree, _a, _b, mut beta) = rw_scenario();
        // Remove COMMIT(b) and its descendants' visibility: drop commits of
        // w and b (indices 13, 18) so b's branch is not visible.
        beta.remove(18);
        beta.remove(13);
        let g = build_sg(&tree, &beta, ConflictSource::ReadWrite);
        assert_eq!(
            g.edges
                .iter()
                .filter(|e| e.kind == EdgeKind::Conflict)
                .count(),
            0
        );
    }

    #[test]
    fn precedes_edge_from_report_before_request() {
        let (tree, a, b, _) = rw_scenario();
        // Reorder: run a fully and report it to T0 before b is requested.
        let beta = vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::Create(a),
            Action::RequestCommit(a, Value::Ok),
            Action::Commit(a),
            Action::ReportCommit(a, Value::Ok), // 5
            Action::RequestCreate(b),           // 6
            Action::Create(b),
            Action::RequestCommit(b, Value::Ok),
            Action::Commit(b),
        ];
        let g = build_sg(&tree, &beta, ConflictSource::ReadWrite);
        let pres: Vec<_> = g
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Precedes)
            .collect();
        assert_eq!(pres.len(), 1);
        assert_eq!((pres[0].from, pres[0].to), (a, b));
        assert_eq!(pres[0].witness, (5, 6));
    }

    #[test]
    fn general_conflicts_use_commutativity() {
        // With the register's declared relation, write/write conflicts;
        // read/read does not — same shape as the rw mode.
        let (tree, a, b, beta) = rw_scenario();
        let types = ObjectTypes::uniform(1, Arc::new(RwRegister::new(0)));
        let g = build_sg(&tree, &beta, ConflictSource::Types(&types));
        assert_eq!(
            g.edges
                .iter()
                .filter(|e| e.kind == EdgeKind::Conflict)
                .count(),
            1
        );
        let e = &g.edges[0];
        assert_eq!((e.from, e.to), (a, b));
    }

    #[test]
    fn nested_conflict_projects_to_lca_children() {
        // a has two subtransactions a1, a2, each with a write access:
        // the conflict edge must live in SG(β, a), between a1 and a2.
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let a1 = tree.add_inner(a);
        let a2 = tree.add_inner(a);
        let u1 = tree.add_access(a1, x, Op::Write(1));
        let u2 = tree.add_access(a2, x, Op::Write(2));
        let beta = vec![
            Action::RequestCommit(u1, Value::Ok),
            Action::Commit(u1),
            Action::Commit(a1),
            Action::RequestCommit(u2, Value::Ok),
            Action::Commit(u2),
            Action::Commit(a2),
            Action::Commit(a),
        ];
        let mut g = SerializationGraph::new();
        conflict_edges(&tree, &beta, ConflictSource::ReadWrite, &mut g);
        assert_eq!(g.edge_count(), 1);
        let e = &g.edges[0];
        assert_eq!((e.parent, e.from, e.to), (a, a1, a2));
    }
}
