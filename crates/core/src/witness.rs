//! Constructive witness reconstruction: Theorem 8's proof, executed.
//!
//! The theorem asserts that a simple behavior `β` with appropriate return
//! values and acyclic `SG(β)` is serially correct for `T0` — i.e. *some*
//! serial behavior `γ` has `γ|T0 = β|T0`. This module builds that `γ`
//! explicitly, following the proof:
//!
//! 1. topologically sort each `SG(β, T)` into a sibling order `R`
//!    (done by the caller via [`crate::graph::SerializationGraph`]);
//! 2. keep every visible transaction's local event sequence exactly as in
//!    `β` (so each transaction automaton, and in particular `T0`, observes
//!    the same behavior);
//! 3. run sibling subtrees serially, in `R` order, nested within their
//!    parents' local sequences — executing each child after its
//!    `REQUEST_CREATE` and before its report, which is always possible
//!    because `R` extends `precedes(β)`.
//!
//! The result is validated against the serial-system validator of
//! `nt-serial` and against `γ|T0 = β|T0`; any failure is surfaced as a
//! [`WitnessError`] (which the experiment suite asserts never happens when
//! the hypotheses hold — an executable confirmation of the theorem).

use nt_model::seq::{visible_indices, Status};
use nt_model::wellformed::Violation;
use nt_model::{Action, SiblingOrder, TxId, TxTree, Value};
use nt_serial::{validate_serial_behavior, ObjectTypes};
use std::collections::HashMap;

/// Why witness reconstruction or validation failed.
#[derive(Clone, Debug)]
pub enum WitnessError {
    /// The visible projection of `β` violates transaction well-formedness
    /// in a way the construction cannot repair.
    NotWellFormed {
        /// The offending transaction.
        tx: TxId,
        /// Description.
        why: String,
    },
    /// The constructed `γ` is not a serial behavior (this would falsify
    /// Theorem 8/19 if the hypotheses held).
    InvalidSerial(Violation),
    /// `γ|T0 ≠ β|T0` (construction bug; never expected).
    RootMismatch,
}

struct Builder<'a> {
    tree: &'a TxTree,
    order: &'a SiblingOrder,
    status: Status,
    /// Per visible non-access transaction: its local events, in β order.
    proj: HashMap<TxId, Vec<Action>>,
    /// Committed access → recorded return value.
    access_value: HashMap<TxId, Value>,
    out: Vec<Action>,
}

impl Builder<'_> {
    /// Execute the completed child `c` (its whole serial block).
    fn exec_child(&mut self, c: TxId) -> Result<(), WitnessError> {
        if self.status.is_aborted(c) {
            // The serial scheduler aborts only never-created transactions:
            // the child's activity in β (if any) is invisible and vanishes.
            self.out.push(Action::Abort(c));
            return Ok(());
        }
        debug_assert!(self.status.is_committed(c));
        if self.tree.is_access(c) {
            let v =
                self.access_value
                    .get(&c)
                    .cloned()
                    .ok_or_else(|| WitnessError::NotWellFormed {
                        tx: c,
                        why: "committed access without visible REQUEST_COMMIT".into(),
                    })?;
            self.out.push(Action::Create(c));
            self.out.push(Action::RequestCommit(c, v));
        } else {
            self.expand(c)?;
        }
        self.out.push(Action::Commit(c));
        Ok(())
    }

    /// Emit the serial run of transaction `t` (visible and committed, or
    /// `T0`): `t`'s own events in original order, with completed children's
    /// executions inserted serially in `R` order.
    fn expand(&mut self, t: TxId) -> Result<(), WitnessError> {
        let local = self.proj.remove(&t).unwrap_or_default();
        if !self.tree.is_access(t) && t != TxId::ROOT {
            match local.first() {
                Some(Action::Create(c)) if *c == t => {}
                _ => {
                    return Err(WitnessError::NotWellFormed {
                        tx: t,
                        why: "visible projection does not start with CREATE".into(),
                    })
                }
            }
        }
        // Children requested so far and not yet executed.
        let mut pending: Vec<TxId> = Vec::new();
        let mut executed: std::collections::HashSet<TxId> = std::collections::HashSet::new();
        for e in local {
            match &e {
                Action::ReportCommit(c, _) | Action::ReportAbort(c) => {
                    let c = *c;
                    if executed.contains(&c) {
                        // Already executed (pulled forward by a sibling's
                        // report); the report itself may come any time.
                        self.out.push(e);
                        continue;
                    }
                    // Execute every pending completed child ordered at or
                    // before `c`, in R order, ending with `c` itself.
                    let mut due: Vec<TxId> = pending
                        .iter()
                        .copied()
                        .filter(|&p| {
                            self.status.is_completed(p)
                                && (p == c || self.order.orders(p, c) == Some(true))
                        })
                        .collect();
                    due.sort_by(|&x, &y| match self.order.orders(x, y) {
                        Some(true) => std::cmp::Ordering::Less,
                        Some(false) => std::cmp::Ordering::Greater,
                        None => std::cmp::Ordering::Equal,
                    });
                    if !due.contains(&c) {
                        return Err(WitnessError::NotWellFormed {
                            tx: c,
                            why: "report for a child never requested or never completed".into(),
                        });
                    }
                    for d in due {
                        pending.retain(|&p| p != d);
                        executed.insert(d);
                        self.exec_child(d)?;
                    }
                    self.out.push(e);
                }
                Action::RequestCreate(c) => {
                    pending.push(*c);
                    self.out.push(e);
                }
                _ => self.out.push(e),
            }
        }
        // Flush children that completed but were never reported in β
        // (only possible when `t` never requested commit, e.g. T0).
        let mut rest: Vec<TxId> = pending
            .into_iter()
            .filter(|&p| self.status.is_completed(p))
            .collect();
        rest.sort_by(|&x, &y| match self.order.orders(x, y) {
            Some(true) => std::cmp::Ordering::Less,
            Some(false) => std::cmp::Ordering::Greater,
            None => std::cmp::Ordering::Equal,
        });
        for c in rest {
            self.exec_child(c)?;
        }
        Ok(())
    }
}

/// Reconstruct and validate the witness serial behavior `γ` for `beta`
/// (a sequence of serial actions), given the sibling order `R` obtained by
/// topologically sorting `SG(β)`.
///
/// On success, `γ` is a validated serial behavior with `γ|T0 = β|T0`.
pub fn reconstruct_witness(
    tree: &TxTree,
    beta: &[Action],
    order: &SiblingOrder,
    types: &ObjectTypes,
) -> Result<Vec<Action>, WitnessError> {
    let status = Status::of(tree, beta);
    let vis = visible_indices(tree, beta, TxId::ROOT);

    let mut proj: HashMap<TxId, Vec<Action>> = HashMap::new();
    let mut access_value: HashMap<TxId, Value> = HashMap::new();
    for &i in &vis {
        let a = &beta[i];
        if let Action::RequestCommit(t, v) = a {
            if tree.is_access(*t) {
                access_value.insert(*t, v.clone());
                continue; // access events are re-emitted by exec_child
            }
        }
        if let Some(t) = a.transaction(tree) {
            if !tree.is_access(t) {
                proj.entry(t).or_default().push(a.clone());
            }
        }
        // Completion events are re-emitted by exec_child; Create of
        // accesses likewise.
    }

    let had_root_create = beta
        .iter()
        .any(|a| matches!(a, Action::Create(t) if *t == TxId::ROOT));
    let mut b = Builder {
        tree,
        order,
        status,
        proj,
        access_value,
        out: Vec::with_capacity(vis.len() + 8),
    };
    if !had_root_create {
        // Serial systems start by creating T0; tolerate behaviors that
        // leave the environment's wake-up implicit.
        b.out.push(Action::Create(TxId::ROOT));
    }
    b.expand(TxId::ROOT)?;
    let gamma = b.out;

    // Validate: γ is a serial behavior…
    validate_serial_behavior(tree, &gamma, types).map_err(WitnessError::InvalidSerial)?;
    // …and γ|T0 = β|T0.
    let gamma_t0 = nt_model::seq::tx_projection(tree, &gamma, TxId::ROOT);
    let beta_t0 = nt_model::seq::tx_projection(tree, beta, TxId::ROOT);
    let gamma_t0_cmp: &[Action] = if had_root_create {
        &gamma_t0
    } else {
        &gamma_t0[1..] // skip the synthesized CREATE(T0)
    };
    if gamma_t0_cmp != beta_t0.as_slice() {
        return Err(WitnessError::RootMismatch);
    }
    Ok(gamma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relations::{build_sg, ConflictSource};
    use nt_model::Op;
    use nt_serial::RwRegister;
    use std::sync::Arc;

    /// Interleaved (non-serial) behavior of two transactions whose accesses
    /// do not overlap in conflict: a writes X then b reads X, but their
    /// creations interleave.
    fn interleaved() -> (TxTree, ObjectTypes, Vec<Action>) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let u = tree.add_access(a, x, Op::Write(5));
        let w = tree.add_access(b, x, Op::Read);
        let types = ObjectTypes::uniform(1, Arc::new(RwRegister::new(0)));
        let beta = vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::RequestCreate(b),
            Action::Create(a),
            Action::Create(b), // siblings live together: NOT serial
            Action::RequestCreate(u),
            Action::Create(u),
            Action::RequestCommit(u, Value::Ok),
            Action::Commit(u),
            Action::ReportCommit(u, Value::Ok),
            Action::RequestCommit(a, Value::Ok),
            Action::Commit(a),
            Action::ReportCommit(a, Value::Ok),
            Action::RequestCreate(w),
            Action::Create(w),
            Action::RequestCommit(w, Value::Int(5)),
            Action::Commit(w),
            Action::ReportCommit(w, Value::Int(5)),
            Action::RequestCommit(b, Value::Ok),
            Action::Commit(b),
            Action::ReportCommit(b, Value::Ok),
        ];
        (tree, types, beta)
    }

    #[test]
    fn witness_is_serial_and_preserves_root_view() {
        let (tree, types, beta) = interleaved();
        let g = build_sg(&tree, &beta, ConflictSource::ReadWrite);
        let order = g.topological_order().expect("acyclic");
        let gamma = reconstruct_witness(&tree, &beta, &order, &types).expect("witness");
        // Serial: already validated inside; double-check the root view.
        assert_eq!(
            nt_model::seq::tx_projection(&tree, &gamma, TxId::ROOT),
            nt_model::seq::tx_projection(&tree, &beta, TxId::ROOT),
        );
        // The original β is NOT itself a serial behavior.
        assert!(nt_serial::validate_serial_behavior(&tree, &beta, &types).is_err());
    }

    #[test]
    fn witness_reorders_children_against_report_order_when_conflicts_demand() {
        // b's read of X happens BEFORE a's write in β (conflict edge b→a),
        // but a completes and is reported first. The witness must run b's
        // subtree before a's to keep the read of 0 legal.
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let u = tree.add_access(a, x, Op::Write(5));
        let w = tree.add_access(b, x, Op::Read);
        let types = ObjectTypes::uniform(1, Arc::new(RwRegister::new(0)));
        let beta = vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::RequestCreate(b),
            Action::Create(a),
            Action::Create(b),
            Action::RequestCreate(w),
            Action::Create(w),
            Action::RequestCommit(w, Value::Int(0)), // b reads initial 0
            Action::Commit(w),
            Action::ReportCommit(w, Value::Int(0)),
            Action::RequestCreate(u),
            Action::Create(u),
            Action::RequestCommit(u, Value::Ok), // a writes 5 after
            Action::Commit(u),
            Action::ReportCommit(u, Value::Ok),
            Action::RequestCommit(a, Value::Ok),
            Action::Commit(a),
            Action::ReportCommit(a, Value::Ok), // a reported FIRST
            Action::RequestCommit(b, Value::Ok),
            Action::Commit(b),
            Action::ReportCommit(b, Value::Ok), // b reported second
        ];
        let g = build_sg(&tree, &beta, ConflictSource::ReadWrite);
        let order = g.topological_order().expect("acyclic");
        assert_eq!(order.orders(b, a), Some(true), "conflict forces b first");
        let gamma = reconstruct_witness(&tree, &beta, &order, &types).expect("witness");
        // In γ, b's subtree must execute before a's.
        let pos = |needle: &Action| gamma.iter().position(|g| g == needle).unwrap();
        assert!(pos(&Action::Create(b)) < pos(&Action::Create(a)));
        // Root view preserved: reports still arrive a first.
        assert!(
            pos(&Action::ReportCommit(a, Value::Ok)) < pos(&Action::ReportCommit(b, Value::Ok))
        );
    }

    #[test]
    fn aborted_children_appear_only_as_abort() {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let u = tree.add_access(a, x, Op::Write(9));
        let types = ObjectTypes::uniform(1, Arc::new(RwRegister::new(0)));
        let beta = vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::Create(a), // created, ran a bit…
            Action::RequestCreate(u),
            Action::Create(u),
            Action::RequestCommit(u, Value::Ok),
            Action::Abort(a), // …then aborted (generic systems allow this)
            Action::ReportAbort(a),
        ];
        let g = build_sg(&tree, &beta, ConflictSource::ReadWrite);
        let order = g.topological_order().expect("acyclic");
        let gamma = reconstruct_witness(&tree, &beta, &order, &types).expect("witness");
        assert!(gamma.contains(&Action::Abort(a)));
        assert!(
            !gamma.contains(&Action::Create(a)),
            "aborted ⇒ never created in γ"
        );
        assert!(!gamma.contains(&Action::RequestCommit(u, Value::Ok)));
        assert_eq!(
            nt_model::seq::tx_projection(&tree, &gamma, TxId::ROOT),
            nt_model::seq::tx_projection(&tree, &beta, TxId::ROOT),
        );
    }

    #[test]
    fn live_children_remain_requested_only() {
        let mut tree = TxTree::new();
        let a = tree.add_inner(TxId::ROOT);
        let types = ObjectTypes::uniform(0, Arc::new(RwRegister::new(0)));
        let beta = vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::Create(a), // still live at the end of β
        ];
        let g = build_sg(&tree, &beta, ConflictSource::ReadWrite);
        let order = g.topological_order().expect("acyclic");
        let gamma = reconstruct_witness(&tree, &beta, &order, &types).expect("witness");
        assert_eq!(
            gamma,
            vec![Action::Create(TxId::ROOT), Action::RequestCreate(a)],
            "a's own CREATE is not visible and vanishes"
        );
    }
}

#[cfg(test)]
mod flush_tests {
    use super::*;
    use crate::relations::{build_sg, ConflictSource};
    use nt_model::Op;
    use nt_serial::{ObjectTypes, RwRegister};
    use std::sync::Arc;

    /// A committed top-level transaction whose report never arrived: the
    /// witness must still execute it (the "flush" path of the
    /// construction), after every reported sibling it is ordered behind.
    #[test]
    fn committed_but_unreported_children_are_flushed() {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let ua = tree.add_access(a, x, Op::Write(1));
        let ub = tree.add_access(b, x, Op::Write(2));
        let types = ObjectTypes::uniform(1, Arc::new(RwRegister::new(0)));
        let beta = vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::RequestCreate(b),
            Action::Create(a),
            Action::Create(b),
            Action::RequestCreate(ua),
            Action::Create(ua),
            Action::RequestCommit(ua, Value::Ok),
            Action::Commit(ua),
            Action::ReportCommit(ua, Value::Ok),
            Action::RequestCommit(a, Value::Ok),
            Action::Commit(a),
            Action::ReportCommit(a, Value::Ok),
            Action::RequestCreate(ub),
            Action::Create(ub),
            Action::RequestCommit(ub, Value::Ok),
            Action::Commit(ub),
            Action::ReportCommit(ub, Value::Ok),
            Action::RequestCommit(b, Value::Ok),
            Action::Commit(b),
            // NOTE: no REPORT_COMMIT(b) — the controller never got to it.
        ];
        let g = build_sg(&tree, &beta, ConflictSource::ReadWrite);
        let order = g.topological_order().expect("acyclic");
        let gamma = reconstruct_witness(&tree, &beta, &order, &types).expect("witness");
        // b's whole subtree appears in γ even though unreported…
        assert!(gamma.contains(&Action::Commit(b)));
        assert!(gamma.contains(&Action::RequestCommit(ub, Value::Ok)));
        // …and the root view is unchanged (no report in either).
        assert_eq!(
            nt_model::seq::tx_projection(&tree, &gamma, TxId::ROOT),
            nt_model::seq::tx_projection(&tree, &beta, TxId::ROOT),
        );
        assert!(!gamma.contains(&Action::ReportCommit(b, Value::Ok)));
    }

    /// Two unreported committed children must flush in R order.
    #[test]
    fn flushed_children_respect_the_sibling_order() {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let ua = tree.add_access(a, x, Op::Write(1));
        let ub = tree.add_access(b, x, Op::Write(2));
        let types = ObjectTypes::uniform(1, Arc::new(RwRegister::new(0)));
        let beta = vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::RequestCreate(b),
            Action::Create(a),
            Action::Create(b),
            Action::RequestCreate(ua),
            Action::Create(ua),
            Action::RequestCommit(ua, Value::Ok),
            Action::Commit(ua),
            Action::ReportCommit(ua, Value::Ok),
            Action::RequestCommit(a, Value::Ok),
            Action::Commit(a),
            Action::RequestCreate(ub),
            Action::Create(ub),
            Action::RequestCommit(ub, Value::Ok),
            Action::Commit(ub),
            Action::ReportCommit(ub, Value::Ok),
            Action::RequestCommit(b, Value::Ok),
            Action::Commit(b),
            // Neither a nor b reported to T0.
        ];
        let g = build_sg(&tree, &beta, ConflictSource::ReadWrite);
        let order = g.topological_order().expect("acyclic");
        // Conflict ua→ub forces a before b.
        assert_eq!(order.orders(a, b), Some(true));
        let gamma = reconstruct_witness(&tree, &beta, &order, &types).expect("witness");
        let pos = |needle: &Action| gamma.iter().position(|g| g == needle).unwrap();
        assert!(pos(&Action::Commit(a)) < pos(&Action::Create(b)));
    }
}

#[cfg(test)]
mod error_path_tests {
    use super::*;
    use nt_model::Op;
    use nt_serial::{ObjectTypes, RwRegister};
    use std::sync::Arc;

    fn one_tx() -> (TxTree, TxId, TxId, ObjectTypes) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let u = tree.add_access(a, x, Op::Write(1));
        let types = ObjectTypes::uniform(1, Arc::new(RwRegister::new(0)));
        (tree, a, u, types)
    }

    #[test]
    fn report_for_unrequested_child_is_not_well_formed() {
        let (tree, a, _u, types) = one_tx();
        let order = SiblingOrder::from_lists([(TxId::ROOT, vec![a])]);
        // T0 receives a report for a child it never requested.
        let beta = vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::Create(a),
            Action::RequestCommit(a, Value::Ok),
            Action::Commit(a),
            Action::ReportCommit(a, Value::Ok),
            Action::ReportCommit(a, Value::Ok), // duplicate: c not pending
        ];
        // The second report hits a child already executed — handled; but a
        // report with NO preceding request at all must error. Construct it:
        let beta2 = vec![
            Action::Create(TxId::ROOT),
            Action::Commit(a), // completion without request (not simple,
            // but the builder must not panic)
            Action::ReportCommit(a, Value::Ok),
        ];
        let r2 = reconstruct_witness(&tree, &beta2, &order, &types);
        assert!(matches!(r2, Err(WitnessError::NotWellFormed { .. })));
        // The duplicate-report case is tolerated (already-executed path).
        let r1 = reconstruct_witness(&tree, &beta, &order, &types);
        assert!(r1.is_ok() || matches!(r1, Err(WitnessError::InvalidSerial(_))));
    }

    #[test]
    fn missing_create_in_projection_is_not_well_formed() {
        let (tree, a, _u, types) = one_tx();
        let order = SiblingOrder::from_lists([(TxId::ROOT, vec![a])]);
        // a commits without ever being created: its visible projection
        // lacks CREATE(a).
        let beta = vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::RequestCommit(a, Value::Ok),
            Action::Commit(a),
            Action::ReportCommit(a, Value::Ok),
        ];
        let r = reconstruct_witness(&tree, &beta, &order, &types);
        assert!(
            matches!(r, Err(WitnessError::NotWellFormed { .. })),
            "{r:?}"
        );
    }

    #[test]
    fn synthesized_root_create_is_excluded_from_comparison() {
        // β without CREATE(T0): the witness synthesizes it and the root
        // views still match.
        let (tree, a, _u, types) = one_tx();
        let order = SiblingOrder::from_lists([(TxId::ROOT, vec![a])]);
        let beta = vec![
            Action::RequestCreate(a),
            Action::Create(a),
            Action::RequestCommit(a, Value::Ok),
            Action::Commit(a),
        ];
        let gamma = reconstruct_witness(&tree, &beta, &order, &types).expect("ok");
        assert_eq!(gamma[0], Action::Create(TxId::ROOT));
    }
}
