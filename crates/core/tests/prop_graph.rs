//! Property tests for the serialization-graph data structure: topological
//! orders respect edges, cycle detection agrees with sortability, and the
//! construction is deterministic.

use nt_model::{TxId, TxTree};
use nt_sgt::{EdgeKind, SerializationGraph, SgEdge};
use proptest::prelude::*;

fn flat_tree(n: usize) -> (TxTree, Vec<TxId>) {
    let mut tree = TxTree::new();
    let kids = (0..n).map(|_| tree.add_inner(TxId::ROOT)).collect();
    (tree, kids)
}

fn graph_from(pairs: &[(u8, u8)], kids: &[TxId]) -> SerializationGraph {
    let mut g = SerializationGraph::new();
    for &k in kids {
        g.add_node(TxId::ROOT, k);
    }
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let from = kids[a as usize % kids.len()];
        let to = kids[b as usize % kids.len()];
        if from != to {
            g.add_edge(SgEdge {
                parent: TxId::ROOT,
                from,
                to,
                kind: if i % 2 == 0 {
                    EdgeKind::Conflict
                } else {
                    EdgeKind::Precedes
                },
                witness: (i, i + 1),
            });
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn toposort_iff_acyclic(
        n in 2usize..10,
        pairs in prop::collection::vec((any::<u8>(), any::<u8>()), 0..30),
    ) {
        let (_tree, kids) = flat_tree(n);
        let g = graph_from(&pairs, &kids);
        let acyclic = g.is_acyclic();
        let topo = g.topological_order();
        prop_assert_eq!(acyclic, topo.is_some());
        prop_assert_eq!(!acyclic, g.find_cycle().is_some());
    }

    #[test]
    fn toposort_respects_every_edge(
        n in 2usize..10,
        pairs in prop::collection::vec((any::<u8>(), any::<u8>()), 0..20),
    ) {
        let (_tree, kids) = flat_tree(n);
        let g = graph_from(&pairs, &kids);
        if let Some(order) = g.topological_order() {
            for e in &g.edges {
                prop_assert_eq!(
                    order.orders(e.from, e.to),
                    Some(true),
                    "edge {:?}→{:?} violated", e.from, e.to
                );
            }
            // The order totalizes all nodes.
            for &a in &kids {
                for &b in &kids {
                    if a != b {
                        prop_assert!(order.orders(a, b).is_some());
                    }
                }
            }
        }
    }

    #[test]
    fn cycle_report_is_a_real_cycle(
        n in 2usize..8,
        pairs in prop::collection::vec((any::<u8>(), any::<u8>()), 1..30),
    ) {
        let (_tree, kids) = flat_tree(n);
        let g = graph_from(&pairs, &kids);
        if let Some(cycle) = g.find_cycle() {
            prop_assert!(cycle.len() >= 2);
            prop_assert_eq!(cycle.first(), cycle.last());
            for w in cycle.windows(2) {
                prop_assert!(
                    g.successors(TxId::ROOT, w[0]).contains(&w[1]),
                    "cycle edge {:?}→{:?} not in graph", w[0], w[1]
                );
            }
        }
    }

    #[test]
    fn construction_is_deterministic(
        n in 2usize..8,
        pairs in prop::collection::vec((any::<u8>(), any::<u8>()), 0..20),
    ) {
        let (_tree, kids) = flat_tree(n);
        let g1 = graph_from(&pairs, &kids);
        let g2 = graph_from(&pairs, &kids);
        prop_assert_eq!(&g1.edges, &g2.edges);
        match (g1.topological_order(), g2.topological_order()) {
            (Some(o1), Some(o2)) => {
                for &a in &kids {
                    for &b in &kids {
                        prop_assert_eq!(o1.orders(a, b), o2.orders(a, b));
                    }
                }
            }
            (None, None) => {}
            _ => prop_assert!(false, "nondeterministic acyclicity"),
        }
    }
}
