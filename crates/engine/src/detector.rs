//! Wait-for-graph deadlock detector (a dedicated thread) and the run
//! watchdog.
//!
//! Every `detector_period_us` the detector snapshots the lock table's
//! wait-for relation, collapses it to *top-level groups* (deadlock in this
//! engine is always between top-level subtrees — each subtree runs
//! depth-first on one worker, so there is no intra-subtree waiting), and
//! looks for a cycle. For one cycle edge it dooms a single victim: the
//! lowest (deepest) incomplete transaction on the blocking lockholder's
//! ancestor chain — the same policy the simulator's deadlock module uses —
//! claimed through the status table's CAS so a racing commit wins cleanly.
//!
//! The doomed victim is always an ancestor-or-self of a transaction some
//! worker is actively executing (held locks lie on that worker's current
//! depth-first path), so the victim's worker notices the doom at its next
//! blocked acquire, slot boundary, or commit attempt, unwinds to the
//! victim's frame, aborts it there, and — when retry is configured — hands
//! the slot to the `nt-faults` backoff machinery.

use crate::locktable::LockTable;
use crate::status::StatusTable;
use crate::tree_view::TreeView;
use nt_model::TxId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// One doomed deadlock victim, with the wait-for edge that convicted it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Victim {
    /// The transaction the detector doomed.
    pub victim: TxId,
    /// The parked access whose wait-for edge closed the cycle.
    pub waiter: TxId,
    /// The lockholder blocking `waiter`; `victim` is its lowest incomplete
    /// ancestor-or-self.
    pub blocker: TxId,
}

/// What the detector thread did over the whole run.
#[derive(Debug, Default)]
pub struct DetectorOutcome {
    /// Scan passes performed.
    pub passes: u64,
    /// Victims doomed, in doom order.
    pub victims: Vec<Victim>,
    /// True iff the wall-clock watchdog fired and the run was abandoned.
    pub gave_up: bool,
}

/// The detector thread body: scan every `period` until `stop` is set.
/// Also hosts the watchdog — after `max_wall` the whole run is abandoned
/// (every incomplete top-level transaction is doomed and the lock table is
/// put into give-up mode).
#[allow(clippy::too_many_arguments)] // one call site, in run_plan
pub fn detect_loop<T: TreeView>(
    tree: &T,
    status: &StatusTable,
    table: &LockTable<T>,
    top: &[TxId],
    period: Duration,
    max_wall: Duration,
    start: Instant,
    stop: &AtomicBool,
) -> DetectorOutcome {
    let mut out = DetectorOutcome::default();
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(period);
        if stop.load(Ordering::Acquire) {
            break;
        }
        out.passes += 1;
        if !out.gave_up && start.elapsed() >= max_wall {
            out.gave_up = true;
            for &t in top {
                if !status.is_complete(t) {
                    status.mark_doomed(t);
                }
            }
            table.give_up();
            continue;
        }
        if let Some(victim) = scan_once(tree, status, table) {
            out.victims.push(victim);
            table.notify_all_shards();
        }
    }
    out
}

/// One detector pass: snapshot, build the group-level wait-for graph, doom
/// at most one victim. Public so tests can drive the detector manually.
pub fn scan_once<T: TreeView, U: TreeView>(
    tree: &T,
    status: &StatusTable,
    table: &LockTable<U>,
) -> Option<Victim> {
    let snapshot = table.waiting_snapshot();
    if snapshot.is_empty() {
        return None;
    }
    // Group-level edges gw -> gb, each remembering one concrete
    // (waiter, blocker) witness pair.
    let mut edges: BTreeMap<TxId, BTreeMap<TxId, (TxId, TxId)>> = BTreeMap::new();
    for (waiter, blockers) in &snapshot {
        let gw = tree.child_toward(TxId::ROOT, *waiter);
        for &b in blockers {
            let gb = tree.child_toward(TxId::ROOT, b);
            if gw != gb {
                edges
                    .entry(gw)
                    .or_default()
                    .entry(gb)
                    .or_insert((*waiter, b));
            }
        }
    }
    let cycle = find_cycle(&edges)?;
    // Doom the lowest incomplete transaction on a cycle edge's blocker
    // chain. Try each edge until one doom CAS lands (a racing commit may
    // have dissolved part of the cycle since the snapshot).
    for (waiter, blocker) in cycle {
        let mut cur = Some(blocker);
        while let Some(u) = cur {
            if u == TxId::ROOT {
                break;
            }
            if !status.is_complete(u) && status.mark_doomed(u) {
                return Some(Victim {
                    victim: u,
                    waiter,
                    blocker,
                });
            }
            cur = tree.parent(u);
        }
    }
    None
}

/// Find one cycle in the group graph; returns the witness (waiter,
/// blocker) pairs of the edges along it.
fn find_cycle(edges: &BTreeMap<TxId, BTreeMap<TxId, (TxId, TxId)>>) -> Option<Vec<(TxId, TxId)>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<TxId, Color> = edges.keys().map(|&n| (n, Color::White)).collect();
    // Iterative DFS keeping the gray path so the cycle can be read back.
    for &root in edges.keys() {
        if color[&root] != Color::White {
            continue;
        }
        // Stack of (node, iterator position into its successors).
        let mut path: Vec<(TxId, usize)> = vec![(root, 0)];
        *color.get_mut(&root).expect("known node") = Color::Gray;
        while let Some(&mut (node, ref mut pos)) = path.last_mut() {
            let succs: Vec<TxId> = edges
                .get(&node)
                .map(|m| m.keys().copied().collect())
                .unwrap_or_default();
            if *pos >= succs.len() {
                color.insert(node, Color::Black);
                path.pop();
                continue;
            }
            let next = succs[*pos];
            *pos += 1;
            match color.get(&next).copied().unwrap_or(Color::Black) {
                Color::Gray => {
                    // Back edge: the cycle is the path suffix from `next`
                    // through `node`, closed by node -> next.
                    let from = path
                        .iter()
                        .position(|&(n, _)| n == next)
                        .expect("gray node is on the path");
                    let mut nodes: Vec<TxId> = path[from..].iter().map(|&(n, _)| n).collect();
                    nodes.push(next);
                    let witnesses = nodes.windows(2).map(|w| edges[&w[0]][&w[1]]).collect();
                    return Some(witnesses);
                }
                Color::White => {
                    color.insert(next, Color::Gray);
                    path.push((next, 0));
                }
                Color::Black => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_cycle_sees_two_party_cycle() {
        let a = TxId(1);
        let b = TxId(2);
        let wa = TxId(10);
        let wb = TxId(20);
        let mut edges: BTreeMap<TxId, BTreeMap<TxId, (TxId, TxId)>> = BTreeMap::new();
        edges.entry(a).or_default().insert(b, (wa, TxId(21)));
        edges.entry(b).or_default().insert(a, (wb, TxId(11)));
        let cycle = find_cycle(&edges).expect("cycle exists");
        assert_eq!(cycle.len(), 2);
        assert!(cycle.contains(&(wa, TxId(21))));
        assert!(cycle.contains(&(wb, TxId(11))));
    }

    #[test]
    fn find_cycle_ignores_dags() {
        let mut edges: BTreeMap<TxId, BTreeMap<TxId, (TxId, TxId)>> = BTreeMap::new();
        edges
            .entry(TxId(1))
            .or_default()
            .insert(TxId(2), (TxId(10), TxId(20)));
        edges
            .entry(TxId(2))
            .or_default()
            .insert(TxId(3), (TxId(20), TxId(30)));
        assert_eq!(find_cycle(&edges), None);
    }
}
