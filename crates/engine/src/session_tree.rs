//! A concurrent, append-only transaction naming tree for interactive
//! sessions (the networked server), where the tree *grows* while
//! transactions run instead of being frozen up front.
//!
//! ## Why not `RwLock<TxTree>`
//!
//! The lock table reads ancestry relations while holding a shard mutex,
//! and session threads append nodes while other threads are parked inside
//! the lock table. Guarding the whole tree with an `RwLock` would create a
//! lock-order cycle (shard mutex → tree read lock in `acquire`, tree read
//! lock → shard mutex in the detector) that deadlocks the moment a writer
//! queues between two readers. Instead the tree is a fixed-capacity arena
//! of `OnceLock` slots: a node's parent/depth/kind never change after
//! registration, appends serialize on a private mutex, and the published
//! length is released *after* the slot is set — so readers never block and
//! never observe a half-written node.
//!
//! Capacity is fixed at construction; exhausting it is a clean, typed
//! error the server surfaces to the client (admission control), not a
//! reallocation hazard.

use crate::recorder::ActionSink;
use crate::tree_view::TreeView;
use nt_model::{ObjId, Op, TxId, TxTree};
use nt_sgt_live::FeedHandle;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Why an append was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// The arena is full; the server refuses new transactions.
    Capacity,
    /// The named parent has not been registered.
    UnknownParent(TxId),
    /// The named parent is an access (accesses are leaves).
    ParentIsAccess(TxId),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Capacity => write!(f, "transaction capacity exhausted"),
            TreeError::UnknownParent(t) => write!(f, "unknown parent transaction {t}"),
            TreeError::ParentIsAccess(t) => write!(f, "parent {t} is an access (a leaf)"),
        }
    }
}

enum NodeKind {
    Inner,
    Access { object: ObjId, op: Op },
}

struct Node {
    parent: TxId,
    depth: u32,
    kind: NodeKind,
}

/// The growable arena. `T0` occupies slot 0 from birth.
pub struct SessionTree {
    slots: Vec<OnceLock<Node>>,
    len: AtomicU32,
    num_objects: AtomicU32,
    append: Mutex<()>,
    sink: Option<Arc<dyn ActionSink>>,
    feed: Option<FeedHandle>,
}

impl SessionTree {
    /// An arena able to name `capacity` transactions (including `T0`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must cover T0");
        let slots: Vec<OnceLock<Node>> = (0..capacity).map(|_| OnceLock::new()).collect();
        slots[0]
            .set(Node {
                parent: TxId::ROOT,
                depth: 0,
                kind: NodeKind::Inner,
            })
            .unwrap_or_else(|_| unreachable!("fresh slot"));
        SessionTree {
            slots,
            len: AtomicU32::new(1),
            num_objects: AtomicU32::new(0),
            append: Mutex::new(()),
            sink: None,
            feed: None,
        }
    }

    /// Tee every registration into a durable sink. Records are written
    /// under the append mutex, so the sink sees them in `TxId` order and
    /// always before any action naming the transaction. Attach the sink
    /// *after* replaying recovered registrations, or recovery would
    /// re-log them.
    pub fn with_sink(mut self, sink: Arc<dyn ActionSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Tee every registration into the live certifier. Sent under the
    /// append mutex before the slot is published, so the certifier learns
    /// a transaction's shape strictly before any action naming it.
    pub fn with_feed(mut self, feed: FeedHandle) -> Self {
        self.feed = Some(feed);
        self
    }

    /// Registered transactions (monotone; includes `T0`).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire) as usize
    }

    /// Is only `T0` registered?
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// The arena capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// One past the highest object id any access has named.
    pub fn num_objects(&self) -> usize {
        self.num_objects.load(Ordering::Acquire) as usize
    }

    /// Is `t` a registered transaction?
    pub fn contains(&self, t: TxId) -> bool {
        t.index() < self.len()
    }

    fn node(&self, t: TxId) -> &Node {
        self.slots[t.index()]
            .get()
            .expect("queried transaction is registered")
    }

    fn push(&self, parent: TxId, kind: NodeKind) -> Result<TxId, TreeError> {
        let _guard = self.append.lock().expect("append mutex poisoned");
        let i = self.len.load(Ordering::Relaxed) as usize;
        if i >= self.slots.len() {
            return Err(TreeError::Capacity);
        }
        if parent.index() >= i {
            return Err(TreeError::UnknownParent(parent));
        }
        let pnode = self.node(parent);
        if matches!(pnode.kind, NodeKind::Access { .. }) {
            return Err(TreeError::ParentIsAccess(parent));
        }
        let depth = pnode.depth + 1;
        if let NodeKind::Access { object, .. } = &kind {
            // Monotone max under the append mutex (the only writer).
            let seen = self.num_objects.load(Ordering::Relaxed);
            if object.0 + 1 > seen {
                self.num_objects.store(object.0 + 1, Ordering::Release);
            }
        }
        if let Some(sink) = &self.sink {
            // Logged before the slot is published: the registration is
            // durable (in WAL order) by the time any reader can name it.
            let access = match &kind {
                NodeKind::Access { object, op } => Some((*object, op)),
                NodeKind::Inner => None,
            };
            sink.append_tree_add(TxId(i as u32), parent, access);
        }
        if let Some(feed) = &self.feed {
            let access = match &kind {
                NodeKind::Access { object, op } => Some((*object, op.clone())),
                NodeKind::Inner => None,
            };
            feed.tree_add(TxId(i as u32), parent, access);
        }
        self.slots[i]
            .set(Node {
                parent,
                depth,
                kind,
            })
            .unwrap_or_else(|_| unreachable!("slot {i} below len is never set twice"));
        self.len.store((i + 1) as u32, Ordering::Release);
        Ok(TxId(i as u32))
    }

    /// Register a fresh inner transaction under `parent`.
    pub fn add_inner(&self, parent: TxId) -> Result<TxId, TreeError> {
        self.push(parent, NodeKind::Inner)
    }

    /// Register a fresh access under `parent`, bound to `object`/`op`.
    pub fn add_access(&self, parent: TxId, object: ObjId, op: Op) -> Result<TxId, TreeError> {
        self.push(parent, NodeKind::Access { object, op })
    }

    /// Snapshot the arena as a frozen [`TxTree`] (for certification and
    /// the wire). Node ids are assigned sequentially in both
    /// representations, so replaying registrations in index order
    /// reproduces identical ids.
    pub fn to_tx_tree(&self) -> TxTree {
        let len = self.len();
        let mut tree = TxTree::new();
        tree.add_objects(self.num_objects());
        for i in 1..len {
            let n = self.node(TxId(i as u32));
            let id = match &n.kind {
                NodeKind::Inner => tree.add_inner(n.parent),
                NodeKind::Access { object, op } => tree.add_access(n.parent, *object, op.clone()),
            };
            debug_assert_eq!(id, TxId(i as u32), "sequential ids replay identically");
        }
        tree
    }
}

impl TreeView for SessionTree {
    fn parent(&self, t: TxId) -> Option<TxId> {
        if t == TxId::ROOT {
            None
        } else {
            Some(self.node(t).parent)
        }
    }
    fn depth(&self, t: TxId) -> u32 {
        self.node(t).depth
    }
    fn is_access(&self, t: TxId) -> bool {
        matches!(self.node(t).kind, NodeKind::Access { .. })
    }
    fn object_of(&self, t: TxId) -> Option<ObjId> {
        match self.node(t).kind {
            NodeKind::Access { object, .. } => Some(object),
            NodeKind::Inner => None,
        }
    }
    fn op_of(&self, t: TxId) -> Option<Op> {
        match &self.node(t).kind {
            NodeKind::Access { op, .. } => Some(op.clone()),
            NodeKind::Inner => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_and_snapshots_like_txtree() {
        let st = SessionTree::new(16);
        let a = st.add_inner(TxId::ROOT).expect("inner");
        let b = st.add_inner(a).expect("inner");
        let u = st.add_access(b, ObjId(3), Op::Write(7)).expect("access");
        assert_eq!(st.len(), 4);
        assert_eq!(st.num_objects(), 4);
        assert!(st.is_ancestor(a, u));
        assert!(!st.is_ancestor(u, a) || u == a);
        assert_eq!(st.child_toward(TxId::ROOT, u), a);
        assert_eq!(TreeView::op_of(&st, u), Some(Op::Write(7)));

        let frozen = st.to_tx_tree();
        assert_eq!(frozen.len(), 4);
        assert_eq!(frozen.num_objects(), 4);
        assert_eq!(frozen.parent(u), Some(b));
        assert_eq!(frozen.op_of(u), Some(&Op::Write(7)));
    }

    #[test]
    fn refuses_bad_appends() {
        let st = SessionTree::new(4);
        let a = st.add_inner(TxId::ROOT).expect("inner");
        let u = st.add_access(a, ObjId(0), Op::Read).expect("access");
        assert_eq!(st.add_inner(u), Err(TreeError::ParentIsAccess(u)));
        assert_eq!(
            st.add_inner(TxId(9)),
            Err(TreeError::UnknownParent(TxId(9)))
        );
        st.add_inner(a).expect("fills the arena");
        assert_eq!(st.add_inner(a), Err(TreeError::Capacity));
    }

    #[test]
    fn concurrent_readers_see_published_nodes() {
        let st = std::sync::Arc::new(SessionTree::new(1024));
        let writer = {
            let st = std::sync::Arc::clone(&st);
            std::thread::spawn(move || {
                let mut parent = TxId::ROOT;
                for i in 0..1000 {
                    if i % 3 == 0 {
                        parent = st.add_inner(TxId::ROOT).expect("capacity suffices");
                    } else {
                        st.add_access(parent, ObjId(i % 7), Op::Read)
                            .expect("capacity suffices");
                    }
                }
            })
        };
        let reader = {
            let st = std::sync::Arc::clone(&st);
            std::thread::spawn(move || {
                let mut max_seen = 1;
                for _ in 0..10_000 {
                    let n = st.len();
                    assert!(n >= max_seen, "len is monotone");
                    max_seen = n;
                    // Every published node is fully readable.
                    let t = TxId((n - 1) as u32);
                    let _ = st.depth(t);
                    let _ = st.is_ancestor(TxId::ROOT, t);
                }
            })
        };
        writer.join().expect("writer");
        reader.join().expect("reader");
    }
}
