//! Lock-free per-transaction status: running / committed / aborted plus a
//! *doomed* bit the deadlock detector sets.
//!
//! Commit and doom race by design: the detector dooms a victim with a CAS
//! that refuses completed transactions, and workers commit with a CAS that
//! refuses doomed ones. Exactly one of the two wins, so no global mutex is
//! needed on the hot commit path.

use crate::tree_view::TreeView;
use nt_model::TxId;
use std::sync::atomic::{AtomicU8, Ordering};

const RUNNING: u8 = 0;
const COMMITTED: u8 = 1;
const ABORTED: u8 = 2;
const STATE: u8 = 0b0000_0011;
const DOOMED: u8 = 0b1000_0000;

/// One atomic status byte per transaction in the tree.
pub struct StatusTable {
    slots: Vec<AtomicU8>,
}

impl StatusTable {
    /// A table for a tree of `n` transactions, all running.
    pub fn new(n: usize) -> Self {
        StatusTable {
            slots: (0..n).map(|_| AtomicU8::new(RUNNING)).collect(),
        }
    }

    fn slot(&self, t: TxId) -> &AtomicU8 {
        &self.slots[t.index()]
    }

    /// Has `t` committed?
    pub fn is_committed(&self, t: TxId) -> bool {
        self.slot(t).load(Ordering::Acquire) & STATE == COMMITTED
    }

    /// Has `t` aborted?
    pub fn is_aborted(&self, t: TxId) -> bool {
        self.slot(t).load(Ordering::Acquire) & STATE == ABORTED
    }

    /// Has `t` committed or aborted?
    pub fn is_complete(&self, t: TxId) -> bool {
        self.slot(t).load(Ordering::Acquire) & STATE != RUNNING
    }

    /// Is `t` marked as a deadlock victim?
    pub fn is_doomed(&self, t: TxId) -> bool {
        self.slot(t).load(Ordering::Acquire) & DOOMED != 0
    }

    /// Doom `t` (detector side). Fails — returns `false` — when `t` already
    /// completed or was already doomed, so each victim is claimed once.
    pub fn mark_doomed(&self, t: TxId) -> bool {
        self.slot(t)
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |s| {
                if s & STATE != RUNNING || s & DOOMED != 0 {
                    None
                } else {
                    Some(s | DOOMED)
                }
            })
            .is_ok()
    }

    /// Commit `t` (worker side). Fails when `t` was doomed (or somehow
    /// already completed); the caller must then take the abort path.
    pub fn try_commit(&self, t: TxId) -> bool {
        self.slot(t)
            .compare_exchange(RUNNING, COMMITTED, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Record that the worker aborted `t` (keeps the doom bit for
    /// inspection).
    pub fn mark_aborted(&self, t: TxId) {
        let _ = self
            .slot(t)
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |s| {
                Some((s & !STATE) | ABORTED)
            });
    }

    /// The *highest* (closest to `T0`, excluding `T0` itself) doomed
    /// ancestor-or-self of `t`, if any. The worker unwinds its depth-first
    /// execution to that transaction's frame and aborts there, so one doom
    /// kills exactly one subtree.
    pub fn doomed_ancestor<T: TreeView + ?Sized>(&self, tree: &T, t: TxId) -> Option<TxId> {
        let mut highest = None;
        let mut cur = Some(t);
        while let Some(u) = cur {
            if u != TxId::ROOT && self.is_doomed(u) {
                highest = Some(u);
            }
            cur = tree.parent(u);
        }
        highest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_model::{Op, TxTree};

    #[test]
    fn doom_and_commit_exclude_each_other() {
        let st = StatusTable::new(4);
        let t = TxId(1);
        assert!(st.mark_doomed(t));
        assert!(!st.mark_doomed(t), "doom claimed once");
        assert!(!st.try_commit(t), "doomed cannot commit");
        st.mark_aborted(t);
        assert!(st.is_aborted(t));
        assert!(st.is_doomed(t), "doom bit survives the abort");

        let u = TxId(2);
        assert!(st.try_commit(u));
        assert!(!st.mark_doomed(u), "completed cannot be doomed");
        assert!(st.is_committed(u));
    }

    #[test]
    fn doomed_ancestor_picks_highest() {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(a);
        let u = tree.add_access(b, x, Op::Read);
        let st = StatusTable::new(tree.len());
        assert_eq!(st.doomed_ancestor(&tree, u), None);
        assert!(st.mark_doomed(b));
        assert_eq!(st.doomed_ancestor(&tree, u), Some(b));
        assert!(st.mark_doomed(a));
        assert_eq!(st.doomed_ancestor(&tree, u), Some(a), "highest wins");
        assert_eq!(st.doomed_ancestor(&tree, a), Some(a), "self counts");
    }
}
