//! Concurrent history recorder: per-worker append-only buffers stamped from
//! one global sequence counter, merged into a single behavior after the
//! run.
//!
//! Correctness of the merged history rests on one property: if action `A`
//! causally precedes action `B` — same worker in program order, or across
//! workers through a lock-shard mutex — then `stamp(A) < stamp(B)`. Both
//! cases follow from coherence of the single atomic counter: the later
//! `fetch_add` necessarily observes a larger value, regardless of memory
//! ordering, so `Relaxed` suffices. Object-level actions (`REQUEST_COMMIT`
//! answers, `INFORM_*`) are stamped *while the owning shard mutex is held*,
//! which linearizes them per object exactly as the lock table serialized
//! the state changes they describe.

use nt_model::Action;
use std::sync::atomic::{AtomicU64, Ordering};

/// The global sequence counter every stamp is drawn from.
#[derive(Debug, Default)]
pub struct SeqClock(AtomicU64);

impl SeqClock {
    /// A fresh clock at zero.
    pub fn new() -> Self {
        SeqClock(AtomicU64::new(0))
    }

    /// Draw the next stamp.
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Stamps issued so far.
    pub fn issued(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One worker's (or the main thread's, or a shard-stamped) action buffer.
#[derive(Clone, Debug, Default)]
pub struct WorkerLog {
    entries: Vec<(u64, Action)>,
}

impl WorkerLog {
    /// An empty log.
    pub fn new() -> Self {
        WorkerLog::default()
    }

    /// Stamp and append one action.
    pub fn record(&mut self, clock: &SeqClock, action: Action) {
        self.entries.push((clock.next(), action));
    }

    /// Actions recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Merge per-worker logs into one behavior, ordered by stamp. Stamps are
/// unique (one `fetch_add` each), so the order is total.
pub fn merge(logs: impl IntoIterator<Item = WorkerLog>) -> Vec<Action> {
    let mut all: Vec<(u64, Action)> = logs.into_iter().flat_map(|l| l.entries).collect();
    all.sort_by_key(|&(s, _)| s);
    all.into_iter().map(|(_, a)| a).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_model::TxId;

    #[test]
    fn merge_orders_by_stamp_across_logs() {
        let clock = SeqClock::new();
        let mut a = WorkerLog::new();
        let mut b = WorkerLog::new();
        a.record(&clock, Action::Create(TxId(1)));
        b.record(&clock, Action::Create(TxId(2)));
        a.record(&clock, Action::Create(TxId(3)));
        b.record(&clock, Action::Create(TxId(4)));
        let merged = merge([a, b]);
        assert_eq!(
            merged,
            vec![
                Action::Create(TxId(1)),
                Action::Create(TxId(2)),
                Action::Create(TxId(3)),
                Action::Create(TxId(4)),
            ]
        );
        assert_eq!(clock.issued(), 4);
    }
}
