//! Concurrent history recorder: per-worker append-only buffers stamped from
//! one global sequence counter, merged into a single behavior after the
//! run.
//!
//! Correctness of the merged history rests on one property: if action `A`
//! causally precedes action `B` — same worker in program order, or across
//! workers through a lock-shard mutex — then `stamp(A) < stamp(B)`. Both
//! cases follow from coherence of the single atomic counter: the later
//! `fetch_add` necessarily observes a larger value, regardless of memory
//! ordering, so `Relaxed` suffices. Object-level actions (`REQUEST_COMMIT`
//! answers, `INFORM_*`) are stamped *while the owning shard mutex is held*,
//! which linearizes them per object exactly as the lock table serialized
//! the state changes they describe.
//!
//! ## Durable sinks
//!
//! A log may carry an [`ActionSink`] — the write-ahead log mount point
//! (`nt-store`). When present, [`WorkerLog::record`] delegates stamp
//! drawing to the sink, which draws the stamp *inside its own append
//! mutex* so the persisted log's file order equals stamp order. That
//! invariant is what makes a torn tail recoverable: losing a suffix of
//! WAL frames loses a *suffix* of stamps, never punches a hole in the
//! middle of the recorded history.
//!
//! ## Live certification feed
//!
//! A log may additionally carry a [`FeedHandle`] to the live
//! serialization-graph certifier (`nt-sgt-live`). Recorded
//! `(stamp, action)` pairs destined for the feed are *buffered in the
//! log* and shipped with one `act_batch` channel send per flush instead
//! of one send per action. A flush fires when the recorded action
//! resolves a transaction (`COMMIT`/`ABORT`/`REPORT_*`/`INFORM_*`),
//! when the buffer hits [`FEED_BUF_CAP`], and when the log is dropped —
//! so a buffered stamp is held no longer than the lifetime of the
//! transaction that drew it, which is also exactly how long the
//! maintainer's GC watermark would have been pinned by that live
//! transaction anyway. The certifier reorders racy arrivals by stamp,
//! but it only advances through a *contiguous* stamp sequence, so
//! **every** log sharing a clock must carry the feed (a stamp drawn by
//! an unfed log would park the maintainer until the end-of-run flush).

use nt_model::{Action, ObjId, Op, TxId};
use nt_sgt_live::FeedHandle;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The global sequence counter every stamp is drawn from.
#[derive(Debug, Default)]
pub struct SeqClock(AtomicU64);

impl SeqClock {
    /// A fresh clock at zero.
    pub fn new() -> Self {
        SeqClock(AtomicU64::new(0))
    }

    /// A clock that resumes at `next` — the crash–restart path: the
    /// recovered history owns every stamp below `next`, so the restarted
    /// engine's new actions merge strictly after it.
    pub fn starting_at(next: u64) -> Self {
        SeqClock(AtomicU64::new(next))
    }

    /// Draw the next stamp.
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Stamps issued so far.
    pub fn issued(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A durable sink the recorder tees into: the write-ahead log.
///
/// Implementations must draw the stamp from `clock` **while holding their
/// append lock**, so that persisted order equals stamp order (see the
/// module docs). The sink is invoked before the action is visible in any
/// in-memory log, i.e. the engine writes ahead.
pub trait ActionSink: Send + Sync {
    /// Draw a stamp and append `(stamp, action)` to the log; returns the
    /// stamp drawn.
    fn append_action(&self, clock: &SeqClock, action: &Action) -> u64;

    /// Record a transaction registration (`t` under `parent`; accesses
    /// carry their object and operation). Called under the session tree's
    /// append mutex, so tree records land in `TxId` order and always
    /// precede any action naming `t`.
    fn append_tree_add(&self, t: TxId, parent: TxId, access: Option<(ObjId, &Op)>);
}

/// Feed entries buffered in one log before a forced flush. Caps how
/// stale the live certifier's view of a long access run can get (and
/// how much memory a buffer pins) between transaction resolutions.
pub const FEED_BUF_CAP: usize = 64;

/// One worker's (or the main thread's, or a shard-stamped) action buffer.
#[derive(Default)]
pub struct WorkerLog {
    entries: Vec<(u64, Action)>,
    sink: Option<Arc<dyn ActionSink>>,
    feed: Option<FeedHandle>,
    /// Entries recorded since the last feed flush (empty when no feed).
    feed_buf: Vec<(u64, Action)>,
}

impl Clone for WorkerLog {
    /// Clones are history *snapshots* (`HISTORY_FETCH` on a live server):
    /// they copy the recorded entries but not the pending feed buffer —
    /// the original log keeps the responsibility of shipping those to
    /// the certifier exactly once.
    fn clone(&self) -> Self {
        WorkerLog {
            entries: self.entries.clone(),
            sink: self.sink.clone(),
            feed: self.feed.clone(),
            feed_buf: Vec::new(),
        }
    }
}

impl fmt::Debug for WorkerLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerLog")
            .field("entries", &self.entries)
            .field("sink", &self.sink.is_some())
            .field("feed", &self.feed.is_some())
            .field("feed_buf", &self.feed_buf.len())
            .finish()
    }
}

impl Drop for WorkerLog {
    fn drop(&mut self) {
        // Ship any still-buffered entries: a dropped log must never
        // strand a stamp, or the certifier parks at the hole forever.
        self.flush_feed();
    }
}

impl WorkerLog {
    /// An empty log.
    pub fn new() -> Self {
        WorkerLog::default()
    }

    /// An empty log that tees every record into a durable sink.
    pub fn with_sink(sink: Arc<dyn ActionSink>) -> Self {
        WorkerLog {
            entries: Vec::new(),
            sink: Some(sink),
            feed: None,
            feed_buf: Vec::new(),
        }
    }

    /// Tee every record into the live certifier (builder-style; composes
    /// with a sink — the WAL stamps, then the feed observes).
    pub fn with_feed(mut self, feed: FeedHandle) -> Self {
        self.feed = Some(feed);
        self
    }

    /// A frozen log seeded with already-recovered entries (no sink — the
    /// entries are already durable; re-appending them would duplicate the
    /// WAL).
    pub fn from_entries(entries: Vec<(u64, Action)>) -> Self {
        WorkerLog {
            entries,
            sink: None,
            feed: None,
            feed_buf: Vec::new(),
        }
    }

    /// Stamp and append one action (write-ahead when a sink is mounted,
    /// buffered toward the live certifier when a feed is attached).
    ///
    /// Feed buffering: one `act_batch` send per transaction resolution
    /// instead of one send per action. A resolution action is flushed
    /// *with* the buffer, so the certifier sees a commit and everything
    /// that led to it in a single message.
    pub fn record(&mut self, clock: &SeqClock, action: Action) {
        let stamp = match &self.sink {
            Some(sink) => sink.append_action(clock, &action),
            None => clock.next(),
        };
        if self.feed.is_some() {
            let resolves = matches!(
                action,
                Action::Commit(_)
                    | Action::Abort(_)
                    | Action::ReportCommit(..)
                    | Action::ReportAbort(_)
                    | Action::InformCommit(..)
                    | Action::InformAbort(..)
            );
            self.feed_buf.push((stamp, action.clone()));
            if resolves || self.feed_buf.len() >= FEED_BUF_CAP {
                self.flush_feed();
            }
        }
        self.entries.push((stamp, action));
    }

    /// Ship the buffered feed entries now (one channel send). No-op
    /// without a feed or with an empty buffer.
    pub fn flush_feed(&mut self) {
        if let Some(feed) = &self.feed {
            if !self.feed_buf.is_empty() {
                feed.act_batch(std::mem::take(&mut self.feed_buf));
            }
        }
    }

    /// Actions recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Merge per-worker logs into one behavior, ordered by stamp. Stamps are
/// unique (one `fetch_add` each), so the order is total.
pub fn merge(logs: impl IntoIterator<Item = WorkerLog>) -> Vec<Action> {
    let mut all: Vec<(u64, Action)> = logs
        .into_iter()
        .flat_map(|mut l| std::mem::take(&mut l.entries))
        .collect();
    all.sort_by_key(|&(s, _)| s);
    all.into_iter().map(|(_, a)| a).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_model::TxId;
    use std::sync::Mutex;

    #[test]
    fn merge_orders_by_stamp_across_logs() {
        let clock = SeqClock::new();
        let mut a = WorkerLog::new();
        let mut b = WorkerLog::new();
        a.record(&clock, Action::Create(TxId(1)));
        b.record(&clock, Action::Create(TxId(2)));
        a.record(&clock, Action::Create(TxId(3)));
        b.record(&clock, Action::Create(TxId(4)));
        let merged = merge([a, b]);
        assert_eq!(
            merged,
            vec![
                Action::Create(TxId(1)),
                Action::Create(TxId(2)),
                Action::Create(TxId(3)),
                Action::Create(TxId(4)),
            ]
        );
        assert_eq!(clock.issued(), 4);
    }

    struct CaptureSink(Mutex<Vec<(u64, Action)>>);

    impl ActionSink for CaptureSink {
        fn append_action(&self, clock: &SeqClock, action: &Action) -> u64 {
            let mut guard = self.0.lock().expect("capture poisoned");
            let stamp = clock.next();
            guard.push((stamp, action.clone()));
            stamp
        }
        fn append_tree_add(&self, _t: TxId, _parent: TxId, _access: Option<(ObjId, &Op)>) {}
    }

    #[test]
    fn sink_sees_every_record_with_matching_stamps() {
        let clock = SeqClock::starting_at(100);
        let sink = Arc::new(CaptureSink(Mutex::new(Vec::new())));
        let mut log = WorkerLog::with_sink(Arc::clone(&sink) as Arc<dyn ActionSink>);
        log.record(&clock, Action::Create(TxId(1)));
        log.record(&clock, Action::Commit(TxId(1)));
        let seen = sink.0.lock().expect("capture poisoned").clone();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (100, Action::Create(TxId(1))));
        assert_eq!(seen[1], (101, Action::Commit(TxId(1))));
        let merged = merge([log]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn from_entries_merges_before_live_records() {
        let clock = SeqClock::starting_at(2);
        let seeded = WorkerLog::from_entries(vec![
            (0, Action::Create(TxId(1))),
            (1, Action::Commit(TxId(1))),
        ]);
        let mut live = WorkerLog::new();
        live.record(&clock, Action::Create(TxId(2)));
        let merged = merge([live, seeded]);
        assert_eq!(
            merged,
            vec![
                Action::Create(TxId(1)),
                Action::Commit(TxId(1)),
                Action::Create(TxId(2)),
            ]
        );
    }
}
