//! Engine configuration: thread-pool size, lock-table sharding, deadlock
//! detector cadence, and retry/backoff wiring — with a JSON form so configs
//! can be linted statically (`nt-lint engine`).

use nt_faults::BackoffPolicy;
use nt_obs::json::{Json, JsonObj};

/// When a durable store is mounted, how an acknowledgment relates to the
/// write-ahead log reaching disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DurabilityMode {
    /// No durability wait: the WAL is appended but acknowledgments never
    /// block on fsync (crash loses the OS-buffered tail; recovery still
    /// replays the durable prefix).
    #[default]
    None,
    /// Fsync the WAL before acknowledging every state-changing request —
    /// strongest guarantee, one fsync per request on the critical path.
    FsyncPerCommit,
    /// Group commit: a background flusher fsyncs every `window_us`
    /// microseconds and acknowledgments park until their records are
    /// durable — amortizes the fsync across concurrent requests.
    GroupCommit {
        /// Flush window in microseconds (must be > 0).
        window_us: u64,
    },
}

impl DurabilityMode {
    /// The JSON tag `to_json`/`from_json` use for this mode.
    pub fn tag(&self) -> &'static str {
        match self {
            DurabilityMode::None => "none",
            DurabilityMode::FsyncPerCommit => "fsync",
            DurabilityMode::GroupCommit { .. } => "group",
        }
    }

    /// Parse from the JSON tag plus the optional window key. `window_us`
    /// is required (and must be > 0 to pass `problems`) only for `group`.
    pub fn from_tag(tag: &str, window_us: Option<u64>) -> Result<DurabilityMode, String> {
        match (tag, window_us) {
            ("none", None) => Ok(DurabilityMode::None),
            ("fsync", None) => Ok(DurabilityMode::FsyncPerCommit),
            ("group", Some(window_us)) => Ok(DurabilityMode::GroupCommit { window_us }),
            ("group", None) => Err("durability \"group\" requires group_commit_window_us".into()),
            ("none" | "fsync", Some(_)) => Err(format!(
                "durability {tag:?} takes no group_commit_window_us"
            )),
            _ => Err(format!(
                "unknown durability {tag:?} (expected \"none\", \"fsync\", or \"group\")"
            )),
        }
    }

    /// Rule violations for this mode (folded into the owning config's
    /// `problems`).
    pub fn problems(&self) -> Vec<String> {
        match self {
            DurabilityMode::GroupCommit { window_us: 0 } => {
                vec!["durability group_commit_window_us must be > 0".to_string()]
            }
            _ => Vec::new(),
        }
    }
}

impl std::fmt::Display for DurabilityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityMode::GroupCommit { window_us } => write!(f, "group:{window_us}"),
            other => write!(f, "{}", other.tag()),
        }
    }
}

/// Configuration of one threaded engine run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads executing top-level transactions (must be ≥ 1).
    pub threads: usize,
    /// Lock-table shards; must be a power of two (objects map to shards by
    /// `object_id & (shards - 1)`).
    pub shards: usize,
    /// Deadlock-detector scan period in microseconds (must be > 0).
    pub detector_period_us: u64,
    /// Retry policy for deadlock victims. `None` disables retries even when
    /// the workload pre-materialized replica chains (they stay inert, like
    /// the simulator without `SimConfig::retry`).
    pub backoff: Option<BackoffPolicy>,
    /// Wall-clock microseconds one backoff "round" maps to (must be > 0
    /// when `backoff` is set): the policy's round counts become real
    /// sleeps.
    pub backoff_round_us: u64,
    /// Simulated storage latency per access in microseconds, applied while
    /// the access holds its lock (0 = none). With it the workload is
    /// latency-bound, so the throughput benchmark measures the engine's
    /// ability to overlap access latency across workers — meaningful even
    /// on a single hardware core.
    pub access_latency_us: u64,
    /// Watchdog: the detector thread aborts all in-flight work after this
    /// many wall-clock milliseconds (must be > 0). A run that trips it is
    /// reported with `gave_up = true` and still certifies (aborted work is
    /// invisible to `T0`).
    pub max_wall_ms: u64,
    /// Acknowledgment/durability coupling when a WAL store is mounted
    /// (`nt-store`). The batch engine runs in memory and ignores it; the
    /// session engine behind `nt-serve --data-dir` enforces it.
    pub durability: DurabilityMode,
    /// Maintain the serialization graph *live* while the run executes
    /// (`nt-sgt-live`): every recorded action streams to a certifier
    /// thread that detects cycles incrementally and garbage-collects the
    /// certified prefix. Off the hot path (a channel send per action);
    /// the verdict lands in `EngineReport::live`.
    pub live_certify: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 4,
            shards: 16,
            detector_period_us: 200,
            backoff: Some(BackoffPolicy::default()),
            backoff_round_us: 50,
            access_latency_us: 0,
            max_wall_ms: 30_000,
            durability: DurabilityMode::None,
            live_certify: false,
        }
    }
}

impl EngineConfig {
    /// Every rule violation in this config, as human-readable sentences.
    /// Empty means the config is runnable. `nt-lint`'s `engine` pass turns
    /// these into findings; [`run_plan`](crate::run_plan) refuses configs
    /// with any problem.
    pub fn problems(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.threads == 0 {
            out.push("threads must be >= 1".to_string());
        }
        if self.shards == 0 || !self.shards.is_power_of_two() {
            out.push(format!(
                "shards must be a nonzero power of two (got {})",
                self.shards
            ));
        }
        if self.detector_period_us == 0 {
            out.push("detector_period_us must be > 0 (a zero-period detector spins)".to_string());
        }
        if let Some(b) = &self.backoff {
            if self.backoff_round_us == 0 {
                out.push("backoff_round_us must be > 0 when a backoff policy is set".to_string());
            }
            if b.base_rounds == 0 {
                out.push("backoff.base_rounds must be >= 1".to_string());
            }
            if b.cap_rounds < b.base_rounds {
                out.push(format!(
                    "backoff.cap_rounds ({}) must be >= base_rounds ({})",
                    b.cap_rounds, b.base_rounds
                ));
            }
        }
        if self.max_wall_ms == 0 {
            out.push("max_wall_ms must be > 0 (the watchdog is the liveness backstop)".to_string());
        }
        out.extend(self.durability.problems());
        out
    }

    /// `Ok` iff [`problems`](Self::problems) is empty.
    pub fn validate(&self) -> Result<(), String> {
        let problems = self.problems();
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems.join("; "))
        }
    }

    /// The named configurations the workspace actually runs (benchmarks and
    /// CI smoke). `nt-lint`'s `engine` pass lints all of them, so the
    /// shipped configs are exactly the statically validated ones.
    pub fn presets() -> Vec<(&'static str, EngineConfig)> {
        vec![
            ("default", EngineConfig::default()),
            (
                "bench-partitioned",
                EngineConfig {
                    access_latency_us: 300,
                    ..EngineConfig::default()
                },
            ),
            (
                "bench-contended",
                EngineConfig {
                    access_latency_us: 100,
                    shards: 4,
                    ..EngineConfig::default()
                },
            ),
            (
                "ci-smoke",
                EngineConfig {
                    threads: 4,
                    shards: 8,
                    ..EngineConfig::default()
                },
            ),
            (
                "durable-fsync",
                EngineConfig {
                    durability: DurabilityMode::FsyncPerCommit,
                    ..EngineConfig::default()
                },
            ),
            (
                "durable-group",
                EngineConfig {
                    durability: DurabilityMode::GroupCommit { window_us: 500 },
                    ..EngineConfig::default()
                },
            ),
            (
                "live-certify",
                EngineConfig {
                    live_certify: true,
                    ..EngineConfig::default()
                },
            ),
        ]
    }

    /// Serialize to the JSON document form `from_json` parses.
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.num("threads", self.threads as u64)
            .num("shards", self.shards as u64)
            .num("detector_period_us", self.detector_period_us);
        match &self.backoff {
            Some(b) => {
                let mut bo = JsonObj::new();
                bo.num("base_rounds", b.base_rounds)
                    .num("cap_rounds", b.cap_rounds);
                o.raw("backoff", bo.build());
            }
            None => {
                o.raw("backoff", "null".to_string());
            }
        }
        o.num("backoff_round_us", self.backoff_round_us)
            .num("access_latency_us", self.access_latency_us)
            .num("max_wall_ms", self.max_wall_ms)
            .str("durability", self.durability.tag());
        if let DurabilityMode::GroupCommit { window_us } = self.durability {
            o.num("group_commit_window_us", window_us);
        }
        o.bool("live_certify", self.live_certify);
        o.build()
    }

    /// Parse an engine config from its JSON document form. Structural
    /// errors (bad JSON, missing or unknown keys, wrong types) are `Err`;
    /// semantic rules are *not* applied here — call
    /// [`problems`](Self::problems) or [`validate`](Self::validate) on the
    /// result.
    pub fn from_json(doc: &str) -> Result<EngineConfig, String> {
        let parsed = Json::parse(doc)?;
        let Json::Obj(map) = &parsed else {
            return Err("engine config must be a JSON object".to_string());
        };
        const KNOWN: [&str; 10] = [
            "threads",
            "shards",
            "detector_period_us",
            "backoff",
            "backoff_round_us",
            "access_latency_us",
            "max_wall_ms",
            "durability",
            "group_commit_window_us",
            "live_certify",
        ];
        for key in map.keys() {
            if !KNOWN.contains(&key.as_str()) {
                return Err(format!("unknown engine config key {key:?}"));
            }
        }
        let uint = |key: &str| -> Result<u64, String> {
            let v = parsed
                .get(key)
                .ok_or_else(|| format!("missing required key {key:?}"))?;
            let n = v
                .as_num()
                .ok_or_else(|| format!("key {key:?} must be a number"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("key {key:?} must be a non-negative integer"));
            }
            Ok(n as u64)
        };
        let backoff = match parsed.get("backoff") {
            None | Some(Json::Null) => None,
            Some(b @ Json::Obj(fields)) => {
                for key in fields.keys() {
                    if key != "base_rounds" && key != "cap_rounds" {
                        return Err(format!("unknown backoff key {key:?}"));
                    }
                }
                let field = |key: &str| -> Result<u64, String> {
                    let n = b
                        .get(key)
                        .and_then(Json::as_num)
                        .ok_or_else(|| format!("backoff.{key} must be a number"))?;
                    Ok(n as u64)
                };
                Some(BackoffPolicy {
                    base_rounds: field("base_rounds")?,
                    cap_rounds: field("cap_rounds")?,
                })
            }
            Some(_) => return Err("backoff must be an object or null".to_string()),
        };
        // Optional for compatibility with pre-durability documents.
        let durability = match parsed.get("durability") {
            None => {
                if parsed.get("group_commit_window_us").is_some() {
                    return Err("group_commit_window_us requires durability \"group\"".to_string());
                }
                DurabilityMode::None
            }
            Some(Json::Str(tag)) => {
                let window = match parsed.get("group_commit_window_us") {
                    None => None,
                    Some(_) => Some(uint("group_commit_window_us")?),
                };
                DurabilityMode::from_tag(tag, window)?
            }
            Some(_) => return Err("durability must be a string tag".to_string()),
        };
        // Optional for compatibility with pre-live-certify documents.
        let live_certify = match parsed.get("live_certify") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("live_certify must be a boolean".to_string()),
        };
        Ok(EngineConfig {
            threads: uint("threads")? as usize,
            shards: uint("shards")? as usize,
            detector_period_us: uint("detector_period_us")?,
            backoff,
            backoff_round_us: uint("backoff_round_us")?,
            access_latency_us: uint("access_latency_us")?,
            max_wall_ms: uint("max_wall_ms")?,
            durability,
            live_certify,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_presets_are_clean() {
        for (name, cfg) in EngineConfig::presets() {
            assert!(cfg.problems().is_empty(), "{name}: {:?}", cfg.problems());
        }
    }

    #[test]
    fn json_round_trip() {
        for (_, cfg) in EngineConfig::presets() {
            let doc = cfg.to_json();
            assert_eq!(EngineConfig::from_json(&doc).expect("round trip"), cfg);
        }
        let none = EngineConfig {
            backoff: None,
            ..EngineConfig::default()
        };
        assert_eq!(
            EngineConfig::from_json(&none.to_json()).expect("null backoff"),
            none
        );
    }

    #[test]
    fn bad_configs_are_flagged() {
        let bad = EngineConfig {
            threads: 0,
            shards: 12,
            detector_period_us: 0,
            max_wall_ms: 0,
            ..EngineConfig::default()
        };
        assert_eq!(bad.problems().len(), 4);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn unknown_keys_rejected() {
        assert!(EngineConfig::from_json("{\"threads\":1,\"bogus\":2}").is_err());
        assert!(EngineConfig::from_json("[1,2]").is_err());
        assert!(EngineConfig::from_json("{\"threads\":\"two\"}").is_err());
    }

    #[test]
    fn durability_modes_round_trip_and_validate() {
        for mode in [
            DurabilityMode::None,
            DurabilityMode::FsyncPerCommit,
            DurabilityMode::GroupCommit { window_us: 250 },
        ] {
            let cfg = EngineConfig {
                durability: mode,
                ..EngineConfig::default()
            };
            assert!(cfg.problems().is_empty(), "{mode}: {:?}", cfg.problems());
            assert_eq!(
                EngineConfig::from_json(&cfg.to_json()).expect("round trip"),
                cfg
            );
        }
        // A zero group window is structurally parseable but semantically bad.
        let zero = EngineConfig {
            durability: DurabilityMode::GroupCommit { window_us: 0 },
            ..EngineConfig::default()
        };
        assert_eq!(zero.problems().len(), 1);
        // Missing durability defaults to none (pre-durability documents).
        let legacy = EngineConfig::default()
            .to_json()
            .replace(",\"durability\":\"none\"", "");
        assert_eq!(
            EngineConfig::from_json(&legacy).expect("legacy doc"),
            EngineConfig::default()
        );
        // Tag/window mismatches are structural errors.
        assert!(DurabilityMode::from_tag("group", None).is_err());
        assert!(DurabilityMode::from_tag("fsync", Some(5)).is_err());
        assert!(DurabilityMode::from_tag("paranoid", None).is_err());
    }
}
