//! Session-scoped transaction handles: the external-client entry point the
//! networked server (`nt-net`) drives.
//!
//! The batch engine ([`run_plan`](crate::run_plan)) executes a frozen plan;
//! here instead each connected client *interactively* grows the tree —
//! `begin_top` / `begin_child` / `access` / `commit` / `abort` — against a
//! shared [`SessionTree`], the same sharded [`LockTable`], the same status
//! table, and the same global [`SeqClock`] recorder. A detector thread
//! watches the wait-for graph exactly as in the batch engine, dooming one
//! victim per cycle; a session discovers the doom at its next operation on
//! the victim's subtree, aborts precisely that subtree (one `ABORT`, the
//! `INFORM_ABORT`s, one `REPORT_ABORT`), and reports the victim to the
//! client so it can retry the whole top-level transaction.
//!
//! Every action is stamped into per-session logs (serial actions) and the
//! lock shards' logs (object actions), so
//! [`SessionEngine::history_snapshot`] merges to a recorded history with
//! the same refinement property as the batch engine's — certifiable by
//! `nt_sgt::certify_recorded` across a process boundary.

use crate::detector::scan_once;
pub use crate::detector::Victim;
use crate::locktable::{Acquired, LockTable, ShardCounters};
use crate::recorder::{merge, ActionSink, SeqClock, WorkerLog};
use crate::session_tree::{SessionTree, TreeError};
use crate::status::StatusTable;
use crate::tree_view::TreeView;
use nt_model::rw::RwInitials;
use nt_model::{Action, ObjId, Op, TxId, TxTree, Value};
use nt_obs::json::JsonObj;
use nt_sgt_live::FeedHandle;
use nt_telemetry::TelemetryHandle;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why a session operation was refused (protocol misuse or admission
/// control — distinct from the benign [`Aborted`](BeginOutcome::Aborted)
/// outcomes, which are part of normal contention).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The server's transaction arena is full.
    Capacity,
    /// The named transaction does not exist.
    UnknownTx(TxId),
    /// The named transaction belongs to another session.
    NotOwned(TxId),
    /// The named parent is an access (accesses are leaves).
    NotInner(TxId),
    /// The named transaction already completed.
    Completed(TxId),
    /// The access op is not a read/write-register operation.
    NonRwOp,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Capacity => write!(f, "transaction capacity exhausted"),
            SessionError::UnknownTx(t) => write!(f, "unknown transaction {t}"),
            SessionError::NotOwned(t) => write!(f, "transaction {t} belongs to another session"),
            SessionError::NotInner(t) => write!(f, "transaction {t} is an access (a leaf)"),
            SessionError::Completed(t) => write!(f, "transaction {t} already completed"),
            SessionError::NonRwOp => {
                write!(f, "only read/write-register operations are supported")
            }
        }
    }
}

impl From<TreeError> for SessionError {
    fn from(e: TreeError) -> Self {
        match e {
            TreeError::Capacity => SessionError::Capacity,
            TreeError::UnknownParent(t) => SessionError::UnknownTx(t),
            TreeError::ParentIsAccess(t) => SessionError::NotInner(t),
        }
    }
}

/// Outcome of `begin_child`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BeginOutcome {
    /// The child was created.
    Fresh(TxId),
    /// The parent's subtree was already doomed/aborted; `victim` is the
    /// highest aborted ancestor, whose whole subtree is gone.
    Aborted(TxId),
}

/// Outcome of `access`.
#[derive(Clone, Debug, PartialEq)]
pub enum AccessOutcome {
    /// Granted and committed; the access's `REQUEST_COMMIT` return value.
    Done(Value),
    /// A deadlock victim (ancestor-or-self) was aborted instead.
    Aborted(TxId),
}

/// Outcome of `commit`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitOutcome {
    /// Committed; locks inherited by the parent.
    Committed,
    /// The transaction (or an ancestor) was doomed; the named victim's
    /// subtree was aborted.
    Aborted(TxId),
}

/// State recovered from a durable store, carried across a crash–restart
/// boundary into [`SessionEngine::start_recovered`]. The recovered
/// history (with its crash-time losers already rolled back) becomes the
/// prefix of the restarted engine's recorded history, so one
/// `certify_recorded` pass covers pre- and post-crash work as a single
/// behavior.
#[derive(Clone, Debug, Default)]
pub struct RecoveredSeed {
    /// Tree registrations in `TxId` order starting at `TxId(1)`: each
    /// entry is `(parent, access)` where accesses carry object and op.
    pub nodes: Vec<(TxId, Option<(ObjId, Op)>)>,
    /// Transactions recovered as committed.
    pub committed: Vec<TxId>,
    /// Transactions recovered as aborted (loser subtree roots included;
    /// their descendants stay `Running`, exactly as a live abort leaves
    /// them).
    pub aborted: Vec<TxId>,
    /// Per-object committed values (objects not listed keep the default
    /// initial value 0).
    pub initials: Vec<(ObjId, i64)>,
    /// The recovered `(stamp, action)` history, stamp-sorted.
    pub entries: Vec<(u64, Action)>,
    /// First stamp the restarted clock issues (past every recovered one).
    pub next_stamp: u64,
}

/// The shared engine a server embeds: one growable tree, one lock table,
/// one status table, one clock, one detector thread.
pub struct SessionEngine {
    tree: Arc<SessionTree>,
    status: Arc<StatusTable>,
    table: Arc<LockTable<Arc<SessionTree>>>,
    clock: Arc<SeqClock>,
    telemetry: TelemetryHandle,
    sink: Option<Arc<dyn ActionSink>>,
    feed: Option<FeedHandle>,
    logs: Mutex<Vec<Arc<Mutex<WorkerLog>>>>,
    victims: Mutex<Vec<Victim>>,
    detector_passes: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    detector: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl SessionEngine {
    /// Start an engine with room for `capacity` transactions, a lock table
    /// of `shards` shards (nonzero power of two), and a detector thread
    /// scanning every `detector_period`. Objects all start at value 0.
    pub fn start(capacity: usize, shards: usize, detector_period: Duration) -> Arc<SessionEngine> {
        SessionEngine::start_with_telemetry(
            capacity,
            shards,
            detector_period,
            TelemetryHandle::disabled(),
        )
    }

    /// [`SessionEngine::start`] with a live telemetry handle: the lock
    /// table feeds its blocked/hold histograms and sessions attribute lock
    /// wait per request.
    pub fn start_with_telemetry(
        capacity: usize,
        shards: usize,
        detector_period: Duration,
        telemetry: TelemetryHandle,
    ) -> Arc<SessionEngine> {
        SessionEngine::start_recovered(
            capacity,
            shards,
            detector_period,
            telemetry,
            RecoveredSeed::default(),
            None,
            None,
        )
        .expect("empty seed always replays")
    }

    /// Start an engine from a [`RecoveredSeed`], optionally teeing every
    /// new registration and action into a durable sink (the WAL). With an
    /// empty seed and no sink this is exactly
    /// [`SessionEngine::start_with_telemetry`]. With a recovered seed, the
    /// tree is replayed *before* the sink attaches (the registrations are
    /// already durable), completed transactions are pre-marked in the
    /// status table, per-object committed values seed the lock table's
    /// initials, and the clock resumes past the recovered stamps.
    ///
    /// With a live-certifier `feed`, every registration and recorded
    /// action streams to the maintainer: recovered registrations replay
    /// through the feed first, then the recovered history preloads (its
    /// unresolved tops finalize as aborted — recovery rolled them back),
    /// and only then does live recording begin, so the certifier sees one
    /// seamless behavior across the crash boundary.
    #[allow(clippy::too_many_arguments)]
    pub fn start_recovered(
        capacity: usize,
        shards: usize,
        detector_period: Duration,
        telemetry: TelemetryHandle,
        seed: RecoveredSeed,
        sink: Option<Arc<dyn ActionSink>>,
        feed: Option<FeedHandle>,
    ) -> Result<Arc<SessionEngine>, TreeError> {
        let mut bare = SessionTree::new(capacity);
        if let Some(f) = &feed {
            // Attached before the seed replays: recovered registrations
            // are new to this incarnation's maintainer (unlike the WAL
            // sink, which must not see them twice).
            bare = bare.with_feed(f.clone());
        }
        for (parent, access) in &seed.nodes {
            match access {
                None => bare.add_inner(*parent)?,
                Some((x, op)) => bare.add_access(*parent, *x, op.clone())?,
            };
        }
        let tree = Arc::new(match &sink {
            Some(s) => bare.with_sink(Arc::clone(s)),
            None => bare,
        });
        if let Some(f) = &feed {
            // FIFO channel: the preload lands after the registrations
            // above and before any live action recorded below.
            f.preload(seed.entries.clone(), seed.next_stamp);
        }
        let status = Arc::new(StatusTable::new(capacity));
        for &t in &seed.committed {
            assert!(status.try_commit(t), "recovered commit marks a fresh slot");
        }
        for &t in &seed.aborted {
            status.mark_aborted(t);
        }
        let clock = Arc::new(SeqClock::starting_at(seed.next_stamp));
        let mut initials = RwInitials::uniform(0);
        for &(x, v) in &seed.initials {
            initials.set(x, v);
        }
        let mut table = LockTable::new(
            Arc::clone(&tree),
            Arc::clone(&status),
            Arc::clone(&clock),
            initials,
            shards,
        )
        .with_telemetry(telemetry.clone());
        if let Some(s) = &sink {
            table = table.with_sink(Arc::clone(s));
        }
        if let Some(f) = &feed {
            // After `with_sink` — the sink swap replaces the shard logs.
            table = table.with_feed(f.clone());
        }
        let table = Arc::new(table);
        let fresh = seed.entries.is_empty();
        let mut logs = Vec::new();
        if !fresh {
            // The recovered history, frozen: it merges ahead of every new
            // action by stamp order and is never re-appended to the WAL.
            logs.push(Arc::new(Mutex::new(WorkerLog::from_entries(seed.entries))));
        }
        let mut root_log = match &sink {
            Some(s) => WorkerLog::with_sink(Arc::clone(s)),
            None => WorkerLog::new(),
        };
        if let Some(f) = &feed {
            root_log = root_log.with_feed(f.clone());
        }
        if fresh {
            root_log.record(&clock, Action::Create(TxId::ROOT));
        }
        logs.push(Arc::new(Mutex::new(root_log)));
        let engine = Arc::new(SessionEngine {
            tree,
            status,
            table,
            clock,
            telemetry,
            sink,
            feed,
            logs: Mutex::new(logs),
            victims: Mutex::new(Vec::new()),
            detector_passes: Arc::new(AtomicU64::new(0)),
            stop: Arc::new(AtomicBool::new(false)),
            detector: Mutex::new(None),
        });
        let handle = {
            let e = Arc::clone(&engine);
            std::thread::spawn(move || {
                while !e.stop.load(Ordering::Acquire) {
                    std::thread::sleep(detector_period);
                    if e.stop.load(Ordering::Acquire) {
                        break;
                    }
                    e.detector_passes.fetch_add(1, Ordering::Relaxed);
                    if let Some(v) = scan_once(&*e.tree, &e.status, &*e.table) {
                        e.victims.lock().expect("victims poisoned").push(v);
                        e.table.notify_all_shards();
                    }
                }
            })
        };
        *engine.detector.lock().expect("detector poisoned") = Some(handle);
        Ok(engine)
    }

    /// Stop the detector thread (idempotent). Called on server drain.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.detector.lock().expect("detector poisoned").take() {
            h.join().expect("detector thread panicked");
        }
    }

    /// Open a fresh session (one per client connection).
    pub fn open_session(self: &Arc<Self>) -> Session {
        let mut session_log = match &self.sink {
            Some(s) => WorkerLog::with_sink(Arc::clone(s)),
            None => WorkerLog::new(),
        };
        if let Some(f) = &self.feed {
            session_log = session_log.with_feed(f.clone());
        }
        let log = Arc::new(Mutex::new(session_log));
        self.logs
            .lock()
            .expect("logs poisoned")
            .push(Arc::clone(&log));
        Session {
            engine: Arc::clone(self),
            log,
            held: BTreeMap::new(),
            tops: BTreeSet::new(),
            lock_wait_us: 0,
        }
    }

    /// Transactions registered so far (including `T0`).
    pub fn tx_count(&self) -> usize {
        self.tree.len()
    }

    /// Deadlock victims doomed so far, in doom order.
    pub fn victims(&self) -> Vec<Victim> {
        self.victims.lock().expect("victims poisoned").clone()
    }

    /// Detector scan passes so far.
    pub fn detector_passes(&self) -> u64 {
        self.detector_passes.load(Ordering::Relaxed)
    }

    /// The telemetry handle this engine records into.
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// Current logical-clock reading (stamps issued so far) — a
    /// non-advancing peek, for dual wall/logical request stamps.
    pub fn clock_now(&self) -> u64 {
        self.clock.issued()
    }

    /// Lock grants so far.
    pub fn lock_grants(&self) -> u64 {
        self.table.granted()
    }

    /// Lock acquires that parked at least once.
    pub fn lock_blocks(&self) -> u64 {
        self.table.blocked()
    }

    /// Grants that landed right after a timed-out wait (lost-wakeup
    /// backstop metric).
    pub fn timeout_rescues(&self) -> u64 {
        self.table.timeout_rescues()
    }

    /// Per-shard lock-traffic counters.
    pub fn shard_counters(&self) -> Vec<ShardCounters> {
        self.table.shard_counters()
    }

    /// On-demand wait-for-graph snapshot as one JSON object:
    /// `{"wait_for": [{"waiter": t, "blockers": [u, ...]}, ...]}`. Each
    /// edge is a parked lock request and the holders currently blocking
    /// it — the same relation the deadlock detector folds into cycles.
    pub fn wait_for_json(&self) -> String {
        let snapshot = self.table.waiting_snapshot();
        let edges: Vec<String> = snapshot
            .iter()
            .map(|(waiter, blockers)| {
                let mut o = JsonObj::new();
                o.num("waiter", u64::from(waiter.0));
                let ids: Vec<u64> = blockers.iter().map(|b| u64::from(b.0)).collect();
                o.num_arr("blockers", &ids);
                o.build()
            })
            .collect();
        let mut o = JsonObj::new();
        o.num("edges", edges.len() as u64)
            .raw("wait_for", format!("[{}]", edges.join(",")));
        o.build()
    }

    /// Ship every log's buffered live-certifier feed entries now: the
    /// session logs' and the lock shards'. Feed sends are batched at
    /// transaction resolutions, so a log whose tail is unresolved work —
    /// or the root log, whose only entry is the unresolving
    /// `Create(ROOT)` — strands its stamps until the next resolution; the
    /// certifier, which processes in dense stamp order, parks at the
    /// hole. A certifier barrier (`CERT`) must call this first so the
    /// verdict actually covers everything recorded before it.
    pub fn flush_feeds(&self) {
        if self.feed.is_none() {
            return;
        }
        for log in self.logs.lock().expect("logs poisoned").iter() {
            log.lock().expect("session log poisoned").flush_feed();
        }
        self.table.flush_feeds();
    }

    /// Snapshot the run so far: the frozen tree and the merged recorded
    /// history. Logs are cloned *before* the tree is snapshotted, so every
    /// transaction a recorded action names is present in the tree (actions
    /// are recorded only after their transaction is registered, and the
    /// tree grows monotonically).
    pub fn history_snapshot(&self) -> (TxTree, Vec<Action>) {
        let mut logs: Vec<WorkerLog> = self
            .logs
            .lock()
            .expect("logs poisoned")
            .iter()
            .map(|l| l.lock().expect("session log poisoned").clone())
            .collect();
        logs.extend(self.table.snapshot_logs());
        let history = merge(logs);
        let tree = self.tree.to_tx_tree();
        (tree, history)
    }
}

impl Drop for SessionEngine {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Ok(mut guard) = self.detector.lock() {
            if let Some(h) = guard.take() {
                let _ = h.join();
            }
        }
    }
}

/// One client's handle: owns the top-level transactions it began and the
/// lock bookkeeping for their subtrees (mirroring the batch engine's
/// per-worker `held` map — a session drives its subtrees itself, so the
/// bookkeeping needs no sharing).
pub struct Session {
    engine: Arc<SessionEngine>,
    log: Arc<Mutex<WorkerLog>>,
    held: BTreeMap<TxId, BTreeSet<ObjId>>,
    tops: BTreeSet<TxId>,
    /// Microseconds this session spent inside lock acquisition since the
    /// last [`Session::take_lock_wait_us`] — the per-request lock-wait
    /// attribution the server drains after each executed request.
    /// Accumulated only while the engine's telemetry is enabled.
    lock_wait_us: u64,
}

impl Session {
    /// Drain the lock-wait time accumulated since the last call.
    pub fn take_lock_wait_us(&mut self) -> u64 {
        std::mem::take(&mut self.lock_wait_us)
    }

    fn record(&self, action: Action) {
        self.log
            .lock()
            .expect("session log poisoned")
            .record(&self.engine.clock, action);
    }

    fn tree(&self) -> &SessionTree {
        &self.engine.tree
    }

    /// Validate that `t` exists and this session began its top-level
    /// ancestor.
    fn check_owned(&self, t: TxId) -> Result<(), SessionError> {
        if t == TxId::ROOT || !self.tree().contains(t) {
            return Err(SessionError::UnknownTx(t));
        }
        let top = if self.tree().parent(t) == Some(TxId::ROOT) {
            t
        } else {
            self.tree().child_toward(TxId::ROOT, t)
        };
        if !self.tops.contains(&top) {
            return Err(SessionError::NotOwned(t));
        }
        Ok(())
    }

    /// The highest (closest to `T0`, excluding `T0`) doomed-or-aborted
    /// ancestor-or-self of `t` — the transaction whose whole subtree is
    /// (or must become) gone.
    fn dead_ancestor(&self, t: TxId) -> Option<TxId> {
        let mut highest = None;
        let mut cur = Some(t);
        while let Some(u) = cur {
            if u == TxId::ROOT {
                break;
            }
            if self.engine.status.is_doomed(u) || self.engine.status.is_aborted(u) {
                highest = Some(u);
            }
            cur = self.tree().parent(u);
        }
        highest
    }

    /// Abort `v`'s subtree if not already aborted, recording the abort
    /// actions once. Returns `v` for reporting.
    fn ensure_aborted(&mut self, v: TxId) -> TxId {
        if !self.engine.status.is_aborted(v) {
            self.abort_subtree(v);
        }
        v
    }

    /// `ABORT(v)`, discard every lock a descendant-or-self of `v` holds
    /// (`INFORM_ABORT` per object), `REPORT_ABORT(v)` — the batch worker's
    /// `abort_tx`, driven from a session.
    fn abort_subtree(&mut self, v: TxId) {
        self.engine.status.mark_aborted(v);
        self.record(Action::Abort(v));
        let mut discarded: BTreeSet<ObjId> = BTreeSet::new();
        let dead: Vec<TxId> = self
            .held
            .keys()
            .copied()
            .filter(|&h| self.tree().is_ancestor(v, h))
            .collect();
        for h in dead {
            if let Some(objs) = self.held.remove(&h) {
                discarded.extend(objs);
            }
        }
        if !discarded.is_empty() {
            self.engine.table.discard(v, discarded.iter().copied());
        }
        self.record(Action::ReportAbort(v));
    }

    /// Begin a fresh top-level transaction.
    pub fn begin_top(&mut self) -> Result<TxId, SessionError> {
        let t = self
            .tree()
            .add_inner(TxId::ROOT)
            .map_err(SessionError::from)?;
        self.tops.insert(t);
        self.record(Action::RequestCreate(t));
        self.record(Action::Create(t));
        Ok(t)
    }

    /// Begin a child transaction under `parent` (which this session owns).
    pub fn begin_child(&mut self, parent: TxId) -> Result<BeginOutcome, SessionError> {
        self.check_owned(parent)?;
        if self.tree().is_access(parent) {
            return Err(SessionError::NotInner(parent));
        }
        if self.engine.status.is_committed(parent) {
            return Err(SessionError::Completed(parent));
        }
        if let Some(v) = self.dead_ancestor(parent) {
            return Ok(BeginOutcome::Aborted(self.ensure_aborted(v)));
        }
        let t = self.tree().add_inner(parent).map_err(SessionError::from)?;
        self.record(Action::RequestCreate(t));
        self.record(Action::Create(t));
        Ok(BeginOutcome::Fresh(t))
    }

    /// Run one access under `parent`: create the access transaction,
    /// acquire its Moss lock (blocking; the detector breaks deadlocks),
    /// commit it, and inherit the lock to `parent`.
    pub fn access(
        &mut self,
        parent: TxId,
        x: ObjId,
        op: Op,
    ) -> Result<AccessOutcome, SessionError> {
        if !op.is_rw_read() && !op.is_rw_write() {
            return Err(SessionError::NonRwOp);
        }
        self.check_owned(parent)?;
        if self.tree().is_access(parent) {
            return Err(SessionError::NotInner(parent));
        }
        if self.engine.status.is_committed(parent) {
            return Err(SessionError::Completed(parent));
        }
        if let Some(v) = self.dead_ancestor(parent) {
            return Ok(AccessOutcome::Aborted(self.ensure_aborted(v)));
        }
        let t = self
            .tree()
            .add_access(parent, x, op.clone())
            .map_err(SessionError::from)?;
        self.record(Action::RequestCreate(t));
        self.record(Action::Create(t));
        let acquire_start = self.engine.telemetry.is_enabled().then(Instant::now);
        let acquired = self.engine.table.acquire(t, x, &op);
        if let Some(start) = acquire_start {
            self.lock_wait_us += start.elapsed().as_micros() as u64;
        }
        match acquired {
            Acquired::Doomed(d) => Ok(AccessOutcome::Aborted(self.ensure_aborted(d))),
            Acquired::Granted(v) => {
                self.held.entry(t).or_default().insert(x);
                if self.engine.status.try_commit(t) {
                    self.record(Action::Commit(t));
                    if let Some(objs) = self.held.remove(&t) {
                        self.engine.table.release_inherit(t, objs.iter().copied());
                        self.held.entry(parent).or_default().extend(objs);
                    }
                    self.record(Action::ReportCommit(t, v.clone()));
                    Ok(AccessOutcome::Done(v))
                } else {
                    let d = self.dead_ancestor(t).unwrap_or(t);
                    Ok(AccessOutcome::Aborted(self.ensure_aborted(d)))
                }
            }
        }
    }

    /// Commit `t` (top-level or inner): `REQUEST_COMMIT`, the status CAS,
    /// lock inheritance to the parent, `REPORT_COMMIT` — or the abort path
    /// when the detector doomed `t` (or an ancestor) meanwhile.
    pub fn commit(&mut self, t: TxId) -> Result<CommitOutcome, SessionError> {
        self.check_owned(t)?;
        if self.tree().is_access(t) {
            return Err(SessionError::NotInner(t));
        }
        if self.engine.status.is_committed(t) {
            return Err(SessionError::Completed(t));
        }
        if let Some(v) = self.dead_ancestor(t) {
            return Ok(CommitOutcome::Aborted(self.ensure_aborted(v)));
        }
        self.record(Action::RequestCommit(t, Value::Ok));
        if self.engine.status.try_commit(t) {
            self.record(Action::Commit(t));
            if let Some(objs) = self.held.remove(&t) {
                self.engine.table.release_inherit(t, objs.iter().copied());
                let parent = self.tree().parent(t).expect("non-root commits");
                self.held.entry(parent).or_default().extend(objs);
            }
            self.record(Action::ReportCommit(t, Value::Ok));
            Ok(CommitOutcome::Committed)
        } else {
            let d = self.dead_ancestor(t).unwrap_or(t);
            Ok(CommitOutcome::Aborted(self.ensure_aborted(d)))
        }
    }

    /// Abort `t` at the client's request. Idempotent on already-aborted
    /// subtrees; refuses committed transactions.
    pub fn abort(&mut self, t: TxId) -> Result<(), SessionError> {
        self.check_owned(t)?;
        if self.tree().is_access(t) {
            return Err(SessionError::NotInner(t));
        }
        if self.engine.status.is_committed(t) {
            return Err(SessionError::Completed(t));
        }
        if let Some(v) = self.dead_ancestor(t) {
            self.ensure_aborted(v);
            return Ok(());
        }
        // Doom first so a racing detector cannot pick it up twice, then
        // abort; `mark_doomed` failing means a race completed it — re-check.
        if !self.engine.status.mark_doomed(t) && self.engine.status.is_committed(t) {
            return Err(SessionError::Completed(t));
        }
        self.ensure_aborted(t);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_serial::{ObjectTypes, RwRegister};
    use nt_sgt::{certify_recorded, ConflictSource};

    fn engine() -> Arc<SessionEngine> {
        SessionEngine::start(1024, 4, Duration::from_micros(200))
    }

    fn certify(e: &SessionEngine) -> nt_sgt::RecordedCertificate {
        let (tree, history) = e.history_snapshot();
        let types = ObjectTypes::uniform(tree.num_objects(), Arc::new(RwRegister::new(0)));
        certify_recorded(&tree, &history, &types, ConflictSource::ReadWrite)
    }

    #[test]
    fn one_session_nested_run_certifies() {
        let e = engine();
        let mut s = e.open_session();
        let top = s.begin_top().expect("top");
        let inner = match s.begin_child(top).expect("child") {
            BeginOutcome::Fresh(t) => t,
            BeginOutcome::Aborted(v) => panic!("unexpected abort at {v}"),
        };
        assert_eq!(
            s.access(inner, ObjId(0), Op::Write(5)).expect("write"),
            AccessOutcome::Done(Value::Ok)
        );
        assert_eq!(
            s.access(inner, ObjId(0), Op::Read).expect("read"),
            AccessOutcome::Done(Value::Int(5))
        );
        assert_eq!(s.commit(inner).expect("commit"), CommitOutcome::Committed);
        assert_eq!(s.commit(top).expect("commit"), CommitOutcome::Committed);
        e.shutdown();
        let cert = certify(&e);
        assert!(cert.is_serially_correct(), "{}", cert.verdict.name());
        assert_eq!(cert.violations, 0);
    }

    #[test]
    fn sibling_read_visibility_and_isolation() {
        let e = engine();
        let mut a = e.open_session();
        let mut b = e.open_session();
        let ta = a.begin_top().expect("top");
        let tb = b.begin_top().expect("top");
        // a writes object 0 and commits; b then reads the committed value.
        assert_eq!(
            a.access(ta, ObjId(0), Op::Write(9)).expect("write"),
            AccessOutcome::Done(Value::Ok)
        );
        assert_eq!(a.commit(ta).expect("commit"), CommitOutcome::Committed);
        assert_eq!(
            b.access(tb, ObjId(0), Op::Read).expect("read"),
            AccessOutcome::Done(Value::Int(9))
        );
        assert_eq!(b.commit(tb).expect("commit"), CommitOutcome::Committed);
        e.shutdown();
        let cert = certify(&e);
        assert!(cert.is_serially_correct(), "{}", cert.verdict.name());
    }

    #[test]
    fn ownership_and_protocol_errors_are_typed() {
        let e = engine();
        let mut a = e.open_session();
        let mut b = e.open_session();
        let ta = a.begin_top().expect("top");
        assert_eq!(b.begin_child(ta), Err(SessionError::NotOwned(ta)));
        assert_eq!(
            a.access(ta, ObjId(0), Op::GetCount),
            Err(SessionError::NonRwOp)
        );
        assert_eq!(
            a.begin_child(TxId(999)),
            Err(SessionError::UnknownTx(TxId(999)))
        );
        assert_eq!(a.commit(ta).expect("commit"), CommitOutcome::Committed);
        assert_eq!(a.commit(ta), Err(SessionError::Completed(ta)));
        e.shutdown();
    }

    #[test]
    fn client_abort_discards_subtree_work() {
        let e = engine();
        let mut s = e.open_session();
        let top = s.begin_top().expect("top");
        assert_eq!(
            s.access(top, ObjId(1), Op::Write(42)).expect("write"),
            AccessOutcome::Done(Value::Ok)
        );
        s.abort(top).expect("abort");
        // The write is gone: a fresh top reads the initial value.
        let top2 = s.begin_top().expect("top");
        assert_eq!(
            s.access(top2, ObjId(1), Op::Read).expect("read"),
            AccessOutcome::Done(Value::Int(0))
        );
        assert_eq!(s.commit(top2).expect("commit"), CommitOutcome::Committed);
        // Ops on the aborted subtree stay benign.
        assert_eq!(
            s.begin_child(top).expect("begin on aborted"),
            BeginOutcome::Aborted(top)
        );
        e.shutdown();
        let cert = certify(&e);
        assert!(cert.is_serially_correct(), "{}", cert.verdict.name());
    }

    #[test]
    fn cross_session_deadlock_is_broken_and_certifies() {
        let e = engine();
        let (x, y) = (ObjId(0), ObjId(1));
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let mk = |obj_first: ObjId, obj_second: ObjId| {
            let e = Arc::clone(&e);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut s = e.open_session();
                let top = s.begin_top().expect("top");
                let first = s.access(top, obj_first, Op::Write(1)).expect("first");
                barrier.wait();
                let second = s.access(top, obj_second, Op::Write(2)).expect("second");
                match (first, second) {
                    (AccessOutcome::Done(_), AccessOutcome::Done(_)) => {
                        matches!(s.commit(top).expect("commit"), CommitOutcome::Committed)
                    }
                    _ => false,
                }
            })
        };
        let h1 = mk(x, y);
        let h2 = mk(y, x);
        let c1 = h1.join().expect("session 1");
        let c2 = h2.join().expect("session 2");
        // At least one side commits; if both blocked, the detector doomed
        // exactly one victim and the other side proceeded.
        assert!(c1 || c2, "deadlock must not take both transactions down");
        e.shutdown();
        let cert = certify(&e);
        assert!(
            cert.is_serially_correct(),
            "deadlock-broken run must certify: {}",
            cert.verdict.name()
        );
        assert_eq!(cert.violations, 0);
    }
}
