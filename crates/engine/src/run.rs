//! The engine proper: a pool of OS-thread workers executing a workload's
//! script plans under the sharded lock table, with a detector thread on the
//! side and a post-hoc certification hook.
//!
//! ## Execution model
//!
//! Workers claim top-level slots from a shared counter and execute each
//! claimed subtree *depth-first* on one thread — a legal interleaving for
//! both `Parallel` and `Sequential` child orders (transaction
//! well-formedness never requires intra-transaction concurrency).
//! Concurrency happens between top-level transactions, which is where the
//! paper's serializability questions live.
//!
//! Every serial action a frame performs is stamped into the worker's
//! private log; object-level actions (`REQUEST_COMMIT` answers,
//! `INFORM_*`) are stamped by the lock table while the owning shard mutex
//! is held. Merging all logs by stamp therefore yields a history that
//! refines both per-worker program order and each object's actual
//! serialization — the history the run *really* performed, which
//! [`EngineReport::certify`] then proves serially correct (or not) via
//! `nt_sgt::certify_recorded`.
//!
//! ## Doom and unwinding
//!
//! The detector (or watchdog) dooms a victim through the status table; the
//! victim's worker notices at its next blocked acquire, frame entry, or
//! commit attempt, unwinds its call stack to the victim's frame
//! ([`TxResult::Doomed`] carries the target), aborts exactly that subtree
//! (one `ABORT`, one `INFORM_ABORT` per touched object, one
//! `REPORT_ABORT`), and — when the config enables backoff — re-runs the
//! slot with the workload's next pre-materialized replica after a real
//! wall-clock backoff sleep.

use crate::config::EngineConfig;
pub use crate::detector::Victim;
use crate::detector::{detect_loop, DetectorOutcome};
use crate::locktable::{Acquired, LockTable};
use crate::recorder::{merge, SeqClock, WorkerLog};
use crate::status::StatusTable;
use nt_faults::{RetryLedger, RetryOutcome, RetryRecord};
use nt_model::rw::RwInitials;
use nt_model::{Action, ObjId, TxId, TxTree, Value};
use nt_obs::{Event, TraceHandle};
use nt_serial::ObjectTypes;
use nt_sgt::{certify_recorded, ConflictSource, RecordedCertificate};
use nt_sgt_live::{FeedHandle, LiveCertifier, LiveStatus, SgtConfig};
use nt_sim::{ScriptPlan, Workload};
use nt_telemetry::{HistSnapshot, TelemetryHandle};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Everything the engine needs to execute a workload, decoupled from the
/// simulator's automata: the naming tree, per-transaction scripts, retry
/// chains, initial values, and serial types (for certification).
pub struct EnginePlan {
    /// The frozen naming tree.
    pub tree: Arc<TxTree>,
    /// Script plan per non-access transaction (including replicas).
    pub plans: BTreeMap<TxId, ScriptPlan>,
    /// Top-level transactions, in slot order.
    pub top: Vec<TxId>,
    /// Replica chains per slot parent (see `Workload::retry_chains`).
    pub retry_chains: BTreeMap<TxId, Vec<Vec<TxId>>>,
    /// Initial object values.
    pub initials: RwInitials,
    /// Serial types (certification).
    pub types: ObjectTypes,
}

impl EnginePlan {
    /// Extract the plan of a generated workload.
    pub fn from_workload(w: &Workload) -> Self {
        EnginePlan {
            tree: Arc::clone(&w.tree),
            plans: w.script_plans(),
            top: w.top.clone(),
            retry_chains: w.retry_chains.clone(),
            initials: w.initials.clone(),
            types: w.types.clone(),
        }
    }

    /// Structural validation: every inner transaction has a plan, every
    /// access is a read/write-register operation (the lock table implements
    /// Moss' read/write rules; other data types belong to the simulator's
    /// commutativity-based protocols).
    fn validate(&self) -> Result<(), String> {
        for t in self.tree.all_tx() {
            if t == TxId::ROOT {
                continue;
            }
            if self.tree.is_access(t) {
                let op = self.tree.op_of(t).expect("access carries an op");
                if !op.is_rw_read() && !op.is_rw_write() {
                    return Err(format!(
                        "access {t} uses non-read/write op {op:?}; the engine's \
                         Moss lock table only supports read/write registers"
                    ));
                }
            } else if !self.plans.contains_key(&t) {
                return Err(format!("inner transaction {t} has no script plan"));
            }
        }
        Ok(())
    }
}

/// Lock-table counters of one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Lock grants.
    pub granted: u64,
    /// Acquisitions that parked at least once.
    pub blocked: u64,
    /// Grants that landed only after a timed-out condvar wait (see
    /// [`LockTable::timeout_rescues`]).
    pub timeout_rescues: u64,
    /// Deadlock-detector scan passes.
    pub detector_passes: u64,
}

/// The outcome of one threaded run.
pub struct EngineReport {
    /// The tree the run executed (for certification).
    pub tree: Arc<TxTree>,
    /// Serial types (for certification).
    pub types: ObjectTypes,
    /// The merged recorded history, in stamp order.
    pub history: Vec<Action>,
    /// Top-level slots where some attempt committed.
    pub committed_top: usize,
    /// Top-level slots that failed (every attempt aborted).
    pub aborted_top: usize,
    /// Deadlock victims, in doom order.
    pub victims: Vec<Victim>,
    /// Per-slot retry ledger (only slots that carry replica chains).
    pub ledger: RetryLedger,
    /// Did the wall-clock watchdog abandon the run?
    pub gave_up: bool,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Lock-table and detector counters.
    pub stats: EngineStats,
    /// Per-top-level-slot latency (claim to resolution, including retry
    /// backoff), microseconds — merged across workers for p50/p95/p99.
    pub top_latency: HistSnapshot,
    /// Final status of the live serialization-graph certifier, when
    /// `cfg.live_certify` streamed the run into one (`None` otherwise).
    /// `live.ok == false` means the maintainer caught a cycle *during*
    /// the run, with the inserting edge in `live.violation`.
    pub live: Option<LiveStatus>,
}

impl EngineReport {
    /// Certify the recorded history against Theorem 17 post-hoc: simple-
    /// behavior constraints, appropriate return values, acyclic `SG`, and
    /// a validated witness.
    pub fn certify(&self) -> RecordedCertificate {
        certify_recorded(
            &self.tree,
            &self.history,
            &self.types,
            ConflictSource::ReadWrite,
        )
    }

    /// Journal the run through an observability sink: `run_start`, one
    /// `deadlock_victim` per doomed transaction, `run_end`.
    pub fn journal(&self, trace: &TraceHandle, seed: u64) {
        if !trace.enabled() {
            return;
        }
        trace.record(Event::RunStart {
            protocol: "engine-moss",
            seed,
        });
        for v in &self.victims {
            trace.record(Event::DeadlockVictim {
                victim: v.victim.0,
                waiter: v.waiter.0,
                blocker: v.blocker.0,
            });
        }
        trace.record(Event::RunEnd {
            steps: self.history.len() as u64,
            rounds: self.stats.detector_passes,
            quiescent: !self.gave_up,
        });
    }
}

/// How one frame of the depth-first execution resolved.
enum TxResult {
    Committed,
    Aborted,
    /// A *proper ancestor* of this frame was doomed: unwind (recording
    /// nothing) until the ancestor's own frame aborts it.
    Doomed(TxId),
}

/// How one child slot (original + optional replica attempts) resolved.
enum SlotResult {
    Committed,
    Failed,
    Doomed(TxId),
}

/// Shared per-run context.
struct Ctx<'a> {
    plan: &'a EnginePlan,
    cfg: &'a EngineConfig,
    table: &'a LockTable,
    status: &'a StatusTable,
    clock: &'a SeqClock,
    next_slot: &'a AtomicUsize,
    feed: Option<FeedHandle>,
}

/// One worker thread's state.
struct Worker<'a> {
    ctx: &'a Ctx<'a>,
    log: WorkerLog,
    /// Objects whose locks each live transaction currently holds (from this
    /// worker's subtrees). Inherited upward on commit, discarded on abort.
    held: BTreeMap<TxId, BTreeSet<ObjId>>,
    records: Vec<RetryRecord>,
    committed_top: usize,
    aborted_top: usize,
    top_lat: HistSnapshot,
}

impl<'a> Worker<'a> {
    fn new(ctx: &'a Ctx<'a>) -> Self {
        let log = match &ctx.feed {
            Some(f) => WorkerLog::new().with_feed(f.clone()),
            None => WorkerLog::new(),
        };
        Worker {
            ctx,
            log,
            held: BTreeMap::new(),
            records: Vec::new(),
            committed_top: 0,
            aborted_top: 0,
            top_lat: HistSnapshot::new(),
        }
    }

    fn tree(&self) -> &TxTree {
        &self.ctx.plan.tree
    }

    /// Pull and run top-level slots until the shared counter runs out.
    fn run(&mut self) {
        loop {
            let i = self.ctx.next_slot.fetch_add(1, Ordering::Relaxed);
            if i >= self.ctx.plan.top.len() {
                return;
            }
            let original = self.ctx.plan.top[i];
            let slot_start = Instant::now();
            match self.run_slot(TxId::ROOT, i, original) {
                SlotResult::Committed => self.committed_top += 1,
                SlotResult::Failed => self.aborted_top += 1,
                SlotResult::Doomed(_) => {
                    // Unreachable: a top-level frame has no proper ancestor
                    // below T0 to unwind to. Count it as failed defensively.
                    debug_assert!(false, "top-level slot cannot unwind past T0");
                    self.aborted_top += 1;
                }
            }
            self.top_lat
                .observe(slot_start.elapsed().as_micros() as u64);
        }
    }

    /// Run slot `slot_idx` of `parent`: the original child, then — when the
    /// config enables backoff — each pre-materialized replica after a real
    /// backoff sleep. A failed slot does not prevent the parent's commit
    /// (mirroring `ScriptedTx`).
    fn run_slot(&mut self, parent: TxId, slot_idx: usize, original: TxId) -> SlotResult {
        static EMPTY: Vec<TxId> = Vec::new();
        let chain: &Vec<TxId> = if self.ctx.cfg.backoff.is_some() {
            self.ctx
                .plan
                .retry_chains
                .get(&parent)
                .map(|chains| &chains[slot_idx])
                .unwrap_or(&EMPTY)
        } else {
            &EMPTY
        };
        for (k, &attempt) in std::iter::once(&original).chain(chain.iter()).enumerate() {
            if k > 0 {
                if self.ctx.table.gave_up() {
                    break;
                }
                let policy = self.ctx.cfg.backoff.as_ref().expect("chain implies policy");
                let rounds = policy.delay(k as u32);
                std::thread::sleep(Duration::from_micros(
                    rounds * self.ctx.cfg.backoff_round_us,
                ));
            }
            self.log
                .record(self.ctx.clock, Action::RequestCreate(attempt));
            match self.run_tx(attempt) {
                TxResult::Committed => {
                    if !chain.is_empty() {
                        self.records.push(RetryRecord {
                            original: original.0,
                            retries: k as u32,
                            outcome: RetryOutcome::Committed,
                        });
                    }
                    return SlotResult::Committed;
                }
                TxResult::Aborted => continue,
                TxResult::Doomed(d) => return SlotResult::Doomed(d),
            }
        }
        if !chain.is_empty() {
            self.records.push(RetryRecord {
                original: original.0,
                retries: chain.len() as u32,
                outcome: RetryOutcome::Exhausted,
            });
        }
        SlotResult::Failed
    }

    /// Execute transaction `t` (its `REQUEST_CREATE` is already recorded).
    fn run_tx(&mut self, t: TxId) -> TxResult {
        if let Some(d) = self.doomed_ancestor_or_giveup(t) {
            return if d == t {
                self.abort_tx(t);
                TxResult::Aborted
            } else {
                TxResult::Doomed(d)
            };
        }
        self.log.record(self.ctx.clock, Action::Create(t));
        if self.tree().is_access(t) {
            self.run_access(t)
        } else {
            self.run_inner(t)
        }
    }

    /// `doomed_ancestor`, also treating watchdog give-up as dooming the
    /// frame's top-level ancestor (so stragglers stop starting new work).
    fn doomed_ancestor_or_giveup(&self, t: TxId) -> Option<TxId> {
        self.ctx.status.doomed_ancestor(self.tree(), t).or_else(|| {
            if self.ctx.table.gave_up() {
                Some(self.tree().child_toward(TxId::ROOT, t))
            } else {
                None
            }
        })
    }

    /// An access: acquire the Moss lock (blocking), hold it across the
    /// configured storage latency, then commit and pass the lock up.
    fn run_access(&mut self, t: TxId) -> TxResult {
        let x = self.tree().object_of(t).expect("access names an object");
        let op = self.tree().op_of(t).expect("access carries an op").clone();
        match self.ctx.table.acquire(t, x, &op) {
            Acquired::Doomed(d) => {
                if d == t {
                    self.abort_tx(t);
                    TxResult::Aborted
                } else {
                    TxResult::Doomed(d)
                }
            }
            Acquired::Granted(v) => {
                self.held.entry(t).or_default().insert(x);
                if self.ctx.cfg.access_latency_us > 0 {
                    std::thread::sleep(Duration::from_micros(self.ctx.cfg.access_latency_us));
                }
                self.commit_tx(t, v)
            }
        }
    }

    /// An inner transaction: run every child slot depth-first, then request
    /// commit and commit (unless doomed meanwhile).
    fn run_inner(&mut self, t: TxId) -> TxResult {
        let children = self.ctx.plan.plans[&t].children.clone();
        for (i, &c) in children.iter().enumerate() {
            match self.run_slot(t, i, c) {
                SlotResult::Committed | SlotResult::Failed => {}
                SlotResult::Doomed(d) => {
                    return if d == t {
                        self.abort_tx(t);
                        TxResult::Aborted
                    } else {
                        TxResult::Doomed(d)
                    };
                }
            }
        }
        self.log
            .record(self.ctx.clock, Action::RequestCommit(t, Value::Ok));
        self.commit_tx(t, Value::Ok)
    }

    /// Commit `t` through the status CAS; on success inherit its locks to
    /// the parent, on failure (doomed meanwhile) take the abort path.
    fn commit_tx(&mut self, t: TxId, v: Value) -> TxResult {
        if self.ctx.status.try_commit(t) {
            self.log.record(self.ctx.clock, Action::Commit(t));
            if let Some(objs) = self.held.remove(&t) {
                self.ctx.table.release_inherit(t, objs.iter().copied());
                let parent = self.tree().parent(t).expect("non-root commits");
                self.held.entry(parent).or_default().extend(objs);
            }
            self.log.record(self.ctx.clock, Action::ReportCommit(t, v));
            TxResult::Committed
        } else {
            let d = self.doomed_ancestor_or_giveup(t).unwrap_or(t);
            if d == t {
                self.abort_tx(t);
                TxResult::Aborted
            } else {
                TxResult::Doomed(d)
            }
        }
    }

    /// Abort `t`: `ABORT`, one `INFORM_ABORT` per object a descendant-or-
    /// self holds locks on (discarding them), `REPORT_ABORT`.
    fn abort_tx(&mut self, t: TxId) {
        self.ctx.status.mark_aborted(t);
        self.log.record(self.ctx.clock, Action::Abort(t));
        let mut discarded: BTreeSet<ObjId> = BTreeSet::new();
        let dead: Vec<TxId> = self
            .held
            .keys()
            .copied()
            .filter(|&h| self.tree().is_ancestor(t, h))
            .collect();
        for h in dead {
            if let Some(objs) = self.held.remove(&h) {
                discarded.extend(objs);
            }
        }
        if !discarded.is_empty() {
            self.ctx.table.discard(t, discarded.iter().copied());
        }
        self.log.record(self.ctx.clock, Action::ReportAbort(t));
    }
}

/// Run a generated workload on the threaded engine.
pub fn run_workload(w: &Workload, cfg: &EngineConfig) -> Result<EngineReport, String> {
    run_plan(&EnginePlan::from_workload(w), cfg)
}

/// A pre-flight admission check run against the plan before any worker
/// starts. `Err` rejects the whole run with the gate's message. The static
/// serializability analyzer (`nt_lint::engine_preflight`) is the canonical
/// gate; keeping the signature a plain callback keeps the dependency
/// arrow pointing from the analyzer to the engine, not back.
pub type PreflightGate = dyn Fn(&EnginePlan) -> Result<(), String>;

/// [`run_plan`] with an optional pre-flight analyze step: the gate sees
/// the validated plan and can veto execution (e.g. because some schedule
/// of it could produce a cyclic serialization graph).
pub fn run_plan_gated(
    plan: &EnginePlan,
    cfg: &EngineConfig,
    gate: Option<&PreflightGate>,
) -> Result<EngineReport, String> {
    cfg.validate()?;
    plan.validate()?;
    if let Some(g) = gate {
        g(plan).map_err(|e| format!("pre-flight gate rejected the plan: {e}"))?;
    }
    run_plan(plan, cfg)
}

/// Run an [`EnginePlan`] on the threaded engine: `cfg.threads` workers, a
/// sharded lock table, a detector thread, and a merged recorded history.
pub fn run_plan(plan: &EnginePlan, cfg: &EngineConfig) -> Result<EngineReport, String> {
    cfg.validate()?;
    plan.validate()?;
    let status = Arc::new(StatusTable::new(plan.tree.len()));
    let clock = Arc::new(SeqClock::new());
    // Live certification: the whole (static) naming tree seeds the
    // maintainer before any action is stamped, then every log sharing
    // the clock carries the feed (the maintainer advances through a
    // contiguous stamp sequence, so none may be left out).
    let live_cert = cfg.live_certify.then(|| {
        let lc = LiveCertifier::start(SgtConfig::default(), TelemetryHandle::disabled());
        let feed = lc.handle();
        for t in plan.tree.all_tx() {
            if t == TxId::ROOT {
                continue;
            }
            let parent = plan.tree.parent(t).expect("non-root has a parent");
            let access = plan
                .tree
                .object_of(t)
                .map(|x| (x, plan.tree.op_of(t).expect("access has an op").clone()));
            feed.tree_add(t, parent, access);
        }
        lc
    });
    let feed = live_cert.as_ref().map(LiveCertifier::handle);
    let mut table = LockTable::new(
        Arc::clone(&plan.tree),
        Arc::clone(&status),
        Arc::clone(&clock),
        plan.initials.clone(),
        cfg.shards,
    );
    if let Some(f) = &feed {
        table = table.with_feed(f.clone());
    }
    let table = table;
    let next_slot = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let ctx = Ctx {
        plan,
        cfg,
        table: &table,
        status: &status,
        clock: &clock,
        next_slot: &next_slot,
        feed: feed.clone(),
    };
    let mut main_log = match &feed {
        Some(f) => WorkerLog::new().with_feed(f.clone()),
        None => WorkerLog::new(),
    };
    main_log.record(&clock, Action::Create(TxId::ROOT));
    let start = Instant::now();
    let (workers, detector) = std::thread::scope(|s| {
        let detector_handle = s.spawn(|| {
            detect_loop(
                &plan.tree,
                &status,
                &table,
                &plan.top,
                Duration::from_micros(cfg.detector_period_us),
                Duration::from_millis(cfg.max_wall_ms),
                start,
                &stop,
            )
        });
        let worker_handles: Vec<_> = (0..cfg.threads)
            .map(|_| {
                s.spawn(|| {
                    let mut w = Worker::new(&ctx);
                    w.run();
                    (w.log, w.records, w.committed_top, w.aborted_top, w.top_lat)
                })
            })
            .collect();
        let workers: Vec<_> = worker_handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
        stop.store(true, Ordering::Release);
        let detector: DetectorOutcome = detector_handle.join().expect("detector panicked");
        (workers, detector)
    });
    let wall = start.elapsed();
    let mut committed_top = 0;
    let mut aborted_top = 0;
    let mut records = Vec::new();
    let mut logs = vec![main_log];
    let mut top_latency = HistSnapshot::new();
    for (log, recs, c, a, lat) in workers {
        logs.push(log);
        records.extend(recs);
        committed_top += c;
        aborted_top += a;
        top_latency.merge(&lat);
    }
    logs.extend(table.drain_logs());
    let history = merge(logs);
    let live = live_cert.map(|lc| {
        let (status, _maintainer) = lc.stop();
        status
    });
    Ok(EngineReport {
        tree: Arc::clone(&plan.tree),
        types: plan.types.clone(),
        history,
        committed_top,
        aborted_top,
        victims: detector.victims,
        ledger: RetryLedger { records },
        gave_up: detector.gave_up,
        wall,
        stats: EngineStats {
            granted: table.granted(),
            blocked: table.blocked(),
            timeout_rescues: table.timeout_rescues(),
            detector_passes: detector.passes,
        },
        top_latency,
        live,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_sim::WorkloadSpec;

    #[test]
    fn single_thread_run_certifies() {
        let w = WorkloadSpec::default().generate();
        let cfg = EngineConfig {
            threads: 1,
            ..EngineConfig::default()
        };
        let r = run_workload(&w, &cfg).expect("runs");
        assert_eq!(r.committed_top + r.aborted_top, w.top.len());
        assert!(r.committed_top > 0);
        let cert = r.certify();
        assert!(
            cert.is_serially_correct(),
            "single-threaded run must certify: {:?}",
            cert.verdict.name()
        );
        assert_eq!(cert.violations, 0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let w = WorkloadSpec::default().generate();
        let cfg = EngineConfig {
            threads: 0,
            ..EngineConfig::default()
        };
        assert!(run_workload(&w, &cfg).is_err());
    }

    #[test]
    fn non_rw_workloads_are_rejected() {
        let w = WorkloadSpec {
            mix: nt_sim::OpMix::Counter { read_ratio: 0.5 },
            ..WorkloadSpec::default()
        }
        .generate();
        assert!(run_workload(&w, &EngineConfig::default()).is_err());
    }

    #[test]
    fn multi_thread_contended_run_certifies() {
        let w = WorkloadSpec {
            top_level: 12,
            objects: 3,
            hotspot: 0.5,
            seed: 7,
            ..WorkloadSpec::default()
        }
        .generate();
        let cfg = EngineConfig {
            threads: 4,
            shards: 4,
            ..EngineConfig::default()
        };
        let r = run_workload(&w, &cfg).expect("runs");
        assert!(!r.gave_up, "watchdog must not fire on a small workload");
        let cert = r.certify();
        assert!(
            cert.is_serially_correct(),
            "contended run must certify: {}",
            cert.verdict.name()
        );
    }

    #[test]
    fn live_certify_agrees_with_posthoc() {
        let w = WorkloadSpec {
            top_level: 12,
            objects: 3,
            hotspot: 0.5,
            seed: 11,
            ..WorkloadSpec::default()
        }
        .generate();
        let cfg = EngineConfig {
            threads: 4,
            shards: 4,
            live_certify: true,
            ..EngineConfig::default()
        };
        let r = run_workload(&w, &cfg).expect("runs");
        let live = r.live.as_ref().expect("live status present when enabled");
        assert!(live.ok, "live certifier must agree with post-hoc");
        assert!(live.violation.is_none());
        assert_eq!(live.processed, r.history.len() as u64);
        assert!(
            live.watermark > 0,
            "committed work must advance the GC watermark"
        );
        let cert = r.certify();
        assert!(cert.is_serially_correct(), "{}", cert.verdict.name());

        // Disabled by default: no live status.
        let r2 = run_workload(&w, &EngineConfig::default()).expect("runs");
        assert!(r2.live.is_none());
    }

    #[test]
    fn preflight_gate_can_veto_and_pass() {
        let w = WorkloadSpec {
            top_level: 2,
            objects: 2,
            seed: 1,
            ..WorkloadSpec::default()
        }
        .generate();
        let plan = EnginePlan::from_workload(&w);
        let cfg = EngineConfig::default();
        let veto: Box<PreflightGate> = Box::new(|_| Err("not on my watch".into()));
        let err = match run_plan_gated(&plan, &cfg, Some(veto.as_ref())) {
            Err(e) => e,
            Ok(_) => panic!("gate must veto the run"),
        };
        assert!(err.contains("pre-flight gate"), "{err}");
        assert!(err.contains("not on my watch"), "{err}");
        let pass: Box<PreflightGate> = Box::new(|_| Ok(()));
        let r = run_plan_gated(&plan, &cfg, Some(pass.as_ref())).expect("gate passes");
        assert!(r.certify().is_serially_correct());
    }
}
