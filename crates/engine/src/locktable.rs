//! Sharded Moss lock table with real blocking.
//!
//! Each shard owns a disjoint slice of the objects (`object_id & mask`)
//! behind one mutex + condvar pair, so lock traffic on disjoint objects
//! never contends on a shared line. Grant decisions use the exact
//! [`nt_locking::moss_precondition`] the simulated `M1_X` automaton uses:
//! an access is granted only when every conflicting lockholder is an
//! ancestor.
//!
//! ## Fairness and lost wakeups
//!
//! Waiters carry monotone *tickets*. A waiter may acquire only when it is
//! eligible (Moss precondition holds) **and** no eligible waiter on the
//! same object holds an earlier ticket — earliest-eligible wins. Strict
//! FIFO would be wrong here: under the ancestor rules a child's request is
//! often eligible while an unrelated earlier waiter is not, and parking the
//! child behind it can stall forever (the earlier waiter may be waiting on
//! the child's own subtree to finish).
//!
//! Every state change that can affect eligibility — a grant (removes a
//! waiter other waiters defer to), lock inheritance, an abort-time discard,
//! a doomed waiter deregistering — happens while the shard mutex is held
//! and broadcasts the shard condvar before releasing it. Waiters re-check
//! eligibility under the same mutex before parking, so a wakeup cannot
//! fall between check and wait. A bounded `wait_timeout` slice backstops
//! the argument; grants that land *immediately after* a timed-out wait are
//! counted in [`LockTable::timeout_rescues`], which the stress tests assert
//! stays at (or near) zero — the broadcasts, not the timeouts, do the work.

use crate::recorder::{ActionSink, SeqClock, WorkerLog};
use crate::status::StatusTable;
use crate::tree_view::TreeView;
use nt_locking::{moss_blockers_by, moss_precondition_by};
use nt_model::rw::RwInitials;
use nt_model::{Action, ObjId, Op, TxId, TxTree, Value};
use nt_telemetry::TelemetryHandle;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Result of a lock acquisition attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Acquired {
    /// Lock granted; the value is the access's `REQUEST_COMMIT` return
    /// value (the deepest tentative version for a read, `OK` for a write).
    Granted(Value),
    /// While (or before) waiting, the transaction discovered that an
    /// ancestor-or-self was doomed by the deadlock detector or the
    /// watchdog; no lock was taken. The worker must unwind to the named
    /// transaction's frame and abort there.
    Doomed(TxId),
}

/// One parked request.
struct Waiter {
    ticket: u64,
    t: TxId,
    write_like: bool,
}

/// Lock state of one object.
struct ObjLocks {
    /// Write-lockholders with their tentative values (the paper's
    /// `value` map). `T0` initially write-holds the initial value.
    write: BTreeMap<TxId, i64>,
    read: BTreeSet<TxId>,
    waiters: Vec<Waiter>,
    /// Grant times per holder, kept only while telemetry is enabled —
    /// feeds the hold-time histogram at release/discard.
    since: BTreeMap<TxId, Instant>,
}

impl ObjLocks {
    fn new(init: i64) -> Self {
        let mut write = BTreeMap::new();
        write.insert(TxId::ROOT, init);
        ObjLocks {
            write,
            read: BTreeSet::new(),
            waiters: Vec::new(),
            since: BTreeMap::new(),
        }
    }

    /// The tentative value a read observes: the deepest write-lockholder's
    /// (Lemma 9 makes it unique).
    fn read_value(&self, tree: &impl TreeView) -> i64 {
        *self
            .write
            .iter()
            .max_by_key(|(t, _)| tree.depth(**t))
            .expect("T0 always write-holds")
            .1
    }

    #[cfg(debug_assertions)]
    fn check_lemma9(&self, tree: &impl TreeView, x: ObjId) {
        for &w in self.write.keys() {
            for other in self.write.keys().chain(self.read.iter()) {
                assert!(
                    tree.is_ancestor(w, *other) || tree.is_ancestor(*other, w),
                    "Lemma 9 violated at {x:?}: {w} vs {other} unrelated",
                );
            }
        }
    }
}

/// Per-shard lock-traffic counters, updated under the shard mutex (so a
/// [`LockTable::shard_counters`] snapshot of one shard is coherent).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Lock grants on this shard.
    pub grants: u64,
    /// Acquires that parked at least once on this shard.
    pub waits: u64,
    /// Total lock hold time released on this shard, microseconds
    /// (tracked only while telemetry is enabled).
    pub hold_us: u64,
}

struct ShardState {
    objects: BTreeMap<u32, ObjLocks>,
    next_ticket: u64,
    counters: ShardCounters,
    /// Object-level actions, stamped while this shard's mutex is held —
    /// the stamps linearize them exactly as the shard serialized the state
    /// changes they describe.
    log: WorkerLog,
}

struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

/// The sharded lock manager, generic over the tree representation: the
/// batch engine passes a frozen `Arc<TxTree>` (the default), the session
/// engine a growable [`SessionTree`](crate::session_tree::SessionTree).
pub struct LockTable<T: TreeView = Arc<TxTree>> {
    tree: T,
    status: Arc<StatusTable>,
    clock: Arc<SeqClock>,
    initials: RwInitials,
    shards: Vec<Shard>,
    mask: usize,
    wait_slice: Duration,
    give_up: AtomicBool,
    granted: AtomicU64,
    blocked: AtomicU64,
    timeout_rescues: AtomicU64,
    telemetry: TelemetryHandle,
}

impl<T: TreeView> LockTable<T> {
    /// A table with `shards` shards (must be a nonzero power of two).
    pub fn new(
        tree: T,
        status: Arc<StatusTable>,
        clock: Arc<SeqClock>,
        initials: RwInitials,
        shards: usize,
    ) -> Self {
        assert!(shards.is_power_of_two(), "shards must be a power of two");
        LockTable {
            tree,
            status,
            clock,
            initials,
            shards: (0..shards)
                .map(|_| Shard {
                    state: Mutex::new(ShardState {
                        objects: BTreeMap::new(),
                        next_ticket: 0,
                        counters: ShardCounters::default(),
                        log: WorkerLog::new(),
                    }),
                    cv: Condvar::new(),
                })
                .collect(),
            mask: shards - 1,
            wait_slice: Duration::from_millis(5),
            give_up: AtomicBool::new(false),
            granted: AtomicU64::new(0),
            blocked: AtomicU64::new(0),
            timeout_rescues: AtomicU64::new(0),
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attach a live telemetry handle (builder-style, before the table is
    /// shared): blocked intervals and hold times start feeding its
    /// histograms.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Tee every shard's object actions into a durable sink
    /// (builder-style, before the table is shared). Shard logs stamp under
    /// the shard mutex, and the sink stamps under its own append mutex, so
    /// persisted order still equals stamp order per object.
    pub fn with_sink(mut self, sink: Arc<dyn ActionSink>) -> Self {
        for shard in &mut self.shards {
            shard.state.get_mut().expect("shard poisoned").log =
                WorkerLog::with_sink(Arc::clone(&sink));
        }
        self
    }

    /// Tee every shard's object actions into the live certifier
    /// (builder-style, before the table is shared; after [`with_sink`]
    /// when both are mounted — `with_sink` replaces the shard logs).
    pub fn with_feed(mut self, feed: nt_sgt_live::FeedHandle) -> Self {
        for shard in &mut self.shards {
            let st = shard.state.get_mut().expect("shard poisoned");
            st.log = std::mem::take(&mut st.log).with_feed(feed.clone());
        }
        self
    }

    fn shard_of(&self, x: ObjId) -> &Shard {
        &self.shards[x.index() & self.mask]
    }

    /// Acquire the lock access `t` needs for `op` on `x`, blocking until
    /// granted or doomed. `op` must be a read/write-register operation.
    pub fn acquire(&self, t: TxId, x: ObjId, op: &Op) -> Acquired {
        let write_like = !op.is_rw_read();
        let shard = self.shard_of(x);
        let mut st = shard.state.lock().expect("shard poisoned");
        let mut my_ticket: Option<u64> = None;
        let mut last_wait_timed_out = false;
        // Set when this acquire first parks; telemetry-only, so the
        // uncontended grant path never reads the wall clock.
        let mut wait_start: Option<Instant> = None;
        loop {
            // Doom / watchdog checks come first so a doomed waiter leaves
            // the queue promptly (its departure can unblock others).
            let doomed = self.status.doomed_ancestor(&self.tree, t).or_else(|| {
                if self.give_up.load(Ordering::Acquire) {
                    Some(self.tree.child_toward(TxId::ROOT, t))
                } else {
                    None
                }
            });
            let locks = st
                .objects
                .entry(x.0)
                .or_insert_with(|| ObjLocks::new(self.initials.initial(x)));
            if let Some(d) = doomed {
                if my_ticket.is_some() {
                    locks.waiters.retain(|w| w.t != t);
                    shard.cv.notify_all();
                }
                return Acquired::Doomed(d);
            }
            let eligible = moss_precondition_by(
                |a, b| self.tree.is_ancestor(a, b),
                t,
                write_like,
                locks.write.keys().copied(),
                locks.read.iter().copied(),
            );
            let earlier_eligible = locks.waiters.iter().any(|w| {
                my_ticket.is_none_or(|mine| w.ticket < mine)
                    && w.t != t
                    && moss_precondition_by(
                        |a, b| self.tree.is_ancestor(a, b),
                        w.t,
                        w.write_like,
                        locks.write.keys().copied(),
                        locks.read.iter().copied(),
                    )
            });
            if eligible && !earlier_eligible {
                let value = if write_like {
                    let data = op.write_data().expect("write-like rw op carries data");
                    locks.write.insert(t, data);
                    Value::Ok
                } else {
                    let v = locks.read_value(&self.tree);
                    locks.read.insert(t);
                    Value::Int(v)
                };
                if self.telemetry.is_enabled() {
                    locks.since.insert(t, Instant::now());
                }
                #[cfg(debug_assertions)]
                locks.check_lemma9(&self.tree, x);
                if my_ticket.is_some() {
                    locks.waiters.retain(|w| w.t != t);
                    if last_wait_timed_out {
                        self.timeout_rescues.fetch_add(1, Ordering::Relaxed);
                    }
                }
                st.counters.grants += 1;
                st.log
                    .record(&self.clock, Action::RequestCommit(t, value.clone()));
                self.granted.fetch_add(1, Ordering::Relaxed);
                shard.cv.notify_all();
                if let Some(start) = wait_start {
                    self.telemetry
                        .observe_lock_blocked(start.elapsed().as_micros() as u64);
                }
                return Acquired::Granted(value);
            }
            if my_ticket.is_none() {
                let ticket = st.next_ticket;
                st.next_ticket += 1;
                st.objects
                    .get_mut(&x.0)
                    .expect("just inserted")
                    .waiters
                    .push(Waiter {
                        ticket,
                        t,
                        write_like,
                    });
                my_ticket = Some(ticket);
                st.counters.waits += 1;
                self.blocked.fetch_add(1, Ordering::Relaxed);
                if self.telemetry.is_enabled() {
                    wait_start = Some(Instant::now());
                }
            }
            let (next, timeout) = shard
                .cv
                .wait_timeout(st, self.wait_slice)
                .expect("shard poisoned");
            st = next;
            last_wait_timed_out = timeout.timed_out();
        }
    }

    /// `INFORM_COMMIT(t)` for every object in `objs`: move `t`'s locks
    /// (and tentative value) up to `parent(t)`.
    pub fn release_inherit(&self, t: TxId, objs: impl IntoIterator<Item = ObjId>) {
        let parent = self.tree.parent(t).expect("cannot inherit from T0");
        for x in objs {
            let shard = self.shard_of(x);
            let mut st = shard.state.lock().expect("shard poisoned");
            let mut held_us = None;
            if let Some(locks) = st.objects.get_mut(&x.0) {
                if let Some(v) = locks.write.remove(&t) {
                    locks.write.insert(parent, v);
                }
                if locks.read.remove(&t) {
                    locks.read.insert(parent);
                }
                // `t`'s hold ends here; the inherited lock starts the
                // parent's hold clock (unless it already holds one).
                if let Some(start) = locks.since.remove(&t) {
                    held_us = Some(start.elapsed().as_micros() as u64);
                    locks.since.entry(parent).or_insert_with(Instant::now);
                }
                #[cfg(debug_assertions)]
                locks.check_lemma9(&self.tree, x);
            }
            if let Some(us) = held_us {
                st.counters.hold_us += us;
                self.telemetry.observe_lock_hold(us);
            }
            st.log.record(&self.clock, Action::InformCommit(x, t));
            shard.cv.notify_all();
        }
    }

    /// `INFORM_ABORT(d)` for every object in `objs`: discard all locks held
    /// by descendants-or-self of `d`.
    pub fn discard(&self, d: TxId, objs: impl IntoIterator<Item = ObjId>) {
        for x in objs {
            let shard = self.shard_of(x);
            let mut st = shard.state.lock().expect("shard poisoned");
            let mut discarded_us = Vec::new();
            if let Some(locks) = st.objects.get_mut(&x.0) {
                locks.write.retain(|h, _| !self.tree.is_ancestor(d, *h));
                locks.read.retain(|h| !self.tree.is_ancestor(d, *h));
                let dead: Vec<TxId> = locks
                    .since
                    .keys()
                    .copied()
                    .filter(|h| self.tree.is_ancestor(d, *h))
                    .collect();
                for h in dead {
                    if let Some(start) = locks.since.remove(&h) {
                        discarded_us.push(start.elapsed().as_micros() as u64);
                    }
                }
            }
            for us in discarded_us {
                st.counters.hold_us += us;
                self.telemetry.observe_lock_hold(us);
            }
            st.log.record(&self.clock, Action::InformAbort(x, d));
            shard.cv.notify_all();
        }
    }

    /// Snapshot of the wait-for relation for the deadlock detector: each
    /// parked waiter with the lockholders currently blocking it. Shards are
    /// locked one at a time, so the snapshot is per-shard (not globally)
    /// consistent — the detector re-confirms any cycle by dooming through
    /// the status CAS, which refuses completed transactions.
    pub fn waiting_snapshot(&self) -> Vec<(TxId, Vec<TxId>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let st = shard.state.lock().expect("shard poisoned");
            for locks in st.objects.values() {
                for w in &locks.waiters {
                    let blockers = moss_blockers_by(
                        |a, b| self.tree.is_ancestor(a, b),
                        w.t,
                        w.write_like,
                        locks.write.keys().copied(),
                        locks.read.iter().copied(),
                    );
                    if !blockers.is_empty() {
                        out.push((w.t, blockers));
                    }
                }
            }
        }
        out
    }

    /// Broadcast every shard's condvar (after the detector doomed a victim,
    /// so its blocked frames re-check their ancestry promptly).
    pub fn notify_all_shards(&self) {
        for shard in &self.shards {
            let _st = shard.state.lock().expect("shard poisoned");
            shard.cv.notify_all();
        }
    }

    /// Watchdog: make every current and future waiter give up.
    pub fn give_up(&self) {
        self.give_up.store(true, Ordering::Release);
        self.notify_all_shards();
    }

    /// Did the watchdog fire?
    pub fn gave_up(&self) -> bool {
        self.give_up.load(Ordering::Acquire)
    }

    /// Drain the per-shard object-action logs (after the run).
    pub fn drain_logs(&self) -> Vec<WorkerLog> {
        self.shards
            .iter()
            .map(|s| std::mem::take(&mut s.state.lock().expect("shard poisoned").log))
            .collect()
    }

    /// Ship every shard log's buffered feed entries to the live
    /// certifier now. Feed sends are batched at transaction resolutions
    /// ([`WorkerLog::record`]); a certifier barrier (`CERT`) needs the
    /// still-buffered tail too, or the maintainer parks at the hole.
    pub fn flush_feeds(&self) {
        for shard in &self.shards {
            shard.state.lock().expect("shard poisoned").log.flush_feed();
        }
    }

    /// Clone the per-shard object-action logs without draining them — the
    /// session engine's `HISTORY_FETCH` snapshots a live server whose
    /// shards keep recording afterwards.
    pub fn snapshot_logs(&self) -> Vec<WorkerLog> {
        self.shards
            .iter()
            .map(|s| s.state.lock().expect("shard poisoned").log.clone())
            .collect()
    }

    /// Lock grants so far.
    pub fn granted(&self) -> u64 {
        self.granted.load(Ordering::Relaxed)
    }

    /// Requests that parked at least once.
    pub fn blocked(&self) -> u64 {
        self.blocked.load(Ordering::Relaxed)
    }

    /// Grants that landed immediately after a timed-out condvar wait — a
    /// nonzero burst here would indicate a lost-wakeup bug that the timeout
    /// backstop papered over.
    pub fn timeout_rescues(&self) -> u64 {
        self.timeout_rescues.load(Ordering::Relaxed)
    }

    /// Per-shard lock-traffic counters (each shard's triple is snapshotted
    /// under its own mutex, so it is internally coherent).
    pub fn shard_counters(&self) -> Vec<ShardCounters> {
        self.shards
            .iter()
            .map(|s| s.state.lock().expect("shard poisoned").counters)
            .collect()
    }
}
