//! The read-side tree interface the lock table, status table, and deadlock
//! detector actually need — factored out of [`TxTree`] so the same
//! machinery serves both the batch engine (a frozen `Arc<TxTree>` known
//! before the run) and the networked session engine (a
//! [`SessionTree`](crate::session_tree::SessionTree) that *grows* while
//! transactions are in flight).
//!
//! All queries concern nodes that already exist, and both implementations
//! are append-only: a node's parent, depth, and kind never change after
//! registration, so the derived relations (`is_ancestor`, `child_toward`)
//! are stable under concurrent growth.

use nt_model::{ObjId, Op, TxId, TxTree};

/// Read access to a (possibly still growing) transaction naming tree.
pub trait TreeView: Send + Sync {
    /// The parent of `t`, or `None` for `T0`.
    fn parent(&self, t: TxId) -> Option<TxId>;
    /// Depth of `t` (`T0` has depth 0).
    fn depth(&self, t: TxId) -> u32;
    /// True iff `t` is an access (a leaf bound to an object).
    fn is_access(&self, t: TxId) -> bool;
    /// The object accessed by `t`, if `t` is an access.
    fn object_of(&self, t: TxId) -> Option<ObjId>;
    /// The operation performed by `t`, if `t` is an access.
    fn op_of(&self, t: TxId) -> Option<Op>;

    /// True iff `a` is a (reflexive) ancestor of `b`.
    fn is_ancestor(&self, a: TxId, b: TxId) -> bool {
        let da = self.depth(a);
        let mut cur = b;
        let mut dc = self.depth(b);
        while dc > da {
            cur = self.parent(cur).expect("non-root has a parent");
            dc -= 1;
        }
        cur == a
    }

    /// The child of `ancestor` on the path down to `descendant` (requires
    /// `ancestor` to be a proper ancestor of `descendant`).
    fn child_toward(&self, ancestor: TxId, descendant: TxId) -> TxId {
        let target = self.depth(ancestor) + 1;
        let mut cur = descendant;
        while self.depth(cur) > target {
            cur = self.parent(cur).expect("non-root has a parent");
        }
        cur
    }
}

impl TreeView for TxTree {
    fn parent(&self, t: TxId) -> Option<TxId> {
        TxTree::parent(self, t)
    }
    fn depth(&self, t: TxId) -> u32 {
        TxTree::depth(self, t)
    }
    fn is_access(&self, t: TxId) -> bool {
        TxTree::is_access(self, t)
    }
    fn object_of(&self, t: TxId) -> Option<ObjId> {
        TxTree::object_of(self, t)
    }
    fn op_of(&self, t: TxId) -> Option<Op> {
        TxTree::op_of(self, t).cloned()
    }
    fn is_ancestor(&self, a: TxId, b: TxId) -> bool {
        TxTree::is_ancestor(self, a, b)
    }
    fn child_toward(&self, ancestor: TxId, descendant: TxId) -> TxId {
        TxTree::child_toward(self, ancestor, descendant)
    }
}

impl<T: TreeView + ?Sized> TreeView for std::sync::Arc<T> {
    fn parent(&self, t: TxId) -> Option<TxId> {
        (**self).parent(t)
    }
    fn depth(&self, t: TxId) -> u32 {
        (**self).depth(t)
    }
    fn is_access(&self, t: TxId) -> bool {
        (**self).is_access(t)
    }
    fn object_of(&self, t: TxId) -> Option<ObjId> {
        (**self).object_of(t)
    }
    fn op_of(&self, t: TxId) -> Option<Op> {
        (**self).op_of(t)
    }
    fn is_ancestor(&self, a: TxId, b: TxId) -> bool {
        (**self).is_ancestor(a, b)
    }
    fn child_toward(&self, ancestor: TxId, descendant: TxId) -> TxId {
        (**self).child_toward(ancestor, descendant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_model::Op;

    #[test]
    fn default_methods_agree_with_txtree() {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(a);
        let u = tree.add_access(b, x, Op::Read);
        let c = tree.add_inner(TxId::ROOT);

        // Wrap so only the required methods are concrete and the defaults
        // kick in.
        struct Raw(TxTree);
        impl TreeView for Raw {
            fn parent(&self, t: TxId) -> Option<TxId> {
                self.0.parent(t)
            }
            fn depth(&self, t: TxId) -> u32 {
                self.0.depth(t)
            }
            fn is_access(&self, t: TxId) -> bool {
                self.0.is_access(t)
            }
            fn object_of(&self, t: TxId) -> Option<ObjId> {
                self.0.object_of(t)
            }
            fn op_of(&self, t: TxId) -> Option<Op> {
                self.0.op_of(t).cloned()
            }
        }
        let raw = Raw(tree.clone());
        for &(p, q) in &[(a, u), (u, u), (c, u), (a, c), (TxId::ROOT, u)] {
            assert_eq!(raw.is_ancestor(p, q), tree.is_ancestor(p, q), "{p} {q}");
        }
        assert_eq!(raw.child_toward(TxId::ROOT, u), a);
        assert_eq!(raw.child_toward(a, u), b);
    }
}
