//! # nt-engine
//!
//! A multi-threaded nested-transaction engine. Everything else in the
//! workspace executes serially under a logical clock; this crate runs the
//! same `WorkloadSpec`/`ScriptedTx` workloads under genuine OS-thread
//! concurrency and then *proves* each run correct after the fact:
//!
//! * a **sharded lock table** ([`LockTable`]) implements Moss' read/write
//!   locking rules (§5.2) — the same [`nt_locking::moss_precondition`] the
//!   simulated `M1_X` automaton uses — with real blocking on condition
//!   variables and fair (earliest-eligible-ticket) wakeup;
//! * a **wait-for-graph deadlock detector** (a dedicated thread) dooms one
//!   victim per detected cycle, chosen as the lowest incomplete transaction
//!   on a blocker's ancestor chain (mirroring the simulator's policy);
//!   victims flow into the `nt-faults` retry/backoff machinery via the
//!   workload's pre-materialized replica chains;
//! * a **concurrent history recorder** ([`recorder`]) stamps every action
//!   from one global sequence counter into per-worker append buffers;
//!   object-level actions are stamped while the owning lock shard is held,
//!   so the merged history linearizes exactly the synchronization the
//!   engine actually performed;
//! * the merged history feeds `nt_sgt::certify_recorded`, certifying each
//!   concurrent run against Theorem 17 post-hoc: the serialization graph
//!   must be acyclic and every return value appropriate.
//!
//! The engine executes each top-level transaction's subtree depth-first on
//! one worker (a legal interleaving for both `Parallel` and `Sequential`
//! child orders — transaction well-formedness never *requires* intra-
//! transaction concurrency); concurrency happens *between* top-level
//! transactions, which is where the paper's serializability questions live.

#![forbid(unsafe_code)]

pub mod config;
pub mod detector;
pub mod locktable;
pub mod recorder;
pub mod run;
pub mod session;
pub mod session_tree;
pub mod status;
pub mod tree_view;

pub use config::{DurabilityMode, EngineConfig};
pub use detector::DetectorOutcome;
pub use locktable::{Acquired, LockTable, ShardCounters};
pub use nt_sgt_live::{FeedHandle, LiveCertifier, LiveStatus};
pub use recorder::{ActionSink, SeqClock, WorkerLog};
pub use run::{
    run_plan, run_plan_gated, run_workload, EnginePlan, EngineReport, EngineStats, PreflightGate,
    Victim,
};
pub use session::{
    AccessOutcome, BeginOutcome, CommitOutcome, RecoveredSeed, Session, SessionEngine, SessionError,
};
pub use session_tree::{SessionTree, TreeError};
pub use status::StatusTable;
pub use tree_view::TreeView;
