//! The headline guarantee: every genuinely-concurrent contended run is
//! certified serially correct post-hoc. Ten seeds, eight worker threads,
//! a hot keyspace, retries enabled — zero violations tolerated.

use nt_engine::{run_workload, EngineConfig};
use nt_sim::WorkloadSpec;

#[test]
fn ten_seeded_contended_eight_thread_runs_all_certify() {
    for seed in 0..10 {
        let w = WorkloadSpec {
            top_level: 12,
            objects: 3,
            hotspot: 0.6,
            retry_attempts: 2,
            seed,
            ..WorkloadSpec::default()
        }
        .generate();
        let cfg = EngineConfig {
            threads: 8,
            shards: 4,
            access_latency_us: 200,
            ..EngineConfig::default()
        };
        let r = run_workload(&w, &cfg).expect("engine run");
        assert!(!r.gave_up, "seed {seed}: watchdog must not fire");
        assert_eq!(
            r.committed_top + r.aborted_top,
            w.top.len(),
            "seed {seed}: every top-level slot must resolve"
        );
        assert!(r.committed_top > 0, "seed {seed}: something must commit");
        let cert = r.certify();
        assert_eq!(
            cert.violations,
            0,
            "seed {seed}: recorded history must certify acyclic, got {} \
             ({} actions, {} victims)",
            cert.verdict.name(),
            r.history.len(),
            r.victims.len()
        );
    }
}
