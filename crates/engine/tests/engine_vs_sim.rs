//! Cross-validation: the same generated workload runs through the
//! single-threaded simulator (`nt-sim`'s Moss automata under the logical
//! scheduler) and through the threaded engine, and *both* histories pass
//! the same Theorem 17 checker. The executors share nothing but the
//! workload and `moss_precondition`, so agreement here is evidence that
//! the engine's blocking/inheritance/abort paths implement the same
//! protocol the proofs are about.

use nt_engine::{run_workload, EngineConfig};
use nt_locking::LockMode;
use nt_sgt::{check_serial_correctness, ConflictSource};
use nt_sim::{run_generic, Protocol, SimConfig, WorkloadSpec};

#[test]
fn same_workload_certifies_under_simulator_and_engine() {
    for seed in [3, 21] {
        let spec = WorkloadSpec {
            top_level: 8,
            objects: 3,
            hotspot: 0.5,
            seed,
            ..WorkloadSpec::default()
        };

        // Simulator path: logical clock, automata, random interleaving.
        let mut sim_w = spec.generate();
        let sim = run_generic(
            &mut sim_w,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig::default(),
        );
        assert!(sim.quiescent, "seed {seed}: simulator must quiesce");
        let sim_verdict = check_serial_correctness(
            &sim_w.tree,
            &sim.trace,
            &sim_w.types,
            ConflictSource::ReadWrite,
        );
        assert!(
            sim_verdict.is_serially_correct(),
            "seed {seed}: simulator history must certify, got {}",
            sim_verdict.name()
        );

        // Engine path: OS threads, condvars, wall-clock time — same tree
        // (the generator is deterministic per spec), same checker.
        let eng_w = spec.generate();
        assert_eq!(
            sim_w.tree.len(),
            eng_w.tree.len(),
            "generation must be deterministic"
        );
        let r = run_workload(&eng_w, &EngineConfig::default()).expect("engine run");
        assert!(!r.gave_up, "seed {seed}: engine watchdog must not fire");
        let cert = r.certify();
        assert!(
            cert.is_serially_correct(),
            "seed {seed}: engine history must certify, got {}",
            cert.verdict.name()
        );

        // Both executors resolve every top-level slot.
        assert_eq!(sim.committed_top + sim.aborted_top, sim_w.top.len());
        assert_eq!(r.committed_top + r.aborted_top, eng_w.top.len());
    }
}
