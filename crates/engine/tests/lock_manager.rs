//! Lock-manager integration tests: the Moss ancestor-holder rule under
//! real blocking, a seeded condvar stress proving wakeups are not lost,
//! and a deliberate two-party deadlock resolved by the detector with the
//! victim salvaged through a retry replica.

use nt_engine::{run_plan, Acquired, EngineConfig, EnginePlan, LockTable, SeqClock, StatusTable};
use nt_model::rw::RwInitials;
use nt_model::{Op, TxId, TxTree, Value};
use nt_serial::ObjectTypes;
use nt_sim::{ChildOrder, ScriptPlan};
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

fn table_for(tree: &Arc<TxTree>, shards: usize) -> LockTable {
    LockTable::new(
        Arc::clone(tree),
        Arc::new(StatusTable::new(tree.len())),
        Arc::new(SeqClock::new()),
        RwInitials::uniform(0),
        shards,
    )
}

/// A write under `A` must wait while an *unrelated* transaction read-holds
/// the object (Moss' rule: every conflicting holder must be an ancestor),
/// and must be granted the moment that holder's lock is discarded — even
/// though `A` itself still read-holds, because `A` is the writer's parent.
#[test]
fn upgrade_waits_for_unrelated_reader_not_for_ancestor() {
    let mut tree = TxTree::new();
    let x = tree.add_object();
    let a = tree.add_inner(TxId::ROOT);
    let ar = tree.add_access(a, x, Op::Read);
    let aw = tree.add_access(a, x, Op::Write(5));
    let b = tree.add_inner(TxId::ROOT);
    let br = tree.add_access(b, x, Op::Read);
    let tree = Arc::new(tree);
    let table = table_for(&tree, 1);

    // A and B both end up read-holding x (locks inherited upward).
    assert_eq!(
        table.acquire(ar, x, &Op::Read),
        Acquired::Granted(Value::Int(0))
    );
    table.release_inherit(ar, [x]);
    assert_eq!(
        table.acquire(br, x, &Op::Read),
        Acquired::Granted(Value::Int(0))
    );
    table.release_inherit(br, [x]);

    let (tx, rx) = mpsc::channel();
    std::thread::scope(|s| {
        s.spawn(|| {
            tx.send(table.acquire(aw, x, &Op::Write(5))).expect("send");
        });
        // The writer must be parked: B read-holds and is no ancestor of aw.
        assert!(
            rx.recv_timeout(Duration::from_millis(100)).is_err(),
            "write must block while an unrelated reader holds the lock"
        );
        let snapshot = table.waiting_snapshot();
        assert!(
            snapshot
                .iter()
                .any(|(w, blockers)| *w == aw && blockers.contains(&b)),
            "snapshot must show aw blocked on B: {snapshot:?}"
        );
        // B aborts; its read lock is discarded. A's own read lock remains,
        // but A is the writer's parent — an ancestor holder never blocks.
        table.discard(b, [x]);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5))
                .expect("granted after discard"),
            Acquired::Granted(Value::Ok)
        );
    });
    assert_eq!(table.blocked(), 1);
}

/// Seeded condvar stress: four top-level transactions ping-pong write locks
/// on one object through park/notify cycles. Every grant that lands only
/// after a *timed-out* wait is counted by the table; if broadcasts were
/// being lost, every handoff would ride the 5 ms timeout backstop and the
/// counter would explode. A small residue is tolerated (a release can race
/// a concurrent timeout benignly); the bound fails long before the
/// backstop becomes the actual wakeup mechanism.
#[test]
fn condvar_stress_loses_no_wakeups() {
    const TOPS: usize = 4;
    const ROUNDS: usize = 25;
    let mut tree = TxTree::new();
    let x = tree.add_object();
    let mut lanes: Vec<(TxId, Vec<TxId>)> = Vec::new();
    for i in 0..TOPS {
        let t = tree.add_inner(TxId::ROOT);
        let accesses = (0..ROUNDS)
            .map(|k| tree.add_access(t, x, Op::Write((i * ROUNDS + k) as i64)))
            .collect();
        lanes.push((t, accesses));
    }
    let tree = Arc::new(tree);
    let table = table_for(&tree, 1);

    std::thread::scope(|s| {
        for (t, accesses) in &lanes {
            let (tree, table) = (&tree, &table);
            s.spawn(move || {
                for &acc in accesses {
                    let op = tree.op_of(acc).expect("access carries an op").clone();
                    match table.acquire(acc, x, &op) {
                        Acquired::Granted(_) => {}
                        Acquired::Doomed(d) => panic!("nothing dooms here, got {d}"),
                    }
                    // Hand the lock all the way to T0 so every other lane's
                    // next access becomes eligible (T0 is everyone's
                    // ancestor) — maximal park/notify traffic.
                    table.release_inherit(acc, [x]);
                    table.release_inherit(*t, [x]);
                }
            });
        }
    });

    let granted = table.granted();
    assert_eq!(granted, (TOPS * ROUNDS) as u64, "every acquire must land");
    let rescues = table.timeout_rescues();
    assert!(
        rescues <= granted / 10,
        "timed-out-wait grants must be rare ({rescues} of {granted} grants \
         rode the timeout backstop — wakeups are being lost)"
    );
}

/// Hand-built deadlock: A writes x then y, B writes y then x, with enough
/// per-access latency that both grab their first lock before requesting the
/// second. The detector must doom a victim; the victim's slot must retry
/// through its pre-materialized replica; the recorded history must still
/// certify. Timing-dependent, so the fixture retries a few runs and
/// requires at least one to exhibit the full deadlock → victim → salvage
/// chain (every run, deadlocked or not, must certify).
#[test]
fn two_party_deadlock_is_detected_and_victim_salvaged() {
    let mut tree = TxTree::new();
    let x = tree.add_object();
    let y = tree.add_object();
    let mut plans: BTreeMap<TxId, ScriptPlan> = BTreeMap::new();
    // lane(obj1, obj2) builds an inner transaction writing obj1 then obj2.
    let mut lane = |first, second, v: i64| {
        let t = tree.add_inner(TxId::ROOT);
        let a1 = tree.add_access(t, first, Op::Write(v));
        let a2 = tree.add_access(t, second, Op::Write(v + 1));
        (t, vec![a1, a2])
    };
    let (a, a_kids) = lane(x, y, 10);
    let (b, b_kids) = lane(y, x, 20);
    let (a2, a2_kids) = lane(x, y, 30); // replica of A's slot
    let (b2, b2_kids) = lane(y, x, 40); // replica of B's slot
    for (t, kids) in [(a, a_kids), (b, b_kids), (a2, a2_kids), (b2, b2_kids)] {
        plans.insert(
            t,
            ScriptPlan {
                children: kids,
                order: ChildOrder::Sequential,
            },
        );
    }
    let tree = Arc::new(tree);
    let plan = EnginePlan {
        tree: Arc::clone(&tree),
        plans,
        top: vec![a, b],
        retry_chains: BTreeMap::from([(TxId::ROOT, vec![vec![a2], vec![b2]])]),
        initials: RwInitials::uniform(0),
        types: ObjectTypes::uniform(2, Arc::new(nt_serial::RwRegister::new(0))),
    };
    let cfg = EngineConfig {
        threads: 2,
        shards: 2,
        access_latency_us: 20_000,
        backoff_round_us: 100,
        ..EngineConfig::default()
    };

    let mut deadlocked_and_salvaged = false;
    for attempt in 0..5 {
        let r = run_plan(&plan, &cfg).expect("fixture runs");
        assert!(!r.gave_up, "attempt {attempt}: watchdog must not fire");
        let cert = r.certify();
        assert!(
            cert.is_serially_correct(),
            "attempt {attempt}: every run must certify, got {}",
            cert.verdict.name()
        );
        assert_eq!(r.committed_top + r.aborted_top, 2);
        if !r.victims.is_empty() {
            // The victim must be one of the two original lanes, and its
            // slot must have been salvaged by the replica (retried, then
            // committed) unless the replica itself fell to a second cycle.
            assert!(
                r.victims.iter().all(|v| [a, b, a2, b2].contains(&v.victim)),
                "unexpected victim set {:?}",
                r.victims
            );
            let stats = r.ledger.stats();
            if stats.salvaged >= 1 && r.committed_top == 2 {
                deadlocked_and_salvaged = true;
                break;
            }
        }
    }
    assert!(
        deadlocked_and_salvaged,
        "five runs of a 20ms-per-access crossed-lock fixture never produced \
         a detected deadlock with a salvaged victim"
    );
}
