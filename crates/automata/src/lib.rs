//! # nt-automata
//!
//! A small input/output automaton framework (§2.1 of the paper), specialized
//! to the workspace's global action alphabet [`nt_model::Action`].
//!
//! The paper models every component — transactions, objects, schedulers — as
//! an I/O automaton and composes them into systems whose behaviors are the
//! sequences of external actions. Here a component is a boxed
//! [`Component`]: it declares which actions are its inputs and outputs,
//! applies actions to its encapsulated state, and enumerates the output
//! actions currently enabled. A [`System`] composes components, fires one
//! enabled output at a time (chosen by a pluggable policy, giving seeded
//! pseudo-random interleavings), delivers it to every component sharing the
//! action, and records the resulting behavior.
//!
//! Fidelity notes:
//! * *Input-enabledness*: components must accept any of their input actions
//!   in any state; `apply` must not fail on inputs.
//! * *Internal actions* are folded into component state (none of the paper's
//!   component automata need observable internal steps).
//! * *Strong compatibility* (at most one component outputs a given action)
//!   is asserted at fire time in debug builds.

#![forbid(unsafe_code)]

use nt_model::Action;

/// One component automaton of a composed system.
pub trait Component {
    /// Diagnostic name (e.g. `"serial-scheduler"`, `"M1(X3)"`).
    fn name(&self) -> String;

    /// Is `a` an input action of this component?
    fn is_input(&self, a: &Action) -> bool;

    /// Is `a` an output action of this component?
    fn is_output(&self, a: &Action) -> bool;

    /// Apply an action this component shares (input or currently-enabled
    /// output), updating internal state.
    ///
    /// Called exactly once per fired action that the component shares.
    fn apply(&mut self, a: &Action);

    /// Push every currently enabled output action into `buf`.
    fn enabled_outputs(&self, buf: &mut Vec<Action>);
}

/// Does this component share action `a` (as input or output)?
pub fn shares(c: &dyn Component, a: &Action) -> bool {
    c.is_input(a) || c.is_output(a)
}

/// A composition of components plus the recorded behavior so far.
pub struct System {
    components: Vec<Box<dyn Component>>,
    trace: Vec<Action>,
    scratch: Vec<Action>,
}

impl System {
    /// Compose the given components. The composition starts with an empty
    /// behavior.
    pub fn new(components: Vec<Box<dyn Component>>) -> Self {
        System {
            components,
            trace: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// The behavior recorded so far.
    pub fn trace(&self) -> &[Action] {
        &self.trace
    }

    /// Consume the system, returning the recorded behavior.
    pub fn into_trace(self) -> Vec<Action> {
        self.trace
    }

    /// Immutable access to the components (for invariant inspection).
    pub fn components(&self) -> &[Box<dyn Component>] {
        &self.components
    }

    /// Collect every output action currently enabled in some component.
    pub fn enabled(&mut self) -> &[Action] {
        self.scratch.clear();
        for c in &self.components {
            let before = self.scratch.len();
            c.enabled_outputs(&mut self.scratch);
            debug_assert!(
                self.scratch[before..].iter().all(|a| c.is_output(a)),
                "{} offered an action it does not claim as output",
                c.name()
            );
        }
        &self.scratch
    }

    /// Fire `a`: deliver it to every component that shares it and record it.
    ///
    /// The caller is responsible for firing only enabled outputs (normally
    /// by picking from [`System::enabled`]).
    pub fn fire(&mut self, a: &Action) {
        debug_assert!(
            self.components.iter().filter(|c| c.is_output(a)).count() <= 1,
            "strong compatibility violated for {a}"
        );
        for c in &mut self.components {
            if shares(c.as_ref(), a) {
                c.apply(a);
            }
        }
        self.trace.push(a.clone());
    }

    /// Run until quiescence (no enabled outputs) or until `max_steps` have
    /// fired, choosing each step with `choose` (given the enabled actions,
    /// return the index to fire, or `None` to stop).
    ///
    /// Returns the number of steps fired.
    pub fn run<F>(&mut self, max_steps: usize, mut choose: F) -> usize
    where
        F: FnMut(&[Action]) -> Option<usize>,
    {
        let mut fired = 0;
        while fired < max_steps {
            let enabled = self.enabled();
            if enabled.is_empty() {
                break;
            }
            let Some(k) = choose(enabled) else { break };
            assert!(k < enabled.len(), "choice out of range");
            let a = enabled[k].clone();
            self.fire(&a);
            fired += 1;
        }
        fired
    }

    /// Run until quiescence firing always the first enabled action
    /// (a deterministic schedule, useful in tests).
    pub fn run_first(&mut self, max_steps: usize) -> usize {
        self.run(max_steps, |_| Some(0))
    }

    /// True iff no component has an enabled output.
    pub fn is_quiescent(&mut self) -> bool {
        self.enabled().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_model::{TxId, TxTree};

    /// Toy producer: outputs REQUEST_CREATE for each of its targets once.
    struct Producer {
        targets: Vec<TxId>,
        next: usize,
    }

    impl Component for Producer {
        fn name(&self) -> String {
            "producer".into()
        }
        fn is_input(&self, _a: &Action) -> bool {
            false
        }
        fn is_output(&self, a: &Action) -> bool {
            matches!(a, Action::RequestCreate(t) if self.targets.contains(t))
        }
        fn apply(&mut self, a: &Action) {
            assert_eq!(*a, Action::RequestCreate(self.targets[self.next]));
            self.next += 1;
        }
        fn enabled_outputs(&self, buf: &mut Vec<Action>) {
            if let Some(&t) = self.targets.get(self.next) {
                buf.push(Action::RequestCreate(t));
            }
        }
    }

    /// Toy consumer: echoes each REQUEST_CREATE(T) as CREATE(T).
    struct Consumer {
        pending: Vec<TxId>,
    }

    impl Component for Consumer {
        fn name(&self) -> String {
            "consumer".into()
        }
        fn is_input(&self, a: &Action) -> bool {
            matches!(a, Action::RequestCreate(_))
        }
        fn is_output(&self, a: &Action) -> bool {
            matches!(a, Action::Create(_))
        }
        fn apply(&mut self, a: &Action) {
            match a {
                Action::RequestCreate(t) => self.pending.push(*t),
                Action::Create(t) => {
                    let i = self.pending.iter().position(|u| u == t).unwrap();
                    self.pending.remove(i);
                }
                _ => unreachable!(),
            }
        }
        fn enabled_outputs(&self, buf: &mut Vec<Action>) {
            buf.extend(self.pending.iter().map(|&t| Action::Create(t)));
        }
    }

    fn tree_with(n: usize) -> (TxTree, Vec<TxId>) {
        let mut tree = TxTree::new();
        let ids = (0..n).map(|_| tree.add_inner(TxId::ROOT)).collect();
        (tree, ids)
    }

    fn mk(ids: &[TxId]) -> System {
        System::new(vec![
            Box::new(Producer {
                targets: ids.to_vec(),
                next: 0,
            }),
            Box::new(Consumer {
                pending: Vec::new(),
            }),
        ])
    }

    #[test]
    fn producer_consumer_round_trip() {
        let (_tree, ids) = tree_with(3);
        let mut sys = mk(&ids);
        let steps = sys.run_first(100);
        assert_eq!(steps, 6);
        assert!(sys.is_quiescent());
        let trace = sys.into_trace();
        // First-choice policy: the producer (listed first) drains before
        // the consumer starts echoing.
        assert_eq!(trace[0], Action::RequestCreate(ids[0]));
        assert_eq!(trace[1], Action::RequestCreate(ids[1]));
        assert_eq!(trace[3], Action::Create(ids[0]));
        assert_eq!(trace.len(), 6);
    }

    #[test]
    fn custom_policy_controls_interleaving() {
        let (_tree, ids) = tree_with(2);
        let mut sys = mk(&ids);
        // Always prefer the last enabled action: drains the producer first.
        sys.run(100, |enabled| Some(enabled.len() - 1));
        let trace = sys.trace();
        assert_eq!(trace[0], Action::RequestCreate(ids[0]));
        // Second step: enabled = [RequestCreate(ids[1]), Create(ids[0])];
        // last = Create(ids[0]).
        assert_eq!(trace[1], Action::Create(ids[0]));
    }

    #[test]
    fn run_respects_step_budget_and_stop() {
        let (_tree, ids) = tree_with(3);
        let mut sys = mk(&ids);
        assert_eq!(sys.run_first(2), 2);
        let mut sys2 = mk(&ids);
        assert_eq!(sys2.run(100, |_| None), 0, "policy can stop immediately");
    }
}
