//! Scripted transaction automata.
//!
//! The paper leaves transaction automata as black boxes constrained only by
//! transaction well-formedness (§2.2.1). The simulator instantiates them as
//! `ScriptedTx`: a transaction that, once created, requests a fixed list of
//! children (all at once — the "simultaneous remote procedure calls" of the
//! paper's introduction — or one at a time, which exercises the `precedes`
//! relation), waits for every report, and then requests to commit.
//!
//! A scripted transaction also *listens* for `ABORT` of itself or an
//! ancestor and halts: this models a well-behaved runtime that stops doing
//! work for dead transactions. The theory does not require it (orphan
//! activity is legal and the checkers tolerate it) but it keeps long
//! simulations from accumulating orphan work.
//!
//! ## Retry-with-backoff
//!
//! Each child position is a *slot*. A slot normally holds one attempt (the
//! original child); when the workload pre-materializes replica subtrees
//! (`WorkloadSpec::retry_attempts`) and the executor attaches a
//! [`BackoffPolicy`], an aborted attempt re-arms the slot with the next
//! replica after a capped-exponential backoff measured in scheduler rounds
//! — the paper's fault-containment story made executable: the parent
//! retries a dead subtransaction as a fresh sibling instead of dying.
//! Replicas must be pre-materialized because the naming tree is frozen
//! behind an `Arc` before the run starts; an unused replica is simply never
//! requested and leaves no trace in the behavior.

use nt_automata::Component;
use nt_faults::{BackoffPolicy, RetryOutcome, RetryRecord};
use nt_model::{Action, TxId, TxTree, Value};
use nt_obs::{Event, TraceHandle};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How a scripted transaction schedules its children.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChildOrder {
    /// Request every child immediately (maximal intra-transaction
    /// concurrency).
    Parallel,
    /// Request child *i+1* only after child *i* reported (creates
    /// `precedes(β)` edges between the children).
    Sequential,
}

/// The resolution state of one child slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    /// Current attempt not yet requested, or requested and unreported.
    Pending,
    /// Some attempt committed.
    Committed,
    /// Every available attempt aborted (or retries are disabled).
    Failed,
}

/// One child position: the original child plus optional pre-materialized
/// retry replicas, tried in order.
#[derive(Clone, Debug)]
struct Slot {
    /// `attempts[0]` is the original child; the rest are replicas.
    attempts: Vec<TxId>,
    /// Index of the attempt currently being tried.
    cursor: usize,
    /// Has the current attempt's `REQUEST_CREATE` fired?
    requested: bool,
    /// Resolution state.
    state: SlotState,
    /// Earliest round at which the current attempt may be requested
    /// (backoff timer; 0 = immediately).
    wake: u64,
}

/// A scripted (non-access) transaction automaton.
pub struct ScriptedTx {
    tree: Arc<TxTree>,
    t: TxId,
    /// Original children (slot order). Kept verbatim for inspection even
    /// though `slots` is the operational state.
    children: Vec<TxId>,
    order: ChildOrder,
    slots: Vec<Slot>,
    /// Any attempt transaction (original or replica) → its slot index.
    by_attempt: BTreeMap<TxId, usize>,
    created: bool,
    commit_requested: bool,
    halted: bool,
    /// Whether to stop acting when an ancestor aborts (default true).
    /// Disabling it exercises *orphan activity*, which the paper's theory
    /// tolerates: orphans may keep running, and serial correctness for
    /// `T0` is unaffected.
    pub halt_on_abort: bool,
    /// Retry policy; `None` disables retries even if replicas exist.
    backoff: Option<BackoffPolicy>,
    /// Current scheduler round (the executor ticks this; backoff timers
    /// compare against it).
    now: u64,
    /// Observability sink for retry events (disabled by default).
    trace: TraceHandle,
}

impl ScriptedTx {
    /// A scripted transaction `t` that will run `children` (which must all
    /// be children of `t` in the tree).
    pub fn new(tree: Arc<TxTree>, t: TxId, children: Vec<TxId>, order: ChildOrder) -> Self {
        debug_assert!(children.iter().all(|&c| tree.parent(c) == Some(t)));
        let slots: Vec<Slot> = children
            .iter()
            .map(|&c| Slot {
                attempts: vec![c],
                cursor: 0,
                requested: false,
                state: SlotState::Pending,
                wake: 0,
            })
            .collect();
        let by_attempt = children.iter().enumerate().map(|(i, &c)| (c, i)).collect();
        ScriptedTx {
            tree,
            t,
            children,
            order,
            slots,
            by_attempt,
            created: false,
            commit_requested: false,
            halted: false,
            halt_on_abort: true,
            backoff: None,
            now: 0,
            trace: TraceHandle::disabled(),
        }
    }

    /// The transaction this automaton animates.
    pub fn tx(&self) -> TxId {
        self.t
    }

    /// The original children this script runs, in slot order.
    pub fn script_children(&self) -> &[TxId] {
        &self.children
    }

    /// How this script schedules its children.
    pub fn order(&self) -> ChildOrder {
        self.order
    }

    /// Has this transaction finished its script (committed-requested or
    /// halted)?
    pub fn is_done(&self) -> bool {
        self.commit_requested || self.halted
    }

    /// Attach pre-materialized retry replicas: `chains[i]` lists the
    /// replica transactions for child `i` (all children of `t`, tried in
    /// order after the original aborts). Must be called before the run.
    pub fn set_retry_chains(&mut self, chains: Vec<Vec<TxId>>) {
        assert_eq!(chains.len(), self.slots.len(), "one chain per child slot");
        // All-empty chains (retry_attempts == 0) attach nothing: skip the
        // whole pass rather than touching every slot's attempt vector.
        if chains.iter().all(Vec::is_empty) {
            return;
        }
        for (i, chain) in chains.into_iter().enumerate() {
            if chain.is_empty() {
                continue;
            }
            debug_assert!(chain.iter().all(|&r| self.tree.parent(r) == Some(self.t)));
            for &r in &chain {
                self.by_attempt.insert(r, i);
            }
            self.slots[i].attempts.extend(chain);
        }
    }

    /// Enable retries with the given backoff policy (the executor calls
    /// this when `SimConfig::retry` is set).
    pub fn set_backoff(&mut self, policy: BackoffPolicy) {
        self.backoff = Some(policy);
    }

    /// Attach an observability sink: retry scheduling / exhaustion events
    /// are journaled through it.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Advance the logical clock (the executor calls this once per round,
    /// before components fire).
    pub fn tick_round(&mut self, round: u64) {
        self.now = round;
    }

    /// The earliest pending backoff wake-up, if any slot is re-armed and
    /// waiting. The executor consults this so a round in which only timers
    /// are pending is not mistaken for quiescence.
    pub fn next_wake(&self) -> Option<u64> {
        if self.is_done() || !self.created {
            return None;
        }
        self.slots
            .iter()
            .filter(|s| s.state == SlotState::Pending && !s.requested && s.wake > 0)
            .map(|s| s.wake)
            .min()
    }

    /// The starvation/fairness ledger: one record per slot that carries
    /// retry replicas. Empty when the workload pre-materialized none, and
    /// empty for clients that never ran (`CREATE` never arrived — unused
    /// replicas) or were killed mid-flight (an ancestor aborted and the
    /// script halted): their pending slots are the *parent's* problem —
    /// its slot for this transaction carries the retry — not starvation.
    pub fn ledger_records(&self) -> Vec<RetryRecord> {
        if !self.created || self.halted {
            return Vec::new();
        }
        self.slots
            .iter()
            .filter(|s| s.attempts.len() > 1)
            .map(|s| RetryRecord {
                original: s.attempts[0].0,
                retries: s.cursor as u32,
                outcome: match s.state {
                    SlotState::Committed => RetryOutcome::Committed,
                    SlotState::Failed => RetryOutcome::Exhausted,
                    SlotState::Pending => RetryOutcome::Unresolved,
                },
            })
            .collect()
    }

    /// Is every slot resolved (committed, or out of attempts)?
    fn all_resolved(&self) -> bool {
        self.slots.iter().all(|s| s.state != SlotState::Pending)
    }

    /// Handle a report for attempt `c` of some slot.
    fn on_report(&mut self, c: TxId, committed: bool) {
        let Some(&i) = self.by_attempt.get(&c) else {
            return;
        };
        let slot = &mut self.slots[i];
        // Reports always concern the slot's current attempt: earlier
        // attempts each reported exactly once before the cursor advanced,
        // and later attempts have not been requested yet.
        if slot.state != SlotState::Pending || slot.attempts[slot.cursor] != c {
            return;
        }
        if committed {
            slot.state = SlotState::Committed;
            return;
        }
        let budget_left = slot.cursor + 1 < slot.attempts.len();
        match &self.backoff {
            Some(policy) if budget_left => {
                slot.cursor += 1;
                slot.requested = false;
                let attempt = slot.cursor as u64;
                slot.wake = self.now + policy.delay(slot.cursor as u32);
                if self.trace.enabled() {
                    self.trace.record(Event::RetryScheduled {
                        orig: slot.attempts[0].0,
                        replica: slot.attempts[slot.cursor].0,
                        attempt,
                        wake_round: slot.wake,
                    });
                }
            }
            backoff => {
                slot.state = SlotState::Failed;
                if backoff.is_some() && slot.attempts.len() > 1 && self.trace.enabled() {
                    self.trace.record(Event::RetryExhausted {
                        orig: slot.attempts[0].0,
                        attempts: slot.cursor as u64,
                    });
                }
            }
        }
    }
}

impl Component for ScriptedTx {
    fn name(&self) -> String {
        format!("tx({})", self.t)
    }

    fn is_input(&self, a: &Action) -> bool {
        match a {
            Action::Create(t) => *t == self.t,
            Action::ReportCommit(c, _) | Action::ReportAbort(c) => {
                self.tree.parent(*c) == Some(self.t)
            }
            // Listen for the fate of self and ancestors (halt on abort).
            Action::Abort(u) => self.tree.is_ancestor(*u, self.t),
            _ => false,
        }
    }

    fn is_output(&self, a: &Action) -> bool {
        match a {
            Action::RequestCreate(c) => self.tree.parent(*c) == Some(self.t),
            Action::RequestCommit(t, _) => *t == self.t && !self.tree.is_access(self.t),
            _ => false,
        }
    }

    fn apply(&mut self, a: &Action) {
        match a {
            Action::Create(t) if *t == self.t => self.created = true,
            Action::ReportCommit(c, _) => self.on_report(*c, true),
            Action::ReportAbort(c) => self.on_report(*c, false),
            Action::Abort(_) if self.halt_on_abort => {
                self.halted = true;
            }
            Action::RequestCreate(c) => {
                if let Some(&i) = self.by_attempt.get(c) {
                    let slot = &mut self.slots[i];
                    debug_assert_eq!(slot.attempts[slot.cursor], *c, "only the cursor is offered");
                    slot.requested = true;
                }
            }
            Action::RequestCommit(_, _) => self.commit_requested = true,
            _ => {}
        }
    }

    fn enabled_outputs(&self, buf: &mut Vec<Action>) {
        if !self.created || self.halted || self.commit_requested {
            return;
        }
        // The next slot eligible for a REQUEST_CREATE, preserving the
        // pre-retry semantics exactly when no replicas/backoff exist:
        // slots are requested in order, one per fire, and Sequential
        // additionally waits for every earlier slot to resolve.
        let in_flight = self
            .slots
            .iter()
            .any(|s| s.state == SlotState::Pending && s.requested);
        let next = self
            .slots
            .iter()
            .position(|s| s.state == SlotState::Pending && !s.requested && s.wake <= self.now);
        if let Some(i) = next {
            let ok = match self.order {
                ChildOrder::Parallel => true,
                // An earlier slot that is sleeping on a backoff timer (or
                // still in flight) holds all later slots back.
                ChildOrder::Sequential => {
                    !in_flight
                        && self.slots[..i]
                            .iter()
                            .all(|s| s.state != SlotState::Pending)
                }
            };
            if ok {
                let s = &self.slots[i];
                buf.push(Action::RequestCreate(s.attempts[s.cursor]));
            }
        }
        if self.t != TxId::ROOT && self.all_resolved() {
            buf.push(Action::RequestCommit(self.t, Value::Ok));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_model::Op;

    fn setup(order: ChildOrder) -> (Arc<TxTree>, ScriptedTx, TxId, TxId, TxId) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let c1 = tree.add_access(a, x, Op::Read);
        let c2 = tree.add_access(a, x, Op::Write(1));
        let tree = Arc::new(tree);
        let tx = ScriptedTx::new(Arc::clone(&tree), a, vec![c1, c2], order);
        (tree, tx, a, c1, c2)
    }

    fn enabled(t: &ScriptedTx) -> Vec<Action> {
        let mut buf = Vec::new();
        t.enabled_outputs(&mut buf);
        buf
    }

    #[test]
    fn lifecycle_parallel() {
        let (_tree, mut tx, a, c1, c2) = setup(ChildOrder::Parallel);
        assert!(enabled(&tx).is_empty(), "nothing before CREATE");
        tx.apply(&Action::Create(a));
        assert_eq!(enabled(&tx), vec![Action::RequestCreate(c1)]);
        tx.apply(&Action::RequestCreate(c1));
        // Parallel: second request available before any report.
        assert_eq!(enabled(&tx), vec![Action::RequestCreate(c2)]);
        tx.apply(&Action::RequestCreate(c2));
        assert!(enabled(&tx).is_empty(), "waiting for reports");
        tx.apply(&Action::ReportCommit(c1, Value::Int(0)));
        tx.apply(&Action::ReportAbort(c2));
        assert_eq!(enabled(&tx), vec![Action::RequestCommit(a, Value::Ok)]);
        tx.apply(&Action::RequestCommit(a, Value::Ok));
        assert!(tx.is_done());
        assert!(enabled(&tx).is_empty());
    }

    #[test]
    fn lifecycle_sequential_waits_for_reports() {
        let (_tree, mut tx, a, c1, c2) = setup(ChildOrder::Sequential);
        tx.apply(&Action::Create(a));
        tx.apply(&Action::RequestCreate(c1));
        assert!(
            enabled(&tx).is_empty(),
            "sequential: c2 must wait for c1's report"
        );
        tx.apply(&Action::ReportCommit(c1, Value::Int(0)));
        assert_eq!(enabled(&tx), vec![Action::RequestCreate(c2)]);
    }

    #[test]
    fn halts_on_ancestor_abort() {
        let (_tree, mut tx, a, _c1, _c2) = setup(ChildOrder::Parallel);
        tx.apply(&Action::Create(a));
        assert!(!enabled(&tx).is_empty());
        assert!(tx.is_input(&Action::Abort(a)));
        assert!(tx.is_input(&Action::Abort(TxId::ROOT)));
        tx.apply(&Action::Abort(a));
        assert!(tx.is_done());
        assert!(enabled(&tx).is_empty());
    }

    #[test]
    fn root_never_requests_commit() {
        let mut tree = TxTree::new();
        let a = tree.add_inner(TxId::ROOT);
        let tree = Arc::new(tree);
        let mut root =
            ScriptedTx::new(Arc::clone(&tree), TxId::ROOT, vec![a], ChildOrder::Parallel);
        root.apply(&Action::Create(TxId::ROOT));
        root.apply(&Action::RequestCreate(a));
        root.apply(&Action::ReportCommit(a, Value::Ok));
        assert!(
            enabled(&root).is_empty(),
            "T0 models the environment and never finishes"
        );
    }

    /// Tree with one inner child that has one retry replica sibling.
    fn retry_setup() -> (Arc<TxTree>, ScriptedTx, TxId, TxId, TxId) {
        let mut tree = TxTree::new();
        let a = tree.add_inner(TxId::ROOT);
        let c = tree.add_inner(a);
        let c_retry = tree.add_inner(a);
        let tree = Arc::new(tree);
        let mut tx = ScriptedTx::new(Arc::clone(&tree), a, vec![c], ChildOrder::Parallel);
        tx.set_retry_chains(vec![vec![c_retry]]);
        (tree, tx, a, c, c_retry)
    }

    #[test]
    fn abort_rearms_slot_with_replica_after_backoff() {
        let (_tree, mut tx, a, c, c_retry) = retry_setup();
        tx.set_backoff(BackoffPolicy {
            base_rounds: 3,
            cap_rounds: 8,
        });
        tx.tick_round(1);
        tx.apply(&Action::Create(a));
        assert_eq!(enabled(&tx), vec![Action::RequestCreate(c)]);
        tx.apply(&Action::RequestCreate(c));
        tx.apply(&Action::ReportAbort(c));
        // Slot re-armed for round 1 + 3: silent until the clock reaches it.
        assert_eq!(tx.next_wake(), Some(4));
        assert!(enabled(&tx).is_empty(), "backoff timer holds the retry");
        tx.tick_round(3);
        assert!(enabled(&tx).is_empty());
        tx.tick_round(4);
        assert_eq!(enabled(&tx), vec![Action::RequestCreate(c_retry)]);
        tx.apply(&Action::RequestCreate(c_retry));
        assert_eq!(tx.next_wake(), None);
        tx.apply(&Action::ReportCommit(c_retry, Value::Ok));
        assert_eq!(enabled(&tx), vec![Action::RequestCommit(a, Value::Ok)]);
        let ledger = tx.ledger_records();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger[0].retries, 1);
        assert_eq!(ledger[0].outcome, RetryOutcome::Committed);
    }

    #[test]
    fn exhausted_budget_resolves_the_slot_failed() {
        let (_tree, mut tx, a, c, c_retry) = retry_setup();
        tx.set_backoff(BackoffPolicy::default());
        tx.tick_round(1);
        tx.apply(&Action::Create(a));
        tx.apply(&Action::RequestCreate(c));
        tx.apply(&Action::ReportAbort(c));
        tx.tick_round(100);
        tx.apply(&Action::RequestCreate(c_retry));
        tx.apply(&Action::ReportAbort(c_retry));
        // Out of replicas: the slot fails, the parent still commits
        // (matching the no-retry semantics for aborted children).
        assert_eq!(enabled(&tx), vec![Action::RequestCommit(a, Value::Ok)]);
        let ledger = tx.ledger_records();
        assert_eq!(ledger[0].outcome, RetryOutcome::Exhausted);
        assert_eq!(ledger[0].retries, 1);
    }

    #[test]
    fn empty_retry_chains_attach_nothing() {
        let (_tree, mut tx, a, c1, c2) = setup(ChildOrder::Parallel);
        tx.set_retry_chains(vec![vec![], vec![]]);
        tx.set_backoff(BackoffPolicy::default());
        tx.apply(&Action::Create(a));
        tx.apply(&Action::RequestCreate(c1));
        tx.apply(&Action::RequestCreate(c2));
        tx.apply(&Action::ReportAbort(c1));
        tx.apply(&Action::ReportAbort(c2));
        // No replicas were attached, so the ledger stays empty and the
        // parent proceeds exactly as without retry machinery.
        assert!(tx.ledger_records().is_empty());
        assert_eq!(enabled(&tx), vec![Action::RequestCommit(a, Value::Ok)]);
    }

    #[test]
    fn without_backoff_replicas_are_inert() {
        let (_tree, mut tx, a, c, _c_retry) = retry_setup();
        // Chains attached but no policy: original semantics.
        tx.apply(&Action::Create(a));
        tx.apply(&Action::RequestCreate(c));
        tx.apply(&Action::ReportAbort(c));
        assert_eq!(enabled(&tx), vec![Action::RequestCommit(a, Value::Ok)]);
        assert_eq!(tx.next_wake(), None);
    }

    #[test]
    fn sequential_retry_blocks_later_slots_until_resolution() {
        let mut tree = TxTree::new();
        let a = tree.add_inner(TxId::ROOT);
        let c1 = tree.add_inner(a);
        let c1r = tree.add_inner(a);
        let c2 = tree.add_inner(a);
        let tree = Arc::new(tree);
        let mut tx = ScriptedTx::new(Arc::clone(&tree), a, vec![c1, c2], ChildOrder::Sequential);
        tx.set_retry_chains(vec![vec![c1r], vec![]]);
        tx.set_backoff(BackoffPolicy {
            base_rounds: 2,
            cap_rounds: 4,
        });
        tx.tick_round(1);
        tx.apply(&Action::Create(a));
        tx.apply(&Action::RequestCreate(c1));
        tx.apply(&Action::ReportAbort(c1));
        // c1's retry is pending: sequential order holds c2 back.
        tx.tick_round(2);
        assert!(enabled(&tx).is_empty());
        tx.tick_round(3);
        assert_eq!(enabled(&tx), vec![Action::RequestCreate(c1r)]);
        tx.apply(&Action::RequestCreate(c1r));
        tx.apply(&Action::ReportCommit(c1r, Value::Ok));
        assert_eq!(enabled(&tx), vec![Action::RequestCreate(c2)]);
    }
}
