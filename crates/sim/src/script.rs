//! Scripted transaction automata.
//!
//! The paper leaves transaction automata as black boxes constrained only by
//! transaction well-formedness (§2.2.1). The simulator instantiates them as
//! `ScriptedTx`: a transaction that, once created, requests a fixed list of
//! children (all at once — the "simultaneous remote procedure calls" of the
//! paper's introduction — or one at a time, which exercises the `precedes`
//! relation), waits for every report, and then requests to commit.
//!
//! A scripted transaction also *listens* for `ABORT` of itself or an
//! ancestor and halts: this models a well-behaved runtime that stops doing
//! work for dead transactions. The theory does not require it (orphan
//! activity is legal and the checkers tolerate it) but it keeps long
//! simulations from accumulating orphan work.

use nt_automata::Component;
use nt_model::{Action, TxId, TxTree, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// How a scripted transaction schedules its children.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChildOrder {
    /// Request every child immediately (maximal intra-transaction
    /// concurrency).
    Parallel,
    /// Request child *i+1* only after child *i* reported (creates
    /// `precedes(β)` edges between the children).
    Sequential,
}

/// A scripted (non-access) transaction automaton.
pub struct ScriptedTx {
    tree: Arc<TxTree>,
    t: TxId,
    children: Vec<TxId>,
    order: ChildOrder,
    created: bool,
    requested: usize,
    reported: BTreeSet<TxId>,
    commit_requested: bool,
    halted: bool,
    /// Whether to stop acting when an ancestor aborts (default true).
    /// Disabling it exercises *orphan activity*, which the paper's theory
    /// tolerates: orphans may keep running, and serial correctness for
    /// `T0` is unaffected.
    pub halt_on_abort: bool,
}

impl ScriptedTx {
    /// A scripted transaction `t` that will run `children` (which must all
    /// be children of `t` in the tree).
    pub fn new(tree: Arc<TxTree>, t: TxId, children: Vec<TxId>, order: ChildOrder) -> Self {
        debug_assert!(children.iter().all(|&c| tree.parent(c) == Some(t)));
        ScriptedTx {
            tree,
            t,
            children,
            order,
            created: false,
            requested: 0,
            reported: BTreeSet::new(),
            commit_requested: false,
            halted: false,
            halt_on_abort: true,
        }
    }

    /// The transaction this automaton animates.
    pub fn tx(&self) -> TxId {
        self.t
    }

    /// The children this script will request, in request order.
    pub fn script_children(&self) -> &[TxId] {
        &self.children
    }

    /// How this script schedules its children.
    pub fn order(&self) -> ChildOrder {
        self.order
    }

    /// Has this transaction finished its script (committed-requested or
    /// halted)?
    pub fn is_done(&self) -> bool {
        self.commit_requested || self.halted
    }
}

impl Component for ScriptedTx {
    fn name(&self) -> String {
        format!("tx({})", self.t)
    }

    fn is_input(&self, a: &Action) -> bool {
        match a {
            Action::Create(t) => *t == self.t,
            Action::ReportCommit(c, _) | Action::ReportAbort(c) => {
                self.tree.parent(*c) == Some(self.t)
            }
            // Listen for the fate of self and ancestors (halt on abort).
            Action::Abort(u) => self.tree.is_ancestor(*u, self.t),
            _ => false,
        }
    }

    fn is_output(&self, a: &Action) -> bool {
        match a {
            Action::RequestCreate(c) => self.tree.parent(*c) == Some(self.t),
            Action::RequestCommit(t, _) => *t == self.t && !self.tree.is_access(self.t),
            _ => false,
        }
    }

    fn apply(&mut self, a: &Action) {
        match a {
            Action::Create(t) if *t == self.t => self.created = true,
            Action::ReportCommit(c, _) | Action::ReportAbort(c) => {
                self.reported.insert(*c);
            }
            Action::Abort(_) if self.halt_on_abort => {
                self.halted = true;
            }
            Action::RequestCreate(_) => self.requested += 1,
            Action::RequestCommit(_, _) => self.commit_requested = true,
            _ => {}
        }
    }

    fn enabled_outputs(&self, buf: &mut Vec<Action>) {
        if !self.created || self.halted || self.commit_requested {
            return;
        }
        let can_request_next = match self.order {
            ChildOrder::Parallel => self.requested < self.children.len(),
            ChildOrder::Sequential => {
                self.requested < self.children.len() && self.reported.len() == self.requested
            }
        };
        if can_request_next {
            buf.push(Action::RequestCreate(self.children[self.requested]));
        }
        if self.t != TxId::ROOT
            && self.requested == self.children.len()
            && self.reported.len() == self.children.len()
        {
            buf.push(Action::RequestCommit(self.t, Value::Ok));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_model::Op;

    fn setup(order: ChildOrder) -> (Arc<TxTree>, ScriptedTx, TxId, TxId, TxId) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let c1 = tree.add_access(a, x, Op::Read);
        let c2 = tree.add_access(a, x, Op::Write(1));
        let tree = Arc::new(tree);
        let tx = ScriptedTx::new(Arc::clone(&tree), a, vec![c1, c2], order);
        (tree, tx, a, c1, c2)
    }

    fn enabled(t: &ScriptedTx) -> Vec<Action> {
        let mut buf = Vec::new();
        t.enabled_outputs(&mut buf);
        buf
    }

    #[test]
    fn lifecycle_parallel() {
        let (_tree, mut tx, a, c1, c2) = setup(ChildOrder::Parallel);
        assert!(enabled(&tx).is_empty(), "nothing before CREATE");
        tx.apply(&Action::Create(a));
        assert_eq!(enabled(&tx), vec![Action::RequestCreate(c1)]);
        tx.apply(&Action::RequestCreate(c1));
        // Parallel: second request available before any report.
        assert_eq!(enabled(&tx), vec![Action::RequestCreate(c2)]);
        tx.apply(&Action::RequestCreate(c2));
        assert!(enabled(&tx).is_empty(), "waiting for reports");
        tx.apply(&Action::ReportCommit(c1, Value::Int(0)));
        tx.apply(&Action::ReportAbort(c2));
        assert_eq!(enabled(&tx), vec![Action::RequestCommit(a, Value::Ok)]);
        tx.apply(&Action::RequestCommit(a, Value::Ok));
        assert!(tx.is_done());
        assert!(enabled(&tx).is_empty());
    }

    #[test]
    fn lifecycle_sequential_waits_for_reports() {
        let (_tree, mut tx, a, c1, c2) = setup(ChildOrder::Sequential);
        tx.apply(&Action::Create(a));
        tx.apply(&Action::RequestCreate(c1));
        assert!(
            enabled(&tx).is_empty(),
            "sequential: c2 must wait for c1's report"
        );
        tx.apply(&Action::ReportCommit(c1, Value::Int(0)));
        assert_eq!(enabled(&tx), vec![Action::RequestCreate(c2)]);
    }

    #[test]
    fn halts_on_ancestor_abort() {
        let (_tree, mut tx, a, _c1, _c2) = setup(ChildOrder::Parallel);
        tx.apply(&Action::Create(a));
        assert!(!enabled(&tx).is_empty());
        assert!(tx.is_input(&Action::Abort(a)));
        assert!(tx.is_input(&Action::Abort(TxId::ROOT)));
        tx.apply(&Action::Abort(a));
        assert!(tx.is_done());
        assert!(enabled(&tx).is_empty());
    }

    #[test]
    fn root_never_requests_commit() {
        let mut tree = TxTree::new();
        let a = tree.add_inner(TxId::ROOT);
        let tree = Arc::new(tree);
        let mut root =
            ScriptedTx::new(Arc::clone(&tree), TxId::ROOT, vec![a], ChildOrder::Parallel);
        root.apply(&Action::Create(TxId::ROOT));
        root.apply(&Action::RequestCreate(a));
        root.apply(&Action::ReportCommit(a, Value::Ok));
        assert!(
            enabled(&root).is_empty(),
            "T0 models the environment and never finishes"
        );
    }
}
