//! Workload specification and generation.
//!
//! A [`WorkloadSpec`] describes a family of nested-transaction workloads:
//! how many top-level transactions, how deep and bushy the nesting is, how
//! many objects of which type, the operation mix, and access skew. From a
//! seed it deterministically generates the naming tree and the per-
//! transaction scripts the simulator animates.

use crate::script::{ChildOrder, ScriptedTx};
use nt_model::rw::RwInitials;
use nt_model::{ObjId, Op, TxId, TxTree};
use nt_serial::{ObjectTypes, RwRegister, SerialType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which data type the workload's objects have, with its operation mix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OpMix {
    /// Read/write registers; reads drawn with the given probability.
    ReadWrite {
        /// Probability an access is a read.
        read_ratio: f64,
    },
    /// Counters; `GetCount` drawn with the given probability, otherwise
    /// `Add` of a small positive delta.
    Counter {
        /// Probability an access is a `GetCount`.
        read_ratio: f64,
    },
    /// Bank accounts (opening balance 1000): `Balance` with probability
    /// `read_ratio`, the rest split between deposits and withdrawals.
    Account {
        /// Probability an access is a `Balance`.
        read_ratio: f64,
    },
    /// Integer sets over a small element domain.
    IntSet,
    /// FIFO queues.
    Queue,
    /// Key-value maps over a small key domain.
    KvMap,
}

impl OpMix {
    /// The serial type objects of this mix have.
    pub fn serial_type(&self) -> Arc<dyn SerialType> {
        match self {
            OpMix::ReadWrite { .. } => Arc::new(RwRegister::new(0)),
            OpMix::Counter { .. } => Arc::new(nt_datatypes::Counter::new(0)),
            OpMix::Account { .. } => Arc::new(nt_datatypes::Account::new(1000)),
            OpMix::IntSet => Arc::new(nt_datatypes::IntSetType::new()),
            OpMix::Queue => Arc::new(nt_datatypes::QueueType::new()),
            OpMix::KvMap => Arc::new(nt_datatypes::KvMapType::new()),
        }
    }

    /// Is this a read/write-register mix (Moss locking applies)?
    pub fn is_read_write(&self) -> bool {
        matches!(self, OpMix::ReadWrite { .. })
    }

    fn draw(&self, rng: &mut StdRng) -> Op {
        match self {
            OpMix::ReadWrite { read_ratio } => {
                if rng.gen_bool(*read_ratio) {
                    Op::Read
                } else {
                    Op::Write(rng.gen_range(0..1000))
                }
            }
            OpMix::Counter { read_ratio } => {
                if rng.gen_bool(*read_ratio) {
                    Op::GetCount
                } else {
                    Op::Add(rng.gen_range(1..10))
                }
            }
            OpMix::Account { read_ratio } => {
                if rng.gen_bool(*read_ratio) {
                    Op::Balance
                } else if rng.gen_bool(0.5) {
                    Op::Deposit(rng.gen_range(1..50))
                } else {
                    Op::Withdraw(rng.gen_range(1..50))
                }
            }
            OpMix::IntSet => match rng.gen_range(0..4) {
                0 => Op::Insert(rng.gen_range(0..8)),
                1 => Op::Remove(rng.gen_range(0..8)),
                2 => Op::Contains(rng.gen_range(0..8)),
                _ => Op::Size,
            },
            OpMix::Queue => {
                if rng.gen_bool(0.6) {
                    Op::Enqueue(rng.gen_range(0..100))
                } else {
                    Op::Dequeue
                }
            }
            OpMix::KvMap => match rng.gen_range(0..4) {
                0 | 1 => Op::Put(rng.gen_range(0..6), rng.gen_range(0..100)),
                2 => Op::Get(rng.gen_range(0..6)),
                _ => Op::Delete(rng.gen_range(0..6)),
            },
        }
    }
}

/// A family of workloads, deterministic given `seed`.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Number of top-level transactions (children of `T0`).
    pub top_level: usize,
    /// Number of objects.
    pub objects: usize,
    /// Maximum nesting depth *below* top-level transactions
    /// (0 = flat: top-level transactions contain accesses only).
    pub max_depth: u32,
    /// Children per non-access transaction: uniform in
    /// `min_children..=max_children`.
    pub min_children: usize,
    /// See `min_children`.
    pub max_children: usize,
    /// Probability a child of a non-maximal-depth transaction is a
    /// subtransaction rather than an access.
    pub subtx_prob: f64,
    /// Probability a transaction runs its children sequentially
    /// (producing `precedes` edges) rather than in parallel.
    pub sequential_prob: f64,
    /// Operation mix / object type.
    pub mix: OpMix,
    /// Access skew: probability an access goes to object 0 (the hotspot);
    /// otherwise uniform over all objects.
    pub hotspot: f64,
    /// Partition the keyspace: when `> 0`, top-level transaction `i` draws
    /// its objects only from partition `i % object_partitions` (objects
    /// `k` with `k % P == p`), so transactions in different partitions
    /// never conflict. Overrides `hotspot`; clamped to `objects`. 0 (the
    /// default) keeps generation byte-identical to the unpartitioned
    /// generator. Used by the engine benchmark's scaling workloads.
    pub object_partitions: usize,
    /// RNG seed.
    pub seed: u64,
    /// If true, transactions keep acting after an ancestor aborts
    /// (orphan activity — legal per the paper, default off for liveness).
    pub orphan_activity: bool,
    /// Retry budget per child slot: how many replica attempts to
    /// pre-materialize for each child of each scripted transaction. The
    /// naming tree is frozen behind an `Arc` before the run, so retries
    /// must exist in the tree up front; an unused replica is never
    /// requested and leaves no trace in the behavior. 0 (the default)
    /// generates byte-identical trees to the pre-retry simulator.
    pub retry_attempts: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            top_level: 8,
            objects: 4,
            max_depth: 2,
            min_children: 1,
            max_children: 3,
            subtx_prob: 0.4,
            sequential_prob: 0.3,
            mix: OpMix::ReadWrite { read_ratio: 0.5 },
            hotspot: 0.0,
            object_partitions: 0,
            seed: 0,
            orphan_activity: false,
            retry_attempts: 0,
        }
    }
}

/// A generated workload: the naming tree, the client automata scripts, and
/// the serial types (for checking).
pub struct Workload {
    /// The naming tree (shared by every component).
    pub tree: Arc<TxTree>,
    /// One scripted automaton per non-access transaction, `T0` first.
    pub clients: Vec<ScriptedTx>,
    /// The serial types of the objects.
    pub types: ObjectTypes,
    /// Initial values for read/write checking paths.
    pub initials: RwInitials,
    /// The top-level transaction names.
    pub top: Vec<TxId>,
    /// Retry chains per slot parent: `retry_chains[t][i]` lists the
    /// pre-materialized replica transactions for child `i` of `t` (empty
    /// map when `retry_attempts == 0`).
    pub retry_chains: BTreeMap<TxId, Vec<Vec<TxId>>>,
}

/// The *data* of one scripted transaction — its child slots and schedule —
/// decoupled from the [`ScriptedTx`] automaton. The threaded engine
/// (`nt-engine`) executes workloads from these plans directly, since it
/// drives transactions with a call stack rather than an automaton scheduler.
#[derive(Clone, Debug)]
pub struct ScriptPlan {
    /// Original children, in slot order.
    pub children: Vec<TxId>,
    /// How the children are scheduled.
    pub order: ChildOrder,
}

impl Workload {
    /// Extract the per-transaction [`ScriptPlan`]s (including `T0`'s and
    /// every retry replica's). Together with `tree`, `retry_chains`, and
    /// `initials` this is everything an alternative executor needs.
    pub fn script_plans(&self) -> BTreeMap<TxId, ScriptPlan> {
        self.clients
            .iter()
            .map(|c| {
                (
                    c.tx(),
                    ScriptPlan {
                        children: c.script_children().to_vec(),
                        order: c.order(),
                    },
                )
            })
            .collect()
    }
}

impl WorkloadSpec {
    /// Generate the workload deterministically from the seed.
    pub fn generate(&self) -> Workload {
        assert!(self.top_level >= 1 && self.objects >= 1);
        assert!(self.min_children >= 1 && self.min_children <= self.max_children);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut tree = TxTree::new();
        tree.add_objects(self.objects);
        // (tx, children, order) scripts, built during tree construction.
        let mut scripts: Vec<(TxId, Vec<TxId>, ChildOrder)> = Vec::new();
        let mut top = Vec::with_capacity(self.top_level);
        let partitions = self.object_partitions.min(self.objects);
        for i in 0..self.top_level {
            let partition = (partitions > 0).then(|| i % partitions);
            let t = self.gen_tx(&mut tree, TxId::ROOT, 0, partition, &mut rng, &mut scripts);
            top.push(t);
        }
        // Pre-materialize retry replicas: for every child slot of every
        // scripted transaction (including T0's top-level slots), append
        // `retry_attempts` verbatim copies of the child subtree as fresh
        // siblings. No RNG is consumed, so retry_attempts == 0 keeps the
        // tree byte-identical to the pre-retry generator.
        let mut retry_chains: BTreeMap<TxId, Vec<Vec<TxId>>> = BTreeMap::new();
        if self.retry_attempts > 0 {
            let script_map: BTreeMap<TxId, (Vec<TxId>, ChildOrder)> = scripts
                .iter()
                .map(|(t, cs, o)| (*t, (cs.clone(), *o)))
                .collect();
            let mut replica_scripts = Vec::new();
            let mut slot_parents: Vec<(TxId, Vec<TxId>)> = vec![(TxId::ROOT, top.clone())];
            slot_parents.extend(scripts.iter().map(|(t, cs, _)| (*t, cs.clone())));
            for (p, children) in slot_parents {
                let chains: Vec<Vec<TxId>> = children
                    .iter()
                    .map(|&c| {
                        (0..self.retry_attempts)
                            .map(|_| {
                                copy_subtree(&mut tree, c, p, &script_map, &mut replica_scripts)
                            })
                            .collect()
                    })
                    .collect();
                retry_chains.insert(p, chains);
            }
            scripts.extend(replica_scripts);
        }
        let tree = Arc::new(tree);
        let mut clients = Vec::with_capacity(scripts.len() + 1);
        clients.push(ScriptedTx::new(
            Arc::clone(&tree),
            TxId::ROOT,
            top.clone(),
            ChildOrder::Parallel,
        ));
        for (t, children, order) in scripts {
            let mut c = ScriptedTx::new(Arc::clone(&tree), t, children, order);
            c.halt_on_abort = !self.orphan_activity;
            clients.push(c);
        }
        for c in clients.iter_mut() {
            if let Some(chains) = retry_chains.get(&c.tx()) {
                c.set_retry_chains(chains.clone());
            }
        }
        let types = ObjectTypes::uniform(self.objects, self.mix.serial_type());
        Workload {
            tree,
            clients,
            types,
            initials: RwInitials::uniform(0),
            top,
            retry_chains,
        }
    }

    fn pick_object(&self, rng: &mut StdRng, partition: Option<usize>) -> ObjId {
        if let Some(p) = partition {
            let stride = self.object_partitions.min(self.objects);
            // Objects k with k % stride == p; there are ceil((objects-p)/stride).
            let count = (self.objects - p).div_ceil(stride);
            return ObjId((p + stride * rng.gen_range(0..count)) as u32);
        }
        if self.hotspot > 0.0 && rng.gen_bool(self.hotspot) {
            ObjId(0)
        } else {
            ObjId(rng.gen_range(0..self.objects as u32))
        }
    }

    fn gen_tx(
        &self,
        tree: &mut TxTree,
        parent: TxId,
        depth: u32,
        partition: Option<usize>,
        rng: &mut StdRng,
        scripts: &mut Vec<(TxId, Vec<TxId>, ChildOrder)>,
    ) -> TxId {
        let t = tree.add_inner(parent);
        let n = rng.gen_range(self.min_children..=self.max_children);
        let mut children = Vec::with_capacity(n);
        for _ in 0..n {
            if depth < self.max_depth && rng.gen_bool(self.subtx_prob) {
                children.push(self.gen_tx(tree, t, depth + 1, partition, rng, scripts));
            } else {
                let x = self.pick_object(rng, partition);
                let op = self.mix.draw(rng);
                children.push(tree.add_access(t, x, op));
            }
        }
        let order = if rng.gen_bool(self.sequential_prob) {
            ChildOrder::Sequential
        } else {
            ChildOrder::Parallel
        };
        scripts.push((t, children, order));
        t
    }
}

/// Deep-copy the subtree rooted at `src` as a fresh child of `parent`,
/// appending a script (same child order as the original) for every copied
/// inner transaction. Returns the copy's root.
fn copy_subtree(
    tree: &mut TxTree,
    src: TxId,
    parent: TxId,
    script_map: &BTreeMap<TxId, (Vec<TxId>, ChildOrder)>,
    out_scripts: &mut Vec<(TxId, Vec<TxId>, ChildOrder)>,
) -> TxId {
    if tree.is_access(src) {
        let x = tree.object_of(src).expect("access names an object");
        let op = tree.op_of(src).expect("access carries an op").clone();
        tree.add_access(parent, x, op)
    } else {
        let t = tree.add_inner(parent);
        let (children, order) = script_map.get(&src).expect("inner tx has a script").clone();
        let copied: Vec<TxId> = children
            .iter()
            .map(|&c| copy_subtree(tree, c, t, script_map, out_scripts))
            .collect();
        out_scripts.push((t, copied, order));
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::default();
        let w1 = spec.generate();
        let w2 = spec.generate();
        assert_eq!(w1.tree.len(), w2.tree.len());
        assert_eq!(w1.top, w2.top);
        assert_eq!(w1.clients.len(), w2.clients.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec::default().generate();
        let b = WorkloadSpec {
            seed: 1,
            ..WorkloadSpec::default()
        }
        .generate();
        // Trees almost surely differ in size for different seeds.
        assert!(
            a.tree.len() != b.tree.len() || a.tree.accesses().count() != b.tree.accesses().count()
        );
    }

    #[test]
    fn respects_shape_bounds() {
        let spec = WorkloadSpec {
            top_level: 5,
            max_depth: 1,
            min_children: 2,
            max_children: 3,
            ..WorkloadSpec::default()
        };
        let w = spec.generate();
        assert_eq!(w.top.len(), 5);
        for t in w.tree.all_tx() {
            if t == TxId::ROOT {
                continue;
            }
            assert!(w.tree.depth(t) <= 3, "top(1) + depth(1) + access(1)");
            if !w.tree.is_access(t) {
                let n = w.tree.children(t).len();
                assert!((2..=3).contains(&n));
            }
        }
    }

    #[test]
    fn flat_workload_has_depth_two_accesses() {
        let spec = WorkloadSpec {
            max_depth: 0,
            ..WorkloadSpec::default()
        };
        let w = spec.generate();
        for u in w.tree.accesses() {
            assert_eq!(w.tree.depth(u), 2, "T0 → top-level → access");
        }
    }

    #[test]
    fn all_mixes_generate() {
        for mix in [
            OpMix::ReadWrite { read_ratio: 0.5 },
            OpMix::Counter { read_ratio: 0.2 },
            OpMix::Account { read_ratio: 0.2 },
            OpMix::IntSet,
            OpMix::Queue,
            OpMix::KvMap,
        ] {
            let w = WorkloadSpec {
                mix,
                ..WorkloadSpec::default()
            }
            .generate();
            assert!(w.tree.accesses().count() > 0);
            assert_eq!(w.types.len(), 4);
        }
    }

    #[test]
    fn retry_attempts_zero_is_byte_identical() {
        let base = WorkloadSpec::default().generate();
        let with_field = WorkloadSpec {
            retry_attempts: 0,
            ..WorkloadSpec::default()
        }
        .generate();
        assert_eq!(base.tree.len(), with_field.tree.len());
        assert!(with_field.retry_chains.is_empty());
    }

    #[test]
    fn retry_replicas_mirror_their_originals() {
        let spec = WorkloadSpec {
            retry_attempts: 2,
            ..WorkloadSpec::default()
        };
        let w = spec.generate();
        assert!(!w.retry_chains.is_empty());
        for (&p, chains) in &w.retry_chains {
            for (i, chain) in chains.iter().enumerate() {
                assert_eq!(chain.len(), 2);
                // Every replica is a fresh sibling of the original.
                for &r in chain {
                    assert_eq!(w.tree.parent(r), Some(p));
                }
                // Access replicas copy object and op verbatim.
                let orig = w
                    .clients
                    .iter()
                    .find(|c| c.tx() == p)
                    .expect("slot parent has a client")
                    .script_children()[i];
                if w.tree.is_access(orig) {
                    for &r in chain {
                        assert_eq!(w.tree.object_of(r), w.tree.object_of(orig));
                        assert_eq!(w.tree.op_of(r), w.tree.op_of(orig));
                    }
                }
            }
        }
        // Replica inner transactions got scripts (clients) too.
        let scripted: std::collections::BTreeSet<_> = w.clients.iter().map(|c| c.tx()).collect();
        for t in w.tree.all_tx() {
            if !w.tree.is_access(t) {
                assert!(scripted.contains(&t), "inner tx {t:?} lacks a script");
            }
        }
    }

    #[test]
    fn object_partitions_zero_is_byte_identical() {
        let base = WorkloadSpec::default().generate();
        let with_field = WorkloadSpec {
            object_partitions: 0,
            ..WorkloadSpec::default()
        }
        .generate();
        assert_eq!(base.tree.len(), with_field.tree.len());
        for u in base.tree.accesses() {
            assert_eq!(base.tree.object_of(u), with_field.tree.object_of(u));
            assert_eq!(base.tree.op_of(u), with_field.tree.op_of(u));
        }
    }

    #[test]
    fn object_partitions_make_disjoint_keyspaces() {
        let spec = WorkloadSpec {
            objects: 10,
            object_partitions: 4,
            top_level: 8,
            hotspot: 0.9, // overridden by partitioning
            ..WorkloadSpec::default()
        };
        let w = spec.generate();
        for (i, &t) in w.top.iter().enumerate() {
            let p = i % 4;
            for u in w.tree.accesses() {
                if w.tree.is_ancestor(t, u) {
                    let x = w.tree.object_of(u).expect("access");
                    assert_eq!(x.index() % 4, p, "top {t} must stay in partition {p}");
                    assert!(x.index() < 10);
                }
            }
        }
    }

    #[test]
    fn script_plans_cover_every_inner_tx() {
        let w = WorkloadSpec {
            retry_attempts: 1,
            ..WorkloadSpec::default()
        }
        .generate();
        let plans = w.script_plans();
        for t in w.tree.all_tx() {
            if !w.tree.is_access(t) {
                let plan = plans.get(&t).expect("inner tx has a plan");
                assert_eq!(
                    plan.children,
                    w.tree
                        .children(t)
                        .iter()
                        .copied()
                        .filter(|c| {
                            // Replica children live in retry_chains, not slots.
                            w.retry_chains
                                .get(&t)
                                .is_none_or(|chains| !chains.iter().flatten().any(|r| r == c))
                        })
                        .collect::<Vec<_>>()
                );
            }
        }
        assert_eq!(plans[&TxId::ROOT].children, w.top);
    }

    #[test]
    fn hotspot_skews_accesses() {
        let spec = WorkloadSpec {
            hotspot: 1.0,
            objects: 8,
            top_level: 10,
            ..WorkloadSpec::default()
        };
        let w = spec.generate();
        for u in w.tree.accesses() {
            assert_eq!(w.tree.object_of(u), Some(ObjId(0)));
        }
    }
}
