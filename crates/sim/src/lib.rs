//! # nt-sim
//!
//! Workload generation and simulation for nested-transaction systems.
//!
//! The paper's theorems quantify over *all* behaviors of the composed
//! automata; this crate samples that space: seeded pseudo-random workloads
//! ([`workload::WorkloadSpec`]) drive generic systems (Moss locking, undo
//! logging, or an uncontrolled chaos baseline) and the serial-scheduler
//! baseline, with random interleavings, optional fault injection, and
//! deadlock detection/resolution. Every run records the full behavior for
//! the `nt-sgt` checker.
//!
//! Note: a [`workload::Workload`]'s client automata carry run state — use a
//! freshly generated workload for each run.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod executor;
pub mod script;
pub mod workload;

pub use chaos::ChaosObject;
pub use executor::{run_generic, run_serial, Protocol, SimConfig, SimResult};
pub use script::{ChildOrder, ScriptedTx};
pub use workload::{OpMix, ScriptPlan, Workload, WorkloadSpec};

// Fault-campaign vocabulary, re-exported so executor callers can build
// plans and policies without naming `nt-faults` directly.
pub use nt_faults::{BackoffPolicy, FaultEvent, FaultKind, FaultPlan, RetryLedger, RetryStats};
