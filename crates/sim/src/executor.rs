//! Execution engines: the generic-system simulator (with deadlock
//! resolution and fault injection) and the serial-scheduler baseline.
//!
//! Both record the full behavior for checking. Time is counted two ways:
//! `steps` (total actions fired — the work metric) and `rounds` (scheduler
//! rounds in which every component may fire once — the concurrency-adjusted
//! latency metric used by experiments E6/E7/E9).

use crate::chaos::ChaosObject;
use crate::script::ScriptedTx;
use crate::workload::Workload;
use nt_automata::Component;
use nt_certifier::SgtCertifier;
use nt_generic::GenericController;
use nt_locking::{LockMode, MossObject};
use nt_model::{Action, ObjId, TxId};
use nt_mvto::MvtoObject;
use nt_obs::{Event, TraceHandle};
use nt_serial::{SerialObject, SerialScheduler};
use nt_undolog::UndoLogObject;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The concurrency-control / recovery protocol run by every object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// Moss read/write locking (`M1_X`, §5.2). Read/write workloads only.
    Moss(LockMode),
    /// Undo logging (`U_X`, §6.2). Any data type.
    Undo,
    /// Multiversion timestamp ordering (`nt-mvto`; the paper's future-work
    /// direction). Read/write workloads only. Its behaviors serialize in
    /// pseudotime order, which generally differs from any order the §4
    /// serialization graph admits — see experiment E11.
    Mvto,
    /// Online serialization-graph certification (`nt-certifier`): the
    /// paper's construction used as an optimistic scheduler. Read/write
    /// workloads only.
    Certifier,
    /// No concurrency control, no recovery (checker-discrimination runs).
    Chaos,
}

impl Protocol {
    /// Stable lowercase name (journal / export vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Moss(LockMode::ReadWrite) => "moss-rw",
            Protocol::Moss(LockMode::Exclusive) => "moss-ex",
            Protocol::Undo => "undo",
            Protocol::Mvto => "mvto",
            Protocol::Certifier => "certifier",
            Protocol::Chaos => "chaos",
        }
    }
}

/// One generic object automaton of any protocol.
enum ObjectAutomaton {
    Moss(MossObject),
    Undo(UndoLogObject),
    Mvto(MvtoObject),
    /// The certifier manages every object in one component; it is stored
    /// once (at index 0) and the remaining slots stay empty.
    Certifier(SgtCertifier),
    Chaos(ChaosObject),
}

impl ObjectAutomaton {
    fn as_component(&mut self) -> &mut dyn Component {
        match self {
            ObjectAutomaton::Moss(o) => o,
            ObjectAutomaton::Undo(o) => o,
            ObjectAutomaton::Mvto(o) => o,
            ObjectAutomaton::Certifier(o) => o,
            ObjectAutomaton::Chaos(o) => o,
        }
    }

    fn as_component_ref(&self) -> &dyn Component {
        match self {
            ObjectAutomaton::Moss(o) => o,
            ObjectAutomaton::Undo(o) => o,
            ObjectAutomaton::Mvto(o) => o,
            ObjectAutomaton::Certifier(o) => o,
            ObjectAutomaton::Chaos(o) => o,
        }
    }

    /// Waiting accesses and the transactions blocking them.
    fn waiting(&self) -> Vec<(TxId, Vec<TxId>)> {
        match self {
            ObjectAutomaton::Moss(o) => o.waiting(),
            ObjectAutomaton::Undo(o) => o.waiting(),
            ObjectAutomaton::Mvto(o) => o.waiting(),
            ObjectAutomaton::Certifier(o) => o.waiting(),
            ObjectAutomaton::Chaos(_) => Vec::new(),
        }
    }
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed for interleaving choices (independent of the workload seed).
    pub seed: u64,
    /// Hard cap on fired actions.
    pub max_steps: usize,
    /// Per-step probability of injecting an abort of a random live
    /// transaction (fault injection; deadlock victims come on top).
    pub abort_prob: f64,
    /// Run the controller with the paper's full abort nondeterminism
    /// (`AbortMode::Any`): `ABORT(T)` is offered for every incomplete
    /// transaction at every step and the random chooser may pick it.
    pub any_abort: bool,
    /// Observability sink. Disabled by default; when enabled, the executor
    /// drives its logical clock (scheduler round + step) and threads it to
    /// every protocol object, so journals of same-seed runs are
    /// byte-identical.
    pub trace: TraceHandle,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            max_steps: 2_000_000,
            abort_prob: 0.0,
            any_abort: false,
            trace: TraceHandle::disabled(),
        }
    }
}

/// The outcome of a simulation run.
#[derive(Debug)]
pub struct SimResult {
    /// The recorded behavior (generic actions, or serial actions for the
    /// serial baseline).
    pub trace: Vec<Action>,
    /// Actions fired.
    pub steps: usize,
    /// Scheduler rounds (concurrency-adjusted latency).
    pub rounds: usize,
    /// Top-level transactions that committed.
    pub committed_top: usize,
    /// Top-level transactions that aborted.
    pub aborted_top: usize,
    /// Aborts requested to break deadlocks.
    pub deadlock_victims: usize,
    /// Aborts injected by fault injection.
    pub injected_aborts: usize,
    /// Did the run reach quiescence (vs. hitting `max_steps`)?
    pub quiescent: bool,
    /// Accumulated count of blocked accesses summed over rounds
    /// (a contention measure).
    pub wait_rounds: u64,
    /// `wait_rounds` broken down per object: `blocked_by_object[x]` is the
    /// number of (access, round) pairs in which an access of object `x`
    /// was blocked. Sums to `wait_rounds`. Always recorded (cheap), so
    /// experiments can report contention hotspots without tracing.
    pub blocked_by_object: Vec<u64>,
    /// For MVTO runs: the pseudotime sibling order (per-parent child
    /// lists in `REQUEST_CREATE` order) — the order that serializes the
    /// behavior. `None` for other protocols.
    pub pseudotime_order: Option<Vec<(TxId, Vec<TxId>)>>,
}

/// Run a generic system (controller + protocol objects + scripted clients)
/// over the workload.
pub fn run_generic(workload: &mut Workload, protocol: Protocol, cfg: &SimConfig) -> SimResult {
    let tree = Arc::clone(&workload.tree);
    let mut controller = GenericController::new(Arc::clone(&tree));
    if cfg.any_abort {
        controller.abort_mode = nt_generic::AbortMode::Any;
    }
    let mut objects: Vec<ObjectAutomaton> = if protocol == Protocol::Certifier {
        let initials = (0..workload.types.len())
            .map(|xi| workload.initials.initial(ObjId(xi as u32)))
            .collect();
        vec![ObjectAutomaton::Certifier(SgtCertifier::new(
            Arc::clone(&tree),
            initials,
        ))]
    } else {
        (0..workload.types.len())
            .map(|xi| {
                let x = ObjId(xi as u32);
                match protocol {
                    Protocol::Moss(mode) => ObjectAutomaton::Moss(MossObject::new(
                        Arc::clone(&tree),
                        x,
                        workload.initials.initial(x),
                        mode,
                    )),
                    Protocol::Undo => ObjectAutomaton::Undo(UndoLogObject::new(
                        Arc::clone(&tree),
                        x,
                        Arc::clone(workload.types.get(x)),
                    )),
                    Protocol::Mvto => ObjectAutomaton::Mvto(MvtoObject::new(
                        Arc::clone(&tree),
                        x,
                        workload.initials.initial(x),
                    )),
                    Protocol::Certifier => unreachable!("handled above"),
                    Protocol::Chaos => ObjectAutomaton::Chaos(ChaosObject::new(
                        Arc::clone(&tree),
                        x,
                        workload.initials.initial(x),
                    )),
                }
            })
            .collect()
    };
    if cfg.trace.enabled() {
        for o in objects.iter_mut() {
            match o {
                ObjectAutomaton::Moss(m) => m.attach_trace(cfg.trace.clone()),
                ObjectAutomaton::Undo(u) => u.attach_trace(cfg.trace.clone()),
                ObjectAutomaton::Mvto(m) => m.attach_trace(cfg.trace.clone()),
                // The certifier and chaos objects journal nothing themselves;
                // their contention still shows up via the executor's
                // block/unblock transition events below.
                ObjectAutomaton::Certifier(_) | ObjectAutomaton::Chaos(_) => {}
            }
        }
        cfg.trace.set_now(0, 0);
        cfg.trace.record(Event::RunStart {
            protocol: protocol.name(),
            seed: cfg.seed,
        });
    }
    let workload_types_len = workload.types.len();
    let clients = &mut workload.clients;

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut trace: Vec<Action> = Vec::new();
    let mut steps = 0usize;
    let mut rounds = 0usize;
    let mut deadlock_victims = 0usize;
    let mut injected_aborts = 0usize;
    let mut wait_rounds = 0u64;
    let mut blocked_by_object = vec![0u64; workload_types_len];
    // Accesses blocked at the end of the previous round — journal only the
    // *transitions* (blocked/unblocked edges), not every blocked round.
    let mut prev_blocked: std::collections::BTreeSet<TxId> = std::collections::BTreeSet::new();
    let mut quiescent = false;

    // Component visit order, reshuffled each round for interleaving variety.
    // Index scheme: 0 = controller, 1..=K objects, rest clients.
    let n_components = 1 + objects.len() + clients.len();
    let mut visit: Vec<usize> = (0..n_components).collect();

    'outer: while steps < cfg.max_steps {
        rounds += 1;
        visit.shuffle(&mut rng);
        let mut fired_this_round = 0usize;
        let mut buf: Vec<Action> = Vec::new();

        for &ci in &visit {
            if steps >= cfg.max_steps {
                break 'outer;
            }
            // Finished clients never act again; skip them cheaply.
            if ci > objects.len() && clients[ci - 1 - objects.len()].is_done() {
                continue;
            }
            // The controller models the runtime substrate (message passing
            // and bookkeeping): it drains *all* its enabled actions within
            // the round, so that rounds measure the critical path of
            // object/client work, not controller serialization. Objects and
            // clients fire at most one action per round (unit work); the
            // certifier, which manages every object in one component, gets
            // one unit per object so service capacity matches the other
            // protocols.
            let budget = if ci == 0 {
                usize::MAX
            } else if ci <= objects.len()
                && matches!(objects[ci - 1], ObjectAutomaton::Certifier(_))
            {
                workload_types_len
            } else {
                1
            };
            let mut fired_here = 0usize;
            while fired_here < budget && steps < cfg.max_steps {
                buf.clear();
                {
                    let comp: &dyn Component = if ci == 0 {
                        &controller
                    } else if ci <= objects.len() {
                        objects[ci - 1].as_component_ref()
                    } else {
                        &clients[ci - 1 - objects.len()]
                    };
                    comp.enabled_outputs(&mut buf);
                }
                if buf.is_empty() {
                    break;
                }
                let a = buf[rng.gen_range(0..buf.len())].clone();
                // Stamp the logical clock before delivery so every event an
                // object journals while applying `a` carries this (round,
                // step) — purely a function of the seeded schedule.
                cfg.trace.set_now(rounds as u64, steps as u64);
                // Deliver to every component sharing the action.
                deliver(&mut controller, &mut objects, clients, &a);
                trace.push(a);
                steps += 1;
                fired_here += 1;
            }
            fired_this_round += fired_here;
        }

        // Fault injection.
        if cfg.abort_prob > 0.0 && rng.gen_bool(cfg.abort_prob) {
            let live = controller.live();
            if !live.is_empty() {
                let victim = live[rng.gen_range(0..live.len())];
                controller.request_abort(victim);
                injected_aborts += 1;
                if cfg.trace.enabled() {
                    cfg.trace.set_now(rounds as u64, steps as u64);
                    cfg.trace.record(Event::AbortInjected { tx: victim.0 });
                }
            }
        }

        // Contention accounting: aggregate and per-object (the waiter is an
        // access, so it names its object — this also attributes the
        // certifier's waiters, which all live in one component).
        let waiting: Vec<(TxId, Vec<TxId>)> = objects.iter().flat_map(|o| o.waiting()).collect();
        wait_rounds += waiting.len() as u64;
        for (waiter, _) in &waiting {
            if let Some(x) = tree.object_of(*waiter) {
                blocked_by_object[x.index()] += 1;
            }
        }
        if cfg.trace.enabled() {
            cfg.trace.set_now(rounds as u64, steps as u64);
            let now_blocked: std::collections::BTreeSet<TxId> =
                waiting.iter().map(|(w, _)| *w).collect();
            for (waiter, blockers) in &waiting {
                if !prev_blocked.contains(waiter) {
                    let obj = tree.object_of(*waiter).map_or(0, |x| x.0);
                    cfg.trace.record(Event::AccessBlocked {
                        obj,
                        tx: waiter.0,
                        blockers: blockers.iter().map(|b| b.0).collect(),
                    });
                    cfg.trace.add_depth("blocked", tree.depth(*waiter), 1);
                }
            }
            for waiter in prev_blocked.difference(&now_blocked) {
                let obj = tree.object_of(*waiter).map_or(0, |x| x.0);
                cfg.trace
                    .record(Event::AccessUnblocked { obj, tx: waiter.0 });
            }
            prev_blocked = now_blocked;
        }

        if fired_this_round == 0 {
            if waiting.is_empty() {
                quiescent = true;
                break;
            }
            // Blocked with no enabled action anywhere: break the wait by
            // aborting the lowest incomplete transaction in some blocker's
            // ancestor chain.
            let mut resolved = false;
            for (waiter, blockers) in &waiting {
                for &b in blockers {
                    if let Some(victim) = lowest_incomplete(&tree, &controller, b) {
                        controller.request_abort(victim);
                        deadlock_victims += 1;
                        if cfg.trace.enabled() {
                            cfg.trace.set_now(rounds as u64, steps as u64);
                            cfg.trace.record(Event::DeadlockVictim {
                                victim: victim.0,
                                waiter: waiter.0,
                                blocker: b.0,
                            });
                        }
                        resolved = true;
                        break;
                    }
                }
                if resolved {
                    break;
                }
            }
            if !resolved {
                // Nothing abortable: give up (should not happen).
                break;
            }
        }
    }

    let mut committed_top = 0;
    let mut aborted_top = 0;
    for &t in &workload.top {
        if controller.is_committed(t) {
            committed_top += 1;
        } else if controller.is_aborted(t) {
            aborted_top += 1;
        }
    }
    let pseudotime_order = objects.iter().find_map(|o| match o {
        ObjectAutomaton::Mvto(m) => Some(m.pseudotime_order_lists()),
        _ => None,
    });

    if cfg.trace.enabled() {
        cfg.trace.set_now(rounds as u64, steps as u64);
        cfg.trace.record(Event::RunEnd {
            steps: steps as u64,
            rounds: rounds as u64,
            quiescent,
        });
        cfg.trace.add("run.steps", steps as u64);
        cfg.trace.add("run.rounds", rounds as u64);
        cfg.trace.add("run.committed_top", committed_top as u64);
        cfg.trace.add("run.aborted_top", aborted_top as u64);
        cfg.trace.observe("run.wait_rounds", wait_rounds);
        for (xi, &n) in blocked_by_object.iter().enumerate() {
            if n > 0 {
                cfg.trace.add_obj("wait.rounds", xi as u32, n);
            }
        }
        if !quiescent {
            // The run hit max_steps while work remained — dump the flight
            // recorder so the tail of the schedule is inspectable.
            cfg.trace.dump_flight_to_stderr("failed to quiesce");
        }
    }

    SimResult {
        trace,
        steps,
        rounds,
        committed_top,
        aborted_top,
        deadlock_victims,
        injected_aborts,
        quiescent,
        wait_rounds,
        blocked_by_object,
        pseudotime_order,
    }
}

/// Walk up from `b`: the first transaction (strictly below `T0`) that is
/// neither committed nor aborted, i.e. an abortable victim whose abort
/// releases `b`'s effects.
fn lowest_incomplete(
    tree: &nt_model::TxTree,
    controller: &GenericController,
    b: TxId,
) -> Option<TxId> {
    let mut cur = b;
    while cur != TxId::ROOT {
        if !controller.is_committed(cur) && !controller.is_aborted(cur) {
            return Some(cur);
        }
        cur = tree.parent(cur)?;
    }
    None
}

fn deliver(
    controller: &mut GenericController,
    objects: &mut [ObjectAutomaton],
    clients: &mut [ScriptedTx],
    a: &Action,
) {
    if controller.is_input(a) || controller.is_output(a) {
        controller.apply(a);
    }
    for o in objects.iter_mut() {
        let c = o.as_component();
        if c.is_input(a) || c.is_output(a) {
            c.apply(a);
        }
    }
    for cl in clients.iter_mut() {
        if cl.is_input(a) || cl.is_output(a) {
            cl.apply(a);
        }
    }
}

/// Run the same workload through the *serial system* (serial scheduler +
/// serial objects + the same scripted clients): the no-concurrency
/// baseline of experiment E6 and the ground-truth generator for tests.
pub fn run_serial(workload: &mut Workload, cfg: &SimConfig) -> SimResult {
    let tree = Arc::clone(&workload.tree);
    let mut components: Vec<Box<dyn Component>> = Vec::new();
    components.push(Box::new(SerialScheduler::new(Arc::clone(&tree))));
    for (x, ty) in workload.types.iter() {
        components.push(Box::new(SerialObject::new(
            Arc::clone(&tree),
            x,
            Arc::clone(ty),
        )));
    }
    let clients = std::mem::take(&mut workload.clients);
    for c in clients {
        components.push(Box::new(c));
    }
    if cfg.trace.enabled() {
        cfg.trace.set_now(0, 0);
        cfg.trace.record(Event::RunStart {
            protocol: "serial",
            seed: cfg.seed,
        });
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut trace: Vec<Action> = Vec::new();
    let mut steps = 0usize;
    let mut rounds = 0usize;
    let mut quiescent = false;
    let mut visit: Vec<usize> = (0..components.len()).collect();
    let mut buf: Vec<Action> = Vec::new();
    'outer: while steps < cfg.max_steps {
        rounds += 1;
        visit.shuffle(&mut rng);
        let mut fired_this_round = 0usize;
        for &ci in &visit {
            // Same round semantics as the generic executor: the scheduler
            // (index 0) is the substrate and drains; others fire once.
            let budget = if ci == 0 { usize::MAX } else { 1 };
            let mut fired_here = 0usize;
            while fired_here < budget && steps < cfg.max_steps {
                buf.clear();
                components[ci].enabled_outputs(&mut buf);
                if buf.is_empty() {
                    break;
                }
                let a = buf[rng.gen_range(0..buf.len())].clone();
                cfg.trace.set_now(rounds as u64, steps as u64);
                for comp in components.iter_mut() {
                    if comp.is_input(&a) || comp.is_output(&a) {
                        comp.apply(&a);
                    }
                }
                trace.push(a);
                steps += 1;
                fired_here += 1;
            }
            fired_this_round += fired_here;
            if steps >= cfg.max_steps {
                break 'outer;
            }
        }
        if fired_this_round == 0 {
            quiescent = true;
            break;
        }
    }
    let status = nt_model::seq::Status::of(&tree, &trace);
    let committed_top = workload
        .top
        .iter()
        .filter(|&&t| status.is_committed(t))
        .count();
    let aborted_top = workload
        .top
        .iter()
        .filter(|&&t| status.is_aborted(t))
        .count();
    if cfg.trace.enabled() {
        cfg.trace.set_now(rounds as u64, steps as u64);
        cfg.trace.record(Event::RunEnd {
            steps: steps as u64,
            rounds: rounds as u64,
            quiescent,
        });
    }
    SimResult {
        steps,
        rounds,
        committed_top,
        aborted_top,
        deadlock_victims: 0,
        injected_aborts: 0,
        quiescent,
        wait_rounds: 0,
        blocked_by_object: vec![0; workload.types.len()],
        pseudotime_order: None,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{OpMix, WorkloadSpec};

    #[test]
    fn moss_run_reaches_quiescence_and_commits_everything() {
        let mut w = WorkloadSpec::default().generate();
        let r = run_generic(
            &mut w,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig::default(),
        );
        assert!(r.quiescent, "run must finish");
        assert_eq!(r.committed_top + r.aborted_top, w.top.len());
        assert!(r.committed_top > 0);
        assert!(!r.trace.is_empty());
        // The behavior satisfies the simple-database constraints.
        let serial = nt_model::seq::serial_projection(&r.trace);
        assert!(nt_model::wellformed::check_simple_behavior(&w.tree, &serial).is_ok());
    }

    #[test]
    fn undo_run_on_counters_reaches_quiescence() {
        let mut w = WorkloadSpec {
            mix: OpMix::Counter { read_ratio: 0.3 },
            ..WorkloadSpec::default()
        }
        .generate();
        let r = run_generic(&mut w, Protocol::Undo, &SimConfig::default());
        assert!(r.quiescent);
        assert!(r.committed_top > 0);
    }

    #[test]
    fn serial_baseline_commits_everything() {
        let mut w = WorkloadSpec::default().generate();
        let r = run_serial(&mut w, &SimConfig::default());
        assert!(r.quiescent);
        assert_eq!(r.committed_top, w.top.len());
        // And the trace is literally a serial behavior.
        assert!(
            nt_serial::validate_serial_behavior(&w.tree, &r.trace, &w.types).is_ok(),
            "serial system produces serial behaviors"
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let spec = WorkloadSpec::default();
        let mut w1 = spec.generate();
        let mut w2 = spec.generate();
        let r1 = run_generic(
            &mut w1,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig::default(),
        );
        let r2 = run_generic(
            &mut w2,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig::default(),
        );
        assert_eq!(r1.trace, r2.trace);
        let r3 = run_generic(
            &mut spec.generate(),
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig {
                seed: 99,
                ..SimConfig::default()
            },
        );
        assert!(r1.trace != r3.trace, "different interleaving seed");
    }

    #[test]
    fn abort_injection_aborts_some_transactions() {
        let spec = WorkloadSpec {
            top_level: 12,
            ..WorkloadSpec::default()
        };
        let mut w = spec.generate();
        let r = run_generic(
            &mut w,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig {
                abort_prob: 0.5,
                ..SimConfig::default()
            },
        );
        assert!(r.quiescent);
        assert!(r.injected_aborts > 0);
        assert!(r.aborted_top > 0 || r.committed_top == w.top.len());
    }

    #[test]
    fn hotspot_exclusive_locking_still_terminates() {
        // Maximal contention: every access hits object 0 with exclusive
        // locks. Deadlock resolution must keep the run live.
        let spec = WorkloadSpec {
            top_level: 10,
            objects: 2,
            hotspot: 1.0,
            mix: OpMix::ReadWrite { read_ratio: 0.0 },
            ..WorkloadSpec::default()
        };
        let mut w = spec.generate();
        let r = run_generic(
            &mut w,
            Protocol::Moss(LockMode::Exclusive),
            &SimConfig::default(),
        );
        assert!(r.quiescent, "deadlock resolution unstuck the run");
        assert_eq!(r.committed_top + r.aborted_top, w.top.len());
    }
}
