//! Execution engines: the generic-system simulator (with deadlock
//! resolution and fault injection) and the serial-scheduler baseline.
//!
//! Both record the full behavior for checking. Time is counted two ways:
//! `steps` (total actions fired — the work metric) and `rounds` (scheduler
//! rounds in which every component may fire once — the concurrency-adjusted
//! latency metric used by experiments E6/E7/E9).

use crate::chaos::ChaosObject;
use crate::script::ScriptedTx;
use crate::workload::Workload;
use nt_automata::Component;
use nt_certifier::SgtCertifier;
use nt_faults::{BackoffPolicy, FaultEvent, FaultKind, FaultPlan, RetryLedger, RetryStats};
use nt_generic::GenericController;
use nt_locking::{LockMode, MossObject};
use nt_model::{Action, ObjId, TxId};
use nt_mvto::MvtoObject;
use nt_obs::{Event, TraceHandle};
use nt_serial::{SerialObject, SerialScheduler};
use nt_undolog::UndoLogObject;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The concurrency-control / recovery protocol run by every object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// Moss read/write locking (`M1_X`, §5.2). Read/write workloads only.
    Moss(LockMode),
    /// Undo logging (`U_X`, §6.2). Any data type.
    Undo,
    /// Multiversion timestamp ordering (`nt-mvto`; the paper's future-work
    /// direction). Read/write workloads only. Its behaviors serialize in
    /// pseudotime order, which generally differs from any order the §4
    /// serialization graph admits — see experiment E11.
    Mvto,
    /// Online serialization-graph certification (`nt-certifier`): the
    /// paper's construction used as an optimistic scheduler. Read/write
    /// workloads only.
    Certifier,
    /// No concurrency control, no recovery (checker-discrimination runs).
    Chaos,
}

impl Protocol {
    /// Stable lowercase name (journal / export vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Moss(LockMode::ReadWrite) => "moss-rw",
            Protocol::Moss(LockMode::Exclusive) => "moss-ex",
            Protocol::Undo => "undo",
            Protocol::Mvto => "mvto",
            Protocol::Certifier => "certifier",
            Protocol::Chaos => "chaos",
        }
    }
}

/// One generic object automaton of any protocol.
enum ObjectAutomaton {
    Moss(MossObject),
    Undo(UndoLogObject),
    Mvto(MvtoObject),
    /// The certifier manages every object in one component; it is stored
    /// once (at index 0) and the remaining slots stay empty.
    Certifier(SgtCertifier),
    Chaos(ChaosObject),
}

impl ObjectAutomaton {
    fn as_component(&mut self) -> &mut dyn Component {
        match self {
            ObjectAutomaton::Moss(o) => o,
            ObjectAutomaton::Undo(o) => o,
            ObjectAutomaton::Mvto(o) => o,
            ObjectAutomaton::Certifier(o) => o,
            ObjectAutomaton::Chaos(o) => o,
        }
    }

    fn as_component_ref(&self) -> &dyn Component {
        match self {
            ObjectAutomaton::Moss(o) => o,
            ObjectAutomaton::Undo(o) => o,
            ObjectAutomaton::Mvto(o) => o,
            ObjectAutomaton::Certifier(o) => o,
            ObjectAutomaton::Chaos(o) => o,
        }
    }

    /// Waiting accesses and the transactions blocking them.
    fn waiting(&self) -> Vec<(TxId, Vec<TxId>)> {
        match self {
            ObjectAutomaton::Moss(o) => o.waiting(),
            ObjectAutomaton::Undo(o) => o.waiting(),
            ObjectAutomaton::Mvto(o) => o.waiting(),
            ObjectAutomaton::Certifier(o) => o.waiting(),
            ObjectAutomaton::Chaos(_) => Vec::new(),
        }
    }
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed for interleaving choices (independent of the workload seed).
    pub seed: u64,
    /// Hard cap on fired actions.
    pub max_steps: usize,
    /// Per-step probability of injecting an abort of a random live
    /// transaction (fault injection; deadlock victims come on top).
    /// Sampled from the dedicated fault RNG stream (`fault_seed`), so
    /// enabling it never perturbs the scheduler's interleaving choices.
    pub abort_prob: f64,
    /// Run the controller with the paper's full abort nondeterminism
    /// (`AbortMode::Any`): `ABORT(T)` is offered for every incomplete
    /// transaction at every step and the random chooser may pick it.
    pub any_abort: bool,
    /// Seed for the fault RNG stream — a separate `StdRng` from the
    /// scheduler's, so fault draws (`abort_prob`, abort storms) consume no
    /// scheduler randomness and `(seed, fault_seed)` pairs replay
    /// byte-identically.
    pub fault_seed: u64,
    /// Deterministic fault campaign: a schedule of fault events applied at
    /// logical-clock rounds (see [`nt_faults::FaultPlan`]).
    pub fault_plan: Option<FaultPlan>,
    /// Retry-with-backoff for aborted child slots. Requires the workload
    /// to have pre-materialized replicas (`WorkloadSpec::retry_attempts`);
    /// without them, the policy is inert.
    pub retry: Option<BackoffPolicy>,
    /// Quiescence watchdog: if this many consecutive rounds pass with no
    /// action fired (and deadlock resolution cannot make progress), the
    /// run is declared stuck, the flight recorder is dumped to stderr, and
    /// the executor returns instead of hanging.
    pub watchdog_rounds: u64,
    /// Observability sink. Disabled by default; when enabled, the executor
    /// drives its logical clock (scheduler round + step) and threads it to
    /// every protocol object, so journals of same-seed runs are
    /// byte-identical.
    pub trace: TraceHandle,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            max_steps: 2_000_000,
            abort_prob: 0.0,
            any_abort: false,
            fault_seed: 0,
            fault_plan: None,
            retry: None,
            watchdog_rounds: 10_000,
            trace: TraceHandle::disabled(),
        }
    }
}

/// The outcome of a simulation run.
#[derive(Debug)]
pub struct SimResult {
    /// The recorded behavior (generic actions, or serial actions for the
    /// serial baseline).
    pub trace: Vec<Action>,
    /// Actions fired.
    pub steps: usize,
    /// Scheduler rounds (concurrency-adjusted latency).
    pub rounds: usize,
    /// Top-level transactions that committed.
    pub committed_top: usize,
    /// Top-level transactions that aborted.
    pub aborted_top: usize,
    /// Aborts requested to break deadlocks.
    pub deadlock_victims: usize,
    /// Aborts injected by fault injection.
    pub injected_aborts: usize,
    /// Did the run reach quiescence (vs. hitting `max_steps`)?
    pub quiescent: bool,
    /// Accumulated count of blocked accesses summed over rounds
    /// (a contention measure).
    pub wait_rounds: u64,
    /// `wait_rounds` broken down per object: `blocked_by_object[x]` is the
    /// number of (access, round) pairs in which an access of object `x`
    /// was blocked. Sums to `wait_rounds`. Always recorded (cheap), so
    /// experiments can report contention hotspots without tracing.
    pub blocked_by_object: Vec<u64>,
    /// For MVTO runs: the pseudotime sibling order (per-parent child
    /// lists in `REQUEST_CREATE` order) — the order that serializes the
    /// behavior. `None` for other protocols.
    pub pseudotime_order: Option<Vec<(TxId, Vec<TxId>)>>,
    /// Fault-plan events actually applied (a plan event whose target pool
    /// was empty is skipped and not counted).
    pub plan_faults: usize,
    /// Crash–restart recoveries performed (`CrashObject` events on
    /// recoverable protocols).
    pub crash_recoveries: usize,
    /// Aggregate retry statistics (all zero when retries are disabled).
    pub retry: RetryStats,
    /// The per-slot starvation/fairness ledger behind `retry`.
    pub retry_ledger: RetryLedger,
    /// Did the quiescence watchdog cut the run short?
    pub watchdog_fired: bool,
}

/// Run a generic system (controller + protocol objects + scripted clients)
/// over the workload.
pub fn run_generic(workload: &mut Workload, protocol: Protocol, cfg: &SimConfig) -> SimResult {
    let tree = Arc::clone(&workload.tree);
    let mut controller = GenericController::new(Arc::clone(&tree));
    if cfg.any_abort {
        controller.abort_mode = nt_generic::AbortMode::Any;
    }
    let mut objects: Vec<ObjectAutomaton> = if protocol == Protocol::Certifier {
        let initials = (0..workload.types.len())
            .map(|xi| workload.initials.initial(ObjId(xi as u32)))
            .collect();
        vec![ObjectAutomaton::Certifier(SgtCertifier::new(
            Arc::clone(&tree),
            initials,
        ))]
    } else {
        (0..workload.types.len())
            .map(|xi| {
                let x = ObjId(xi as u32);
                match protocol {
                    Protocol::Moss(mode) => ObjectAutomaton::Moss(MossObject::new(
                        Arc::clone(&tree),
                        x,
                        workload.initials.initial(x),
                        mode,
                    )),
                    Protocol::Undo => ObjectAutomaton::Undo(UndoLogObject::new(
                        Arc::clone(&tree),
                        x,
                        Arc::clone(workload.types.get(x)),
                    )),
                    Protocol::Mvto => ObjectAutomaton::Mvto(MvtoObject::new(
                        Arc::clone(&tree),
                        x,
                        workload.initials.initial(x),
                    )),
                    Protocol::Certifier => unreachable!("handled above"),
                    Protocol::Chaos => ObjectAutomaton::Chaos(ChaosObject::new(
                        Arc::clone(&tree),
                        x,
                        workload.initials.initial(x),
                    )),
                }
            })
            .collect()
    };
    if cfg.trace.enabled() {
        for o in objects.iter_mut() {
            match o {
                ObjectAutomaton::Moss(m) => m.attach_trace(cfg.trace.clone()),
                ObjectAutomaton::Undo(u) => u.attach_trace(cfg.trace.clone()),
                ObjectAutomaton::Mvto(m) => m.attach_trace(cfg.trace.clone()),
                // The certifier and chaos objects journal nothing themselves;
                // their contention still shows up via the executor's
                // block/unblock transition events below.
                ObjectAutomaton::Certifier(_) | ObjectAutomaton::Chaos(_) => {}
            }
        }
        cfg.trace.set_now(0, 0);
        cfg.trace.record(Event::RunStart {
            protocol: protocol.name(),
            seed: cfg.seed,
        });
    }
    let workload_types_len = workload.types.len();
    // Cloned up front so crash–restart recovery can rebuild objects while
    // `clients` mutably borrows the workload.
    let recovery_initials = workload.initials.clone();
    let recovery_types = workload.types.clone();
    let clients = &mut workload.clients;
    if let Some(policy) = cfg.retry {
        for c in clients.iter_mut() {
            c.set_backoff(policy);
        }
    }
    if cfg.trace.enabled() {
        for c in clients.iter_mut() {
            c.attach_trace(cfg.trace.clone());
        }
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Dedicated fault stream: probabilistic aborts, storms, and target
    // draws never consume scheduler randomness (satellite of the plan
    // replay guarantee — adding faults must not reshape the base schedule).
    let mut fault_rng = StdRng::seed_from_u64(cfg.fault_seed);
    // Plan events in round order (stable for same-round events).
    let mut plan_events: Vec<FaultEvent> = cfg
        .fault_plan
        .as_ref()
        .map(|p| p.events.clone())
        .unwrap_or_default();
    plan_events.sort_by_key(|e| e.round);
    let mut next_plan_event = 0usize;
    let mut plan_faults = 0usize;
    let mut crash_recoveries = 0usize;
    // Object index → round until which its informs are held back.
    let mut delay_until: BTreeMap<usize, u64> = BTreeMap::new();
    // Objects whose next inform will be delivered twice (object-side only).
    let mut dup_armed: BTreeSet<usize> = BTreeSet::new();
    // Active abort storm: (per-round abort probability, last round).
    let mut storm: Option<(f64, u64)> = None;
    let mut watchdog_fired = false;
    let mut last_progress_round = 0usize;
    let mut trace: Vec<Action> = Vec::new();
    let mut steps = 0usize;
    let mut rounds = 0usize;
    let mut deadlock_victims = 0usize;
    let mut injected_aborts = 0usize;
    let mut wait_rounds = 0u64;
    let mut blocked_by_object = vec![0u64; workload_types_len];
    // Accesses blocked at the end of the previous round — journal only the
    // *transitions* (blocked/unblocked edges), not every blocked round.
    let mut prev_blocked: std::collections::BTreeSet<TxId> = std::collections::BTreeSet::new();
    let mut quiescent = false;

    // Component visit order, reshuffled each round for interleaving variety.
    // Index scheme: 0 = controller, 1..=K objects, rest clients.
    let n_components = 1 + objects.len() + clients.len();
    let mut visit: Vec<usize> = (0..n_components).collect();

    'outer: while steps < cfg.max_steps {
        rounds += 1;
        let now = rounds as u64;
        // Advance the clients' logical clock (retry backoff timers compare
        // against it) and expire inform delays that have run out.
        for c in clients.iter_mut() {
            c.tick_round(now);
        }
        delay_until.retain(|_, until| now < *until);

        // Apply every fault-plan event that is due this round, in plan
        // order. Target resolution is deterministic: the named transaction
        // if it is still live, else the name modulo the live pool; object
        // names are taken modulo the object count.
        while next_plan_event < plan_events.len() && plan_events[next_plan_event].round <= now {
            let ev = plan_events[next_plan_event].clone();
            next_plan_event += 1;
            let applied: Option<u64> = match ev.kind {
                FaultKind::AbortTx { tx } => resolve_target(&controller.live(), tx).map(|victim| {
                    controller.request_abort(victim);
                    u64::from(victim.0)
                }),
                FaultKind::OrphanSubtree { tx } => {
                    let pool: Vec<TxId> = controller
                        .live()
                        .into_iter()
                        .filter(|&t| !tree.is_access(t))
                        .collect();
                    resolve_target(&pool, tx).map(|victim| {
                        // Descendants keep acting after the abort: a live
                        // orphan subtree, the paper's §2.2 orphan scenario.
                        for c in clients.iter_mut() {
                            if tree.is_ancestor(victim, c.tx()) {
                                c.halt_on_abort = false;
                            }
                        }
                        controller.request_abort(victim);
                        u64::from(victim.0)
                    })
                }
                FaultKind::CrashObject { obj } => {
                    let xi = obj as usize % workload_types_len;
                    match protocol {
                        Protocol::Moss(mode) => {
                            let x = ObjId(xi as u32);
                            if cfg.trace.enabled() {
                                cfg.trace.set_now(now, steps as u64);
                                cfg.trace.record(Event::ObjectCrashed { obj: x.0 });
                            }
                            let (mut o, replayed) = MossObject::recovered_from(
                                Arc::clone(&tree),
                                x,
                                recovery_initials.initial(x),
                                mode,
                                &trace,
                            );
                            if cfg.trace.enabled() {
                                o.attach_trace(cfg.trace.clone());
                            }
                            objects[xi] = ObjectAutomaton::Moss(o);
                            crash_recoveries += 1;
                            if cfg.trace.enabled() {
                                cfg.trace
                                    .record(Event::ObjectRecovered { obj: x.0, replayed });
                            }
                            Some(u64::from(x.0))
                        }
                        Protocol::Undo => {
                            let x = ObjId(xi as u32);
                            if cfg.trace.enabled() {
                                cfg.trace.set_now(now, steps as u64);
                                cfg.trace.record(Event::ObjectCrashed { obj: x.0 });
                            }
                            let (mut o, replayed) = UndoLogObject::recovered_from(
                                Arc::clone(&tree),
                                x,
                                Arc::clone(recovery_types.get(x)),
                                &trace,
                            );
                            if cfg.trace.enabled() {
                                o.attach_trace(cfg.trace.clone());
                            }
                            objects[xi] = ObjectAutomaton::Undo(o);
                            crash_recoveries += 1;
                            if cfg.trace.enabled() {
                                cfg.trace
                                    .record(Event::ObjectRecovered { obj: x.0, replayed });
                            }
                            Some(u64::from(x.0))
                        }
                        // Mvto / Certifier / Chaos have no recovery story:
                        // the plan linter rejects such plans; at runtime the
                        // event is skipped (noted in the journal).
                        _ => {
                            if cfg.trace.enabled() {
                                cfg.trace.set_now(now, steps as u64);
                                cfg.trace.record(Event::Note {
                                    text: format!(
                                        "crash_object skipped: {} is not recoverable",
                                        protocol.name()
                                    ),
                                });
                            }
                            None
                        }
                    }
                }
                FaultKind::DelayInform { obj, rounds: d } => {
                    let xi = obj as usize % workload_types_len;
                    delay_until.insert(xi, now + d);
                    Some(xi as u64)
                }
                FaultKind::DuplicateInform { obj } => {
                    let xi = obj as usize % workload_types_len;
                    match protocol {
                        // INFORM is idempotent for these protocols (Chaos
                        // ignores it outright), so a duplicated delivery is
                        // a legal environment perturbation.
                        Protocol::Moss(_) | Protocol::Undo | Protocol::Chaos => {
                            dup_armed.insert(xi);
                            Some(xi as u64)
                        }
                        _ => {
                            if cfg.trace.enabled() {
                                cfg.trace.set_now(now, steps as u64);
                                cfg.trace.record(Event::Note {
                                    text: format!(
                                        "duplicate_inform skipped for {}",
                                        protocol.name()
                                    ),
                                });
                            }
                            None
                        }
                    }
                }
                FaultKind::AbortStorm { rate, window } => {
                    storm = Some((rate, now + window));
                    Some(window)
                }
            };
            if let Some(target) = applied {
                plan_faults += 1;
                if cfg.trace.enabled() {
                    cfg.trace.set_now(now, steps as u64);
                    cfg.trace.record(Event::FaultInjected {
                        kind: ev.kind.name(),
                        round: ev.round,
                        target,
                    });
                }
            }
        }
        if let Some((_, until)) = storm {
            if now > until {
                storm = None;
            }
        }

        visit.shuffle(&mut rng);
        let mut fired_this_round = 0usize;
        let mut informs_delayed_this_round = false;
        let mut buf: Vec<Action> = Vec::new();

        for &ci in &visit {
            if steps >= cfg.max_steps {
                break 'outer;
            }
            // Finished clients never act again; skip them cheaply.
            if ci > objects.len() && clients[ci - 1 - objects.len()].is_done() {
                continue;
            }
            // The controller models the runtime substrate (message passing
            // and bookkeeping): it drains *all* its enabled actions within
            // the round, so that rounds measure the critical path of
            // object/client work, not controller serialization. Objects and
            // clients fire at most one action per round (unit work); the
            // certifier, which manages every object in one component, gets
            // one unit per object so service capacity matches the other
            // protocols.
            let budget = if ci == 0 {
                usize::MAX
            } else if ci <= objects.len()
                && matches!(objects[ci - 1], ObjectAutomaton::Certifier(_))
            {
                workload_types_len
            } else {
                1
            };
            let mut fired_here = 0usize;
            while fired_here < budget && steps < cfg.max_steps {
                buf.clear();
                {
                    let comp: &dyn Component = if ci == 0 {
                        &controller
                    } else if ci <= objects.len() {
                        objects[ci - 1].as_component_ref()
                    } else {
                        &clients[ci - 1 - objects.len()]
                    };
                    comp.enabled_outputs(&mut buf);
                }
                // A delayed object's INFORMs are held in the controller
                // until the delay expires (per-object FIFO order is
                // preserved — whole objects are delayed, never reordered).
                if ci == 0 && !delay_until.is_empty() {
                    let before = buf.len();
                    buf.retain(|a| {
                        let x = match a {
                            Action::InformCommit(x, _) | Action::InformAbort(x, _) => *x,
                            _ => return true,
                        };
                        match delay_until.get(&x.index()) {
                            Some(&until) => rounds as u64 >= until,
                            None => true,
                        }
                    });
                    if buf.len() < before {
                        informs_delayed_this_round = true;
                    }
                }
                if buf.is_empty() {
                    break;
                }
                let a = buf[rng.gen_range(0..buf.len())].clone();
                // Stamp the logical clock before delivery so every event an
                // object journals while applying `a` carries this (round,
                // step) — purely a function of the seeded schedule.
                cfg.trace.set_now(rounds as u64, steps as u64);
                // Deliver to every component sharing the action.
                deliver(&mut controller, &mut objects, clients, &a);
                // Armed duplicate: replay the INFORM into the object a
                // second time, object-side only — the controller's FIFO and
                // the recorded behavior see it once (the duplicate models a
                // repeated message on the wire, and the checkers must not
                // be told about it).
                if let Action::InformCommit(x, _) | Action::InformAbort(x, _) = &a {
                    if dup_armed.remove(&x.index()) {
                        let o = objects[x.index()].as_component();
                        if o.is_input(&a) || o.is_output(&a) {
                            o.apply(&a);
                        }
                    }
                }
                trace.push(a);
                steps += 1;
                fired_here += 1;
            }
            fired_this_round += fired_here;
        }

        // Probabilistic fault injection: the baseline `abort_prob`, or the
        // storm rate while an `AbortStorm` window is active. Draws come
        // from the dedicated fault stream, never the scheduler RNG.
        let abort_p = match storm {
            Some((rate, until)) if rounds as u64 <= until => rate,
            _ => cfg.abort_prob,
        };
        if abort_p > 0.0 && fault_rng.gen_bool(abort_p) {
            let live = controller.live();
            if !live.is_empty() {
                let victim = live[fault_rng.gen_range(0..live.len())];
                controller.request_abort(victim);
                injected_aborts += 1;
                if cfg.trace.enabled() {
                    cfg.trace.set_now(rounds as u64, steps as u64);
                    cfg.trace.record(Event::AbortInjected { tx: victim.0 });
                }
            }
        }

        // Contention accounting: aggregate and per-object (the waiter is an
        // access, so it names its object — this also attributes the
        // certifier's waiters, which all live in one component).
        let waiting: Vec<(TxId, Vec<TxId>)> = objects.iter().flat_map(|o| o.waiting()).collect();
        wait_rounds += waiting.len() as u64;
        for (waiter, _) in &waiting {
            if let Some(x) = tree.object_of(*waiter) {
                blocked_by_object[x.index()] += 1;
            }
        }
        if cfg.trace.enabled() {
            cfg.trace.set_now(rounds as u64, steps as u64);
            let now_blocked: std::collections::BTreeSet<TxId> =
                waiting.iter().map(|(w, _)| *w).collect();
            for (waiter, blockers) in &waiting {
                if !prev_blocked.contains(waiter) {
                    let obj = tree.object_of(*waiter).map_or(0, |x| x.0);
                    cfg.trace.record(Event::AccessBlocked {
                        obj,
                        tx: waiter.0,
                        blockers: blockers.iter().map(|b| b.0).collect(),
                    });
                    cfg.trace.add_depth("blocked", tree.depth(*waiter), 1);
                }
            }
            for waiter in prev_blocked.difference(&now_blocked) {
                let obj = tree.object_of(*waiter).map_or(0, |x| x.0);
                cfg.trace
                    .record(Event::AccessUnblocked { obj, tx: waiter.0 });
            }
            prev_blocked = now_blocked;
        }

        if fired_this_round > 0 {
            last_progress_round = rounds;
        } else {
            // Watchdog: a run that neither fires, quiesces, nor resolves a
            // deadlock for this many rounds is stuck — dump the flight
            // recorder for post-mortem instead of spinning forever.
            let stalled = (rounds - last_progress_round) as u64;
            if stalled >= cfg.watchdog_rounds {
                watchdog_fired = true;
                if cfg.trace.enabled() {
                    cfg.trace.set_now(rounds as u64, steps as u64);
                    cfg.trace.record(Event::WatchdogFired {
                        stalled_rounds: stalled,
                    });
                    cfg.trace.dump_flight_to_stderr("quiescence watchdog fired");
                }
                break;
            }
            if waiting.is_empty() {
                // Idle rounds are still progress-in-waiting when a retry
                // backoff timer or a delayed INFORM is pending: let the
                // clock advance until it matures.
                let timer_pending = clients.iter().any(|c| c.next_wake().is_some());
                if !timer_pending && !informs_delayed_this_round {
                    quiescent = true;
                    break;
                }
                continue;
            }
            // Blocked with no enabled action anywhere: break the wait by
            // aborting the lowest incomplete transaction in some blocker's
            // ancestor chain.
            let mut resolved = false;
            for (waiter, blockers) in &waiting {
                for &b in blockers {
                    if let Some(victim) = lowest_incomplete(&tree, &controller, b) {
                        controller.request_abort(victim);
                        deadlock_victims += 1;
                        if cfg.trace.enabled() {
                            cfg.trace.set_now(rounds as u64, steps as u64);
                            cfg.trace.record(Event::DeadlockVictim {
                                victim: victim.0,
                                waiter: waiter.0,
                                blocker: b.0,
                            });
                        }
                        resolved = true;
                        break;
                    }
                }
                if resolved {
                    break;
                }
            }
            if !resolved {
                // Nothing abortable: give up (should not happen).
                if cfg.trace.enabled() {
                    cfg.trace
                        .dump_flight_to_stderr("deadlock resolution found no victim");
                }
                break;
            }
        }
    }

    let mut committed_top = 0;
    let mut aborted_top = 0;
    for &t in &workload.top {
        if controller.is_committed(t) {
            committed_top += 1;
        } else if controller.is_aborted(t) {
            aborted_top += 1;
        }
    }
    let pseudotime_order = objects.iter().find_map(|o| match o {
        ObjectAutomaton::Mvto(m) => Some(m.pseudotime_order_lists()),
        _ => None,
    });
    let mut retry_ledger = RetryLedger::default();
    for c in clients.iter() {
        retry_ledger.records.extend(c.ledger_records());
    }
    let retry = retry_ledger.stats();

    if cfg.trace.enabled() {
        cfg.trace.set_now(rounds as u64, steps as u64);
        cfg.trace.record(Event::RunEnd {
            steps: steps as u64,
            rounds: rounds as u64,
            quiescent,
        });
        cfg.trace.add("run.steps", steps as u64);
        cfg.trace.add("run.rounds", rounds as u64);
        cfg.trace.add("run.committed_top", committed_top as u64);
        cfg.trace.add("run.aborted_top", aborted_top as u64);
        cfg.trace.observe("run.wait_rounds", wait_rounds);
        for (xi, &n) in blocked_by_object.iter().enumerate() {
            if n > 0 {
                cfg.trace.add_obj("wait.rounds", xi as u32, n);
            }
        }
        if !quiescent {
            // The run hit max_steps while work remained — dump the flight
            // recorder so the tail of the schedule is inspectable.
            cfg.trace.dump_flight_to_stderr("failed to quiesce");
        }
    }

    SimResult {
        trace,
        steps,
        rounds,
        committed_top,
        aborted_top,
        deadlock_victims,
        injected_aborts,
        quiescent,
        wait_rounds,
        blocked_by_object,
        pseudotime_order,
        plan_faults,
        crash_recoveries,
        retry,
        retry_ledger,
        watchdog_fired,
    }
}

/// Resolve a fault-plan transaction target against a candidate pool: the
/// named transaction if present, else the name modulo the pool (so a plan
/// stays applicable as minimization or different seeds shift the live
/// set). `None` when the pool is empty (the event is skipped).
fn resolve_target(pool: &[TxId], want: u32) -> Option<TxId> {
    if pool.is_empty() {
        return None;
    }
    let w = TxId(want);
    if pool.contains(&w) {
        Some(w)
    } else {
        Some(pool[want as usize % pool.len()])
    }
}

/// Walk up from `b`: the first transaction (strictly below `T0`) that is
/// neither committed nor aborted, i.e. an abortable victim whose abort
/// releases `b`'s effects.
fn lowest_incomplete(
    tree: &nt_model::TxTree,
    controller: &GenericController,
    b: TxId,
) -> Option<TxId> {
    let mut cur = b;
    while cur != TxId::ROOT {
        if !controller.is_committed(cur) && !controller.is_aborted(cur) {
            return Some(cur);
        }
        cur = tree.parent(cur)?;
    }
    None
}

fn deliver(
    controller: &mut GenericController,
    objects: &mut [ObjectAutomaton],
    clients: &mut [ScriptedTx],
    a: &Action,
) {
    if controller.is_input(a) || controller.is_output(a) {
        controller.apply(a);
    }
    for o in objects.iter_mut() {
        let c = o.as_component();
        if c.is_input(a) || c.is_output(a) {
            c.apply(a);
        }
    }
    for cl in clients.iter_mut() {
        if cl.is_input(a) || cl.is_output(a) {
            cl.apply(a);
        }
    }
}

/// Run the same workload through the *serial system* (serial scheduler +
/// serial objects + the same scripted clients): the no-concurrency
/// baseline of experiment E6 and the ground-truth generator for tests.
pub fn run_serial(workload: &mut Workload, cfg: &SimConfig) -> SimResult {
    let tree = Arc::clone(&workload.tree);
    let mut components: Vec<Box<dyn Component>> = Vec::new();
    components.push(Box::new(SerialScheduler::new(Arc::clone(&tree))));
    for (x, ty) in workload.types.iter() {
        components.push(Box::new(SerialObject::new(
            Arc::clone(&tree),
            x,
            Arc::clone(ty),
        )));
    }
    let clients = std::mem::take(&mut workload.clients);
    for c in clients {
        components.push(Box::new(c));
    }
    if cfg.trace.enabled() {
        cfg.trace.set_now(0, 0);
        cfg.trace.record(Event::RunStart {
            protocol: "serial",
            seed: cfg.seed,
        });
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut trace: Vec<Action> = Vec::new();
    let mut steps = 0usize;
    let mut rounds = 0usize;
    let mut quiescent = false;
    let mut visit: Vec<usize> = (0..components.len()).collect();
    let mut buf: Vec<Action> = Vec::new();
    'outer: while steps < cfg.max_steps {
        rounds += 1;
        visit.shuffle(&mut rng);
        let mut fired_this_round = 0usize;
        for &ci in &visit {
            // Same round semantics as the generic executor: the scheduler
            // (index 0) is the substrate and drains; others fire once.
            let budget = if ci == 0 { usize::MAX } else { 1 };
            let mut fired_here = 0usize;
            while fired_here < budget && steps < cfg.max_steps {
                buf.clear();
                components[ci].enabled_outputs(&mut buf);
                if buf.is_empty() {
                    break;
                }
                let a = buf[rng.gen_range(0..buf.len())].clone();
                cfg.trace.set_now(rounds as u64, steps as u64);
                for comp in components.iter_mut() {
                    if comp.is_input(&a) || comp.is_output(&a) {
                        comp.apply(&a);
                    }
                }
                trace.push(a);
                steps += 1;
                fired_here += 1;
            }
            fired_this_round += fired_here;
            if steps >= cfg.max_steps {
                break 'outer;
            }
        }
        if fired_this_round == 0 {
            quiescent = true;
            break;
        }
    }
    let status = nt_model::seq::Status::of(&tree, &trace);
    let committed_top = workload
        .top
        .iter()
        .filter(|&&t| status.is_committed(t))
        .count();
    let aborted_top = workload
        .top
        .iter()
        .filter(|&&t| status.is_aborted(t))
        .count();
    if cfg.trace.enabled() {
        cfg.trace.set_now(rounds as u64, steps as u64);
        cfg.trace.record(Event::RunEnd {
            steps: steps as u64,
            rounds: rounds as u64,
            quiescent,
        });
    }
    SimResult {
        steps,
        rounds,
        committed_top,
        aborted_top,
        deadlock_victims: 0,
        injected_aborts: 0,
        quiescent,
        wait_rounds: 0,
        blocked_by_object: vec![0; workload.types.len()],
        pseudotime_order: None,
        plan_faults: 0,
        crash_recoveries: 0,
        retry: RetryStats::default(),
        retry_ledger: RetryLedger::default(),
        watchdog_fired: false,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{OpMix, WorkloadSpec};

    #[test]
    fn moss_run_reaches_quiescence_and_commits_everything() {
        let mut w = WorkloadSpec::default().generate();
        let r = run_generic(
            &mut w,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig::default(),
        );
        assert!(r.quiescent, "run must finish");
        assert_eq!(r.committed_top + r.aborted_top, w.top.len());
        assert!(r.committed_top > 0);
        assert!(!r.trace.is_empty());
        // The behavior satisfies the simple-database constraints.
        let serial = nt_model::seq::serial_projection(&r.trace);
        assert!(nt_model::wellformed::check_simple_behavior(&w.tree, &serial).is_ok());
    }

    #[test]
    fn undo_run_on_counters_reaches_quiescence() {
        let mut w = WorkloadSpec {
            mix: OpMix::Counter { read_ratio: 0.3 },
            ..WorkloadSpec::default()
        }
        .generate();
        let r = run_generic(&mut w, Protocol::Undo, &SimConfig::default());
        assert!(r.quiescent);
        assert!(r.committed_top > 0);
    }

    #[test]
    fn serial_baseline_commits_everything() {
        let mut w = WorkloadSpec::default().generate();
        let r = run_serial(&mut w, &SimConfig::default());
        assert!(r.quiescent);
        assert_eq!(r.committed_top, w.top.len());
        // And the trace is literally a serial behavior.
        assert!(
            nt_serial::validate_serial_behavior(&w.tree, &r.trace, &w.types).is_ok(),
            "serial system produces serial behaviors"
        );
    }

    #[test]
    fn runs_are_reproducible() {
        let spec = WorkloadSpec::default();
        let mut w1 = spec.generate();
        let mut w2 = spec.generate();
        let r1 = run_generic(
            &mut w1,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig::default(),
        );
        let r2 = run_generic(
            &mut w2,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig::default(),
        );
        assert_eq!(r1.trace, r2.trace);
        let r3 = run_generic(
            &mut spec.generate(),
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig {
                seed: 99,
                ..SimConfig::default()
            },
        );
        assert!(r1.trace != r3.trace, "different interleaving seed");
    }

    #[test]
    fn abort_injection_aborts_some_transactions() {
        let spec = WorkloadSpec {
            top_level: 12,
            ..WorkloadSpec::default()
        };
        let mut w = spec.generate();
        let r = run_generic(
            &mut w,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig {
                abort_prob: 0.5,
                ..SimConfig::default()
            },
        );
        assert!(r.quiescent);
        assert!(r.injected_aborts > 0);
        assert!(r.aborted_top > 0 || r.committed_top == w.top.len());
    }

    #[test]
    fn retry_salvages_aborted_slots_without_livelock() {
        // Two contended objects with sequential exclusive writers: this
        // pinned seed deadlocks (a single hotspot object cannot — one
        // queue has no cycle). With replicas and backoff, victims are
        // resubmitted as fresh siblings; the run must still quiesce (no
        // livelock) and every retried slot must resolve.
        let spec = WorkloadSpec {
            top_level: 10,
            objects: 2,
            hotspot: 0.5,
            sequential_prob: 0.8,
            mix: OpMix::ReadWrite { read_ratio: 0.0 },
            retry_attempts: 2,
            seed: 1,
            ..WorkloadSpec::default()
        };
        let mut w = spec.generate();
        let r = run_generic(
            &mut w,
            Protocol::Moss(LockMode::Exclusive),
            &SimConfig {
                retry: Some(BackoffPolicy::default()),
                ..SimConfig::default()
            },
        );
        assert!(r.quiescent, "retries must not livelock the run");
        assert!(!r.watchdog_fired);
        assert!(r.deadlock_victims > 0, "contention produced victims");
        assert!(r.retry.scheduled > 0, "victims were resubmitted");
        assert!(
            r.retry_ledger.all_resolved(),
            "every retried slot committed or exhausted its budget"
        );
        let serial = nt_model::seq::serial_projection(&r.trace);
        assert!(nt_model::wellformed::check_simple_behavior(&w.tree, &serial).is_ok());
    }

    #[test]
    fn crash_object_plan_recovers_and_completes() {
        let mut plan = FaultPlan::new("crash-test", "moss-rw");
        plan.events.push(nt_faults::FaultEvent {
            round: 3,
            kind: FaultKind::CrashObject { obj: 0 },
        });
        plan.events.push(nt_faults::FaultEvent {
            round: 6,
            kind: FaultKind::CrashObject { obj: 1 },
        });
        let mut w = WorkloadSpec::default().generate();
        let r = run_generic(
            &mut w,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig {
                fault_plan: Some(plan),
                ..SimConfig::default()
            },
        );
        assert!(r.quiescent);
        assert_eq!(r.crash_recoveries, 2);
        assert_eq!(r.plan_faults, 2);
        assert_eq!(r.committed_top + r.aborted_top, w.top.len());
        let serial = nt_model::seq::serial_projection(&r.trace);
        assert!(nt_model::wellformed::check_simple_behavior(&w.tree, &serial).is_ok());
    }

    #[test]
    fn abort_storm_plan_injects_from_fault_stream() {
        let mut plan = FaultPlan::new("storm-test", "moss-rw");
        plan.events.push(nt_faults::FaultEvent {
            round: 2,
            kind: FaultKind::AbortStorm {
                rate: 0.9,
                window: 30,
            },
        });
        let spec = WorkloadSpec {
            top_level: 12,
            ..WorkloadSpec::default()
        };
        let mut w = spec.generate();
        let r = run_generic(
            &mut w,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig {
                fault_plan: Some(plan),
                fault_seed: 5,
                ..SimConfig::default()
            },
        );
        assert!(r.quiescent);
        assert!(r.injected_aborts > 0, "storm window injected aborts");
        assert_eq!(r.plan_faults, 1);
    }

    #[test]
    fn plan_runs_replay_identically() {
        let mk = || {
            let mut plan = FaultPlan::new("replay-test", "moss-rw");
            plan.events.push(nt_faults::FaultEvent {
                round: 2,
                kind: FaultKind::OrphanSubtree { tx: 3 },
            });
            plan.events.push(nt_faults::FaultEvent {
                round: 4,
                kind: FaultKind::DelayInform { obj: 0, rounds: 5 },
            });
            plan.events.push(nt_faults::FaultEvent {
                round: 5,
                kind: FaultKind::DuplicateInform { obj: 1 },
            });
            SimConfig {
                seed: 11,
                fault_seed: 13,
                fault_plan: Some(plan),
                retry: Some(BackoffPolicy::default()),
                ..SimConfig::default()
            }
        };
        let spec = WorkloadSpec {
            retry_attempts: 1,
            ..WorkloadSpec::default()
        };
        let r1 = run_generic(
            &mut spec.generate(),
            Protocol::Moss(LockMode::ReadWrite),
            &mk(),
        );
        let r2 = run_generic(
            &mut spec.generate(),
            Protocol::Moss(LockMode::ReadWrite),
            &mk(),
        );
        assert_eq!(r1.trace, r2.trace);
        assert_eq!(r1.plan_faults, r2.plan_faults);
        assert_eq!(r1.retry.scheduled, r2.retry.scheduled);
    }

    #[test]
    fn hotspot_exclusive_locking_still_terminates() {
        // Maximal contention: every access hits object 0 with exclusive
        // locks. Deadlock resolution must keep the run live.
        let spec = WorkloadSpec {
            top_level: 10,
            objects: 2,
            hotspot: 1.0,
            mix: OpMix::ReadWrite { read_ratio: 0.0 },
            ..WorkloadSpec::default()
        };
        let mut w = spec.generate();
        let r = run_generic(
            &mut w,
            Protocol::Moss(LockMode::Exclusive),
            &SimConfig::default(),
        );
        assert!(r.quiescent, "deadlock resolution unstuck the run");
        assert_eq!(r.committed_top + r.aborted_top, w.top.len());
    }
}
