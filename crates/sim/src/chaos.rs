//! An *uncontrolled* read/write object: no locks, no recovery.
//!
//! `ChaosObject` answers every access immediately against a single
//! update-in-place cell and ignores `INFORM_*` entirely. Systems built from
//! it are exactly the kind of system the serialization-graph checker must
//! reject: interleavings produce cyclic graphs, and aborts leave dirty data
//! behind, producing inappropriate return values. Used by experiment E3 to
//! show the checker discriminates.

use nt_automata::Component;
use nt_model::{Action, ObjId, TxId, TxTree, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A lock-free, recovery-free read/write object.
pub struct ChaosObject {
    tree: Arc<TxTree>,
    x: ObjId,
    data: i64,
    created: BTreeSet<TxId>,
    responded: BTreeSet<TxId>,
}

impl ChaosObject {
    /// A fresh chaos object with initial value `init`.
    pub fn new(tree: Arc<TxTree>, x: ObjId, init: i64) -> Self {
        ChaosObject {
            tree,
            x,
            data: init,
            created: BTreeSet::new(),
            responded: BTreeSet::new(),
        }
    }
}

impl Component for ChaosObject {
    fn name(&self) -> String {
        format!("chaos({})", self.x)
    }

    fn is_input(&self, a: &Action) -> bool {
        match a {
            Action::Create(t) => self.tree.object_of(*t) == Some(self.x),
            Action::InformCommit(x, _) | Action::InformAbort(x, _) => *x == self.x,
            _ => false,
        }
    }

    fn is_output(&self, a: &Action) -> bool {
        matches!(a, Action::RequestCommit(t, _) if self.tree.object_of(*t) == Some(self.x))
    }

    fn apply(&mut self, a: &Action) {
        match a {
            Action::Create(t) => {
                self.created.insert(*t);
            }
            Action::InformCommit(..) | Action::InformAbort(..) => {
                // Chaos: no recovery, no lock inheritance. Ignore.
            }
            Action::RequestCommit(t, _) => {
                self.responded.insert(*t);
                if let Some(d) = self.tree.op_of(*t).and_then(|op| op.write_data()) {
                    self.data = d; // update in place, no undo
                }
            }
            _ => unreachable!(),
        }
    }

    fn enabled_outputs(&self, buf: &mut Vec<Action>) {
        for &t in self.created.difference(&self.responded) {
            let v = match self.tree.op_of(t).and_then(|op| op.write_data()) {
                Some(_) => Value::Ok,
                None => Value::Int(self.data),
            };
            buf.push(Action::RequestCommit(t, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_model::Op;

    #[test]
    fn informs_are_ignored_entirely() {
        // Neither INFORM_COMMIT nor INFORM_ABORT changes the cell, the
        // answer set, or the enabled outputs — chaos has no recovery and
        // no lock inheritance to maintain.
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let w = tree.add_access(a, x, Op::Write(4));
        let r = tree.add_access(b, x, Op::Read);
        let tree = Arc::new(tree);
        let mut o = ChaosObject::new(Arc::clone(&tree), x, 0);
        o.apply(&Action::Create(w));
        o.apply(&Action::RequestCommit(w, Value::Ok));
        assert!(o.is_input(&Action::InformCommit(x, w)));
        assert!(o.is_input(&Action::InformAbort(x, a)));
        o.apply(&Action::InformCommit(x, w));
        o.apply(&Action::InformAbort(x, a));
        o.apply(&Action::InformCommit(x, a));
        o.apply(&Action::Create(r));
        let mut buf = Vec::new();
        o.enabled_outputs(&mut buf);
        assert_eq!(
            buf,
            vec![Action::RequestCommit(r, Value::Int(4))],
            "informs neither restored nor re-enabled anything"
        );
    }

    #[test]
    fn reads_are_stale_across_aborts() {
        // Writer under `a` commits its value in place; `a` aborts; a later
        // unrelated reader still sees the dead write — the dirty read the
        // serialization-graph checker must flag as an inappropriate return
        // value.
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let w = tree.add_access(a, x, Op::Write(7));
        let r = tree.add_access(b, x, Op::Read);
        let tree = Arc::new(tree);
        let mut o = ChaosObject::new(Arc::clone(&tree), x, 1);
        o.apply(&Action::Create(w));
        o.apply(&Action::RequestCommit(w, Value::Ok));
        o.apply(&Action::InformAbort(x, w));
        o.apply(&Action::InformAbort(x, a));
        o.apply(&Action::Create(r));
        let mut buf = Vec::new();
        o.enabled_outputs(&mut buf);
        assert_eq!(
            buf,
            vec![Action::RequestCommit(r, Value::Int(7))],
            "the aborted write leaks: no undo, no versions"
        );
    }

    #[test]
    fn answers_immediately_and_never_restores() {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let w = tree.add_access(a, x, Op::Write(9));
        let r = tree.add_access(a, x, Op::Read);
        let tree = Arc::new(tree);
        let mut o = ChaosObject::new(Arc::clone(&tree), x, 0);
        o.apply(&Action::Create(w));
        let mut buf = Vec::new();
        o.enabled_outputs(&mut buf);
        assert_eq!(buf, vec![Action::RequestCommit(w, Value::Ok)]);
        o.apply(&buf[0]);
        // Abort a: chaos ignores it — the dirty 9 persists.
        o.apply(&Action::InformAbort(x, a));
        o.apply(&Action::Create(r));
        buf.clear();
        o.enabled_outputs(&mut buf);
        assert_eq!(buf, vec![Action::RequestCommit(r, Value::Int(9))]);
    }
}
