//! # nt-model
//!
//! Foundational model types for the `nested-sgt` workspace: a faithful Rust
//! transliteration of the system model of
//!
//! > Fekete, Lynch, Weihl. *A Serialization Graph Construction for Nested
//! > Transactions.* PODS 1990.
//!
//! This crate owns the vocabulary shared by every other crate:
//!
//! * [`tree`] — transaction naming trees / system types (§2.2);
//! * [`value`] and [`op`] — return values and access operations;
//! * [`action`] — the global action alphabet and the derived maps
//!   `transaction`, `hightransaction`, `lowtransaction`, `object` (§2.2.4);
//! * [`seq`] — the sequence algebra: `serial`, `visible`, `clean`,
//!   `operations`, `perform`, orphans and liveness (§2.2.5–§2.3);
//! * [`rw`] — read/write-object operators: `write-sequence`, `last-write`,
//!   `final-value`, `clean-*`, and the *current*/*safe* predicates (§3);
//! * [`order`] — sibling orders and `R_trans` / `R_event` (§2.3.2);
//! * [`affects`] — `directly-affects` / `affects` and order *suitability*
//!   (§2.3.2, Lemma 1);
//! * [`wellformed`] — syntactic well-formedness validators (§2.2, §2.3.1).
//!
//! Everything here is pure data and pure functions over `&[Action]` slices;
//! the executable automata live in `nt-automata`, `nt-serial`, `nt-generic`,
//! `nt-locking` and `nt-undolog`, and the serialization-graph checker — the
//! paper's contribution — lives in `nt-sgt`.

#![forbid(unsafe_code)]

pub mod action;
pub mod affects;
pub mod op;
pub mod order;
pub mod rw;
pub mod seq;
pub mod tree;
pub mod value;
pub mod wellformed;

pub use action::Action;
pub use op::Op;
pub use order::SiblingOrder;
pub use seq::{Operation, Status};
pub use tree::{ObjId, TxId, TxKind, TxTree};
pub use value::Value;
