//! The `directly-affects` / `affects` dependency relations and the
//! *suitability* condition on sibling orders (§2.3.2, Lemma 1).
//!
//! These are used by the direct (non-graph) validation path: given a sibling
//! order, check that it is suitable for a behavior and a transaction. The
//! production checker never needs this — Theorem 8's proof shows suitability
//! follows from acyclicity — but the direct check is an independent oracle
//! for tests, so it favors clarity over asymptotics.

use crate::action::Action;
use crate::order::SiblingOrder;
use crate::seq::visible_indices;
use crate::tree::{TxId, TxTree};
use std::collections::HashMap;

/// The edges of `directly-affects(β)` as index pairs `(i, j)` with `i < j`.
///
/// Per §2.3.2, `(φ, π) ∈ directly-affects(β)` iff one of:
/// 1. `transaction(φ) = transaction(π)` and `φ` precedes `π`;
/// 2. `φ = REQUEST_CREATE(T)`, `π = CREATE(T)`;
/// 3. `φ = REQUEST_COMMIT(T, v)`, `π = COMMIT(T)`;
/// 4. `φ = REQUEST_CREATE(T)`, `π = ABORT(T)`;
/// 5. `φ = COMMIT(T)`, `π = REPORT_COMMIT(T, v)`;
/// 6. `φ = ABORT(T)`, `π = REPORT_ABORT(T)`.
///
/// Rule 1 is emitted as consecutive-pair chain edges (transitively
/// equivalent and linear in size).
pub fn directly_affects_edges(tree: &TxTree, beta: &[Action]) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    // Rule 1: chain per transaction.
    let mut last_of_tx: HashMap<TxId, usize> = HashMap::new();
    // Rules 2–6: remember relevant earlier events per subject transaction.
    let mut request_create: HashMap<TxId, usize> = HashMap::new();
    let mut request_commit: HashMap<TxId, usize> = HashMap::new();
    let mut commit: HashMap<TxId, usize> = HashMap::new();
    let mut abort: HashMap<TxId, usize> = HashMap::new();

    for (j, a) in beta.iter().enumerate() {
        if let Some(t) = a.transaction(tree) {
            if let Some(&i) = last_of_tx.get(&t) {
                edges.push((i, j));
            }
            last_of_tx.insert(t, j);
        }
        match a {
            Action::RequestCreate(t) => {
                request_create.insert(*t, j);
            }
            Action::RequestCommit(t, _) => {
                request_commit.insert(*t, j);
            }
            Action::Create(t) => {
                if let Some(&i) = request_create.get(t) {
                    edges.push((i, j));
                }
            }
            Action::Commit(t) => {
                if let Some(&i) = request_commit.get(t) {
                    edges.push((i, j));
                }
                commit.insert(*t, j);
            }
            Action::Abort(t) => {
                if let Some(&i) = request_create.get(t) {
                    edges.push((i, j));
                }
                abort.insert(*t, j);
            }
            Action::ReportCommit(t, _) => {
                if let Some(&i) = commit.get(t) {
                    edges.push((i, j));
                }
            }
            Action::ReportAbort(t) => {
                if let Some(&i) = abort.get(t) {
                    edges.push((i, j));
                }
            }
            _ => {}
        }
    }
    edges
}

/// Does `φ = beta[i]` affect `π = beta[j]` in `beta`?
///
/// `affects(β)` is the transitive closure of `directly-affects(β)`;
/// answered by forward search over the edge DAG.
pub fn affects(tree: &TxTree, beta: &[Action], i: usize, j: usize) -> bool {
    if i >= j {
        return false;
    }
    let edges = directly_affects_edges(tree, beta);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); beta.len()];
    for (a, b) in edges {
        adj[a].push(b);
    }
    let mut stack = vec![i];
    let mut seen = vec![false; beta.len()];
    seen[i] = true;
    while let Some(v) = stack.pop() {
        if v == j {
            return true;
        }
        for &w in &adj[v] {
            if !seen[w] && w <= j {
                seen[w] = true;
                stack.push(w);
            }
        }
    }
    false
}

/// Why a sibling order fails to be suitable (§2.3.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnsuitableReason {
    /// Condition 1 fails: a pair of sibling lowtransactions of visible
    /// events is unordered.
    UnorderedSiblings(TxId, TxId),
    /// Condition 2 fails: `R_event(β) ∪ affects(β)` has a cycle on the
    /// visible events (witnessed by one event index on the cycle).
    Inconsistent(usize),
}

/// Check that `order` is *suitable* for `beta` and `t` (§2.3.2):
///
/// 1. it orders all pairs of siblings that are lowtransactions of events in
///    `visible(β, t)`, and
/// 2. `R_event(β)` and `affects(β)` are consistent partial orders on the
///    events of `visible(β, t)` — i.e. their union is acyclic.
///
/// Quadratic in the number of visible events; intended for test oracles.
pub fn check_suitable(
    tree: &TxTree,
    beta: &[Action],
    t: TxId,
    order: &SiblingOrder,
) -> Result<(), UnsuitableReason> {
    let vis = visible_indices(tree, beta, t);
    let lows: Vec<Option<TxId>> = vis.iter().map(|&i| beta[i].lowtransaction(tree)).collect();

    // Condition 1: all sibling lowtransaction pairs ordered.
    for (p, &li) in lows.iter().enumerate() {
        for &lj in lows.iter().skip(p + 1) {
            if let (Some(a), Some(b)) = (li, lj) {
                if tree.are_siblings(a, b) && !order.relates(a, b) {
                    return Err(UnsuitableReason::UnorderedSiblings(a, b));
                }
            }
        }
    }

    // Condition 2: union of R_event and affects acyclic on visible events.
    let n = vis.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let index_of: HashMap<usize, usize> = vis.iter().enumerate().map(|(k, &i)| (i, k)).collect();
    for (a, b) in directly_affects_edges(tree, beta) {
        if let (Some(&ka), Some(&kb)) = (index_of.get(&a), index_of.get(&b)) {
            adj[ka].push(kb);
        }
    }
    for ka in 0..n {
        for kb in 0..n {
            if ka == kb {
                continue;
            }
            if order.r_event(tree, &beta[vis[ka]], &beta[vis[kb]]) == Some(true) {
                adj[ka].push(kb);
            }
        }
    }
    match find_cycle_vertex(&adj) {
        Some(k) => Err(UnsuitableReason::Inconsistent(vis[k])),
        None => Ok(()),
    }
}

/// Return a vertex on some cycle of the digraph, or `None` if acyclic.
/// Iterative colored DFS.
pub(crate) fn find_cycle_vertex(adj: &[Vec<usize>]) -> Option<usize> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = adj.len();
    let mut color = vec![Color::White; n];
    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        // stack of (vertex, next-edge-index)
        let mut stack = vec![(start, 0usize)];
        color[start] = Color::Gray;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < adj[v].len() {
                let w = adj[v][*next];
                *next += 1;
                match color[w] {
                    Color::White => {
                        color[w] = Color::Gray;
                        stack.push((w, 0));
                    }
                    Color::Gray => return Some(w),
                    Color::Black => {}
                }
            } else {
                color[v] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

/// Convenience: is `order` suitable for `beta` and `t`?
pub fn is_suitable(tree: &TxTree, beta: &[Action], t: TxId, order: &SiblingOrder) -> bool {
    check_suitable(tree, beta, t, order).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::value::Value;

    fn two_tx_behavior() -> (TxTree, TxId, TxId, Vec<Action>) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let u = tree.add_access(a, x, Op::Write(1));
        let w = tree.add_access(b, x, Op::Read);
        let beta = vec![
            Action::RequestCreate(a),                // 0
            Action::Create(a),                       // 1
            Action::RequestCreate(u),                // 2
            Action::Create(u),                       // 3
            Action::RequestCommit(u, Value::Ok),     // 4
            Action::Commit(u),                       // 5
            Action::ReportCommit(u, Value::Ok),      // 6
            Action::RequestCommit(a, Value::Ok),     // 7
            Action::Commit(a),                       // 8
            Action::ReportCommit(a, Value::Ok),      // 9  (report to T0)
            Action::RequestCreate(b),                // 10 (T0 saw a finish first)
            Action::Create(b),                       // 11
            Action::RequestCreate(w),                // 12
            Action::Create(w),                       // 13
            Action::RequestCommit(w, Value::Int(1)), // 14
            Action::Commit(w),                       // 15
            Action::ReportCommit(w, Value::Int(1)),  // 16
            Action::RequestCommit(b, Value::Ok),     // 17
            Action::Commit(b),                       // 18
        ];
        (tree, a, b, beta)
    }

    #[test]
    fn directly_affects_contains_protocol_edges() {
        let (tree, _a, _b, beta) = two_tx_behavior();
        let edges = directly_affects_edges(&tree, &beta);
        assert!(edges.contains(&(0, 1)), "REQUEST_CREATE→CREATE");
        assert!(edges.contains(&(4, 5)), "REQUEST_COMMIT→COMMIT");
        assert!(edges.contains(&(5, 6)), "COMMIT→REPORT_COMMIT");
        // Chain edge inside transaction a: CREATE(a) → REQUEST_CREATE(u).
        assert!(edges.contains(&(1, 2)));
    }

    #[test]
    fn affects_is_transitive() {
        let (tree, _a, _b, beta) = two_tx_behavior();
        // REQUEST_CREATE(a) transitively affects COMMIT(a).
        assert!(affects(&tree, &beta, 0, 8));
        // …and through T0's chain (report to T0, then REQUEST_CREATE(b))
        // it transitively affects b's commit.
        assert!(affects(&tree, &beta, 0, 18));
        // Nothing affects an earlier event.
        assert!(!affects(&tree, &beta, 8, 0));
    }

    #[test]
    fn abort_edges() {
        let mut tree = TxTree::new();
        let a = tree.add_inner(TxId::ROOT);
        let beta = vec![
            Action::RequestCreate(a),
            Action::Abort(a),
            Action::ReportAbort(a),
        ];
        let edges = directly_affects_edges(&tree, &beta);
        assert!(edges.contains(&(0, 1)), "REQUEST_CREATE→ABORT");
        assert!(edges.contains(&(1, 2)), "ABORT→REPORT_ABORT");
    }

    #[test]
    fn suitable_order_accepted() {
        let (tree, a, b, beta) = two_tx_behavior();
        let order = SiblingOrder::from_lists([(TxId::ROOT, vec![a, b])]);
        assert!(is_suitable(&tree, &beta, TxId::ROOT, &order));
    }

    #[test]
    fn reversed_order_against_precedence_is_unsuitable() {
        let (tree, a, b, beta) = two_tx_behavior();
        // b after a is forced: T0 received a's report before requesting b,
        // so affects(β) orders a's events before b's. Ordering b < a makes
        // R_event clash with affects → inconsistent.
        let order = SiblingOrder::from_lists([(TxId::ROOT, vec![b, a])]);
        assert!(matches!(
            check_suitable(&tree, &beta, TxId::ROOT, &order),
            Err(UnsuitableReason::Inconsistent(_))
        ));
    }

    #[test]
    fn missing_sibling_pair_is_unsuitable() {
        let (tree, a, b, beta) = two_tx_behavior();
        let order = SiblingOrder::from_lists([(TxId::ROOT, Vec::<TxId>::new())]);
        match check_suitable(&tree, &beta, TxId::ROOT, &order) {
            Err(UnsuitableReason::UnorderedSiblings(x, y)) => {
                assert!((x == a && y == b) || (x == b && y == a));
            }
            other => panic!("expected unordered siblings, got {other:?}"),
        }
    }

    #[test]
    fn cycle_finder_basics() {
        assert_eq!(find_cycle_vertex(&[vec![1], vec![2], vec![]]), None);
        assert!(find_cycle_vertex(&[vec![1], vec![2], vec![0]]).is_some());
        assert_eq!(find_cycle_vertex(&[]), None);
        assert!(find_cycle_vertex(&[vec![0]]).is_some(), "self-loop");
    }
}
