//! Read/write-object sequence algebra (§3): `write-sequence`, `last-write`,
//! `final-value`, their `clean-` variants, and the *current*/*safe*
//! predicates of §3.3.
//!
//! These operators are defined over arbitrary sequences of serial actions
//! (plus the naming tree), exactly as in the paper, so they apply both to
//! serial behaviors and to `serial(β)` projections of generic behaviors.

use crate::action::Action;
use crate::seq::{clean_indices, Status};
use crate::tree::{ObjId, TxId, TxTree};
use crate::value::Value;

/// Initial values for read/write objects (the paper's `d`, one per object).
///
/// Objects not explicitly set have initial value `default` (0 unless chosen
/// otherwise).
#[derive(Clone, Debug, Default)]
pub struct RwInitials {
    default: i64,
    specific: Vec<Option<i64>>,
}

impl RwInitials {
    /// All objects start at `default`.
    pub fn uniform(default: i64) -> Self {
        RwInitials {
            default,
            specific: Vec::new(),
        }
    }

    /// Set the initial value of one object.
    pub fn set(&mut self, x: ObjId, d: i64) {
        if self.specific.len() <= x.index() {
            self.specific.resize(x.index() + 1, None);
        }
        self.specific[x.index()] = Some(d);
    }

    /// The initial value `d` of object `x`.
    pub fn initial(&self, x: ObjId) -> i64 {
        self.specific
            .get(x.index())
            .copied()
            .flatten()
            .unwrap_or(self.default)
    }
}

/// Is `beta[i]` a `REQUEST_COMMIT` for a write access to `x`?
fn is_write_rc(tree: &TxTree, a: &Action, x: ObjId) -> bool {
    match a {
        Action::RequestCommit(t, _) => {
            tree.object_of(*t) == Some(x) && tree.op_of(*t).is_some_and(|op| op.is_rw_write())
        }
        _ => false,
    }
}

/// Indices of `write-sequence(β, X)`: the `REQUEST_COMMIT` events for write
/// accesses to `x` (§3.1).
pub fn write_sequence(tree: &TxTree, beta: &[Action], x: ObjId) -> Vec<usize> {
    (0..beta.len())
        .filter(|&i| is_write_rc(tree, &beta[i], x))
        .collect()
}

/// `last-write(β, X)`: the transaction of the last event of
/// `write-sequence(β, X)`, if any (§3.1).
pub fn last_write(tree: &TxTree, beta: &[Action], x: ObjId) -> Option<TxId> {
    beta.iter()
        .rev()
        .find(|a| is_write_rc(tree, a, x))
        .map(Action::subject)
}

/// `final-value(β, X)`: the value written by `last-write(β, X)`, or the
/// initial value if no write occurs (§3.1).
pub fn final_value(tree: &TxTree, beta: &[Action], x: ObjId, init: &RwInitials) -> i64 {
    match last_write(tree, beta, x) {
        Some(t) => tree
            .op_of(t)
            .and_then(|op| op.write_data())
            .expect("last_write returns a write access"),
        None => init.initial(x),
    }
}

/// `clean-last-write(β, X)`: `last-write(clean(β), X)` (§3.3).
pub fn clean_last_write(tree: &TxTree, beta: &[Action], x: ObjId) -> Option<TxId> {
    let clean = clean_indices(tree, beta);
    clean
        .iter()
        .rev()
        .map(|&i| &beta[i])
        .find(|a| is_write_rc(tree, a, x))
        .map(Action::subject)
}

/// `clean-final-value(β, X)`: `final-value(clean(β), X)` (§3.3).
pub fn clean_final_value(tree: &TxTree, beta: &[Action], x: ObjId, init: &RwInitials) -> i64 {
    match clean_last_write(tree, beta, x) {
        Some(t) => tree
            .op_of(t)
            .and_then(|op| op.write_data())
            .expect("clean_last_write returns a write access"),
        None => init.initial(x),
    }
}

/// Is the `REQUEST_COMMIT(T, v)` event at `beta[i]` *current* in `beta`?
///
/// §3.3: a read's return value must equal `clean-final-value(β', X)` where
/// `β'` is the prefix of `beta` preceding the event — the appearance of a
/// single overwritten-and-restored variable.
///
/// Returns `None` if `beta[i]` is not a `REQUEST_COMMIT` for a read access.
pub fn is_current(tree: &TxTree, beta: &[Action], i: usize, init: &RwInitials) -> Option<bool> {
    let Action::RequestCommit(t, v) = &beta[i] else {
        return None;
    };
    let x = tree.object_of(*t)?;
    if !tree.op_of(*t).is_some_and(|op| op.is_rw_read()) {
        return None;
    }
    let prefix = &beta[..i];
    Some(*v == Value::Int(clean_final_value(tree, prefix, x, init)))
}

/// Is the `REQUEST_COMMIT(T, v)` event at `beta[i]` *safe* in `beta`?
///
/// §3.3: the writer of the current value (`clean-last-write` of the prefix)
/// must be undefined or visible to the reader — otherwise the reader saw
/// "dirty data" that a later abort could revoke.
///
/// Returns `None` if `beta[i]` is not a `REQUEST_COMMIT` for a read access.
pub fn is_safe(tree: &TxTree, beta: &[Action], i: usize) -> Option<bool> {
    let Action::RequestCommit(t, _) = &beta[i] else {
        return None;
    };
    let x = tree.object_of(*t)?;
    if !tree.op_of(*t).is_some_and(|op| op.is_rw_read()) {
        return None;
    }
    let prefix = &beta[..i];
    match clean_last_write(tree, prefix, x) {
        None => Some(true),
        Some(writer) => {
            let status = Status::of(tree, prefix);
            Some(status.is_visible(tree, writer, *t))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    /// T0 ── a ── u (write 5)   [a, u commit]
    ///    └─ b ── w (write 9)   [b aborts after w's REQUEST_COMMIT]
    ///    └─ c ── r (read)
    fn example() -> (TxTree, [TxId; 6], Vec<Action>) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let c = tree.add_inner(TxId::ROOT);
        let u = tree.add_access(a, x, Op::Write(5));
        let w = tree.add_access(b, x, Op::Write(9));
        let r = tree.add_access(c, x, Op::Read);
        let beta = vec![
            Action::RequestCreate(a),
            Action::Create(a),
            Action::RequestCreate(u),
            Action::Create(u),
            Action::RequestCommit(u, Value::Ok), // 4
            Action::Commit(u),
            Action::RequestCommit(a, Value::Ok),
            Action::Commit(a), // 7: u now visible to everyone
            Action::RequestCreate(b),
            Action::Create(b),
            Action::RequestCreate(w),
            Action::Create(w),
            Action::RequestCommit(w, Value::Ok), // 12: dirty write
            Action::Abort(b),                    // 13: …revoked
            Action::RequestCreate(c),
            Action::Create(c),
            Action::RequestCreate(r),
            Action::Create(r),
            Action::RequestCommit(r, Value::Int(5)), // 18: reads u's value
        ];
        (tree, [a, b, c, u, w, r], beta)
    }

    #[test]
    fn write_sequence_and_last_write() {
        let (tree, [_, _, _, u, w, _], beta) = example();
        let ws = write_sequence(&tree, &beta, ObjId(0));
        assert_eq!(ws, vec![4, 12]);
        assert_eq!(last_write(&tree, &beta, ObjId(0)), Some(w));
        assert_eq!(last_write(&tree, &beta[..5], ObjId(0)), Some(u));
        assert_eq!(last_write(&tree, &beta[..4], ObjId(0)), None);
    }

    #[test]
    fn final_value_uses_initial_when_no_write() {
        let (tree, _, beta) = example();
        let init = RwInitials::uniform(42);
        assert_eq!(final_value(&tree, &beta[..4], ObjId(0), &init), 42);
        assert_eq!(final_value(&tree, &beta[..5], ObjId(0), &init), 5);
        assert_eq!(final_value(&tree, &beta, ObjId(0), &init), 9);
    }

    #[test]
    fn per_object_initials() {
        let mut init = RwInitials::uniform(0);
        init.set(ObjId(2), 7);
        assert_eq!(init.initial(ObjId(0)), 0);
        assert_eq!(init.initial(ObjId(2)), 7);
        assert_eq!(init.initial(ObjId(99)), 0);
    }

    #[test]
    fn clean_variants_ignore_aborted_writes() {
        let (tree, [_, _, _, u, w, _], beta) = example();
        // The whole behavior: w's write is orphaned by ABORT(b).
        assert_eq!(clean_last_write(&tree, &beta, ObjId(0)), Some(u));
        let init = RwInitials::default();
        assert_eq!(clean_final_value(&tree, &beta, ObjId(0), &init), 5);
        // But in the prefix before ABORT(b), w's write is still clean.
        assert_eq!(clean_last_write(&tree, &beta[..13], ObjId(0)), Some(w));
    }

    #[test]
    fn read_is_current_and_safe_after_abort_restoration() {
        let (tree, _, beta) = example();
        let init = RwInitials::default();
        // The read at index 18 returns 5 = clean-final-value of its prefix
        // (w's 9 was erased by ABORT(b)), and u is visible: current + safe.
        assert_eq!(is_current(&tree, &beta, 18, &init), Some(true));
        assert_eq!(is_safe(&tree, &beta, 18), Some(true));
        // Non-read events yield None.
        assert_eq!(is_current(&tree, &beta, 4, &init), None);
        assert_eq!(is_safe(&tree, &beta, 12), None);
    }

    #[test]
    fn dirty_read_is_unsafe() {
        // Reader runs while w's write is live (b not yet completed).
        let (tree, [_, _b, _, _, w, r], mut beta) = example();
        beta.truncate(13); // cut before ABORT(b)
        beta.extend([
            Action::RequestCreate(r),
            Action::Create(r),
            Action::RequestCommit(r, Value::Int(9)), // reads dirty 9
        ]);
        let init = RwInitials::default();
        let i = beta.len() - 1;
        // It *is* current (9 is the clean final value of the prefix: no
        // abort has happened yet) but *unsafe* (w not visible to r).
        assert_eq!(is_current(&tree, &beta, i, &init), Some(true));
        assert_eq!(is_safe(&tree, &beta, i), Some(false));
        assert_eq!(last_write(&tree, &beta[..i], ObjId(0)), Some(w));
    }

    #[test]
    fn stale_read_is_not_current() {
        let (tree, [_, _, _, _, _, r], mut beta) = example();
        // Read returns the initial value 0 even though u committed 5.
        beta.push(Action::RequestCreate(r));
        beta.push(Action::Create(r));
        beta.push(Action::RequestCommit(r, Value::Int(0)));
        let init = RwInitials::default();
        let i = beta.len() - 1;
        assert_eq!(is_current(&tree, &beta, i, &init), Some(false));
    }
}
