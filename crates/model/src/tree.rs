//! Transaction naming trees ("system types" in the paper, §2.2).
//!
//! The paper models the pattern of transaction nesting as a (conceptually
//! infinite) tree of *transaction names* rooted at the mythical transaction
//! `T0`. Leaves of the tree are *accesses*, each bound to a single object
//! name; internal nodes are ordinary (non-access) transactions. Here the tree
//! is materialized lazily: components register names as they are needed, and
//! checkers receive the finished tree alongside a behavior.

use crate::op::Op;
use std::fmt;

/// A transaction name: an index into a [`TxTree`] arena.
///
/// `TxId::ROOT` is the paper's `T0`, the mythical root transaction that
/// models the environment of the transaction system.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxId(pub u32);

impl TxId {
    /// The root transaction name `T0`.
    pub const ROOT: TxId = TxId(0);

    /// The arena index of this name.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == TxId::ROOT {
            write!(f, "T0")
        } else {
            write!(f, "T{}", self.0)
        }
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An object name `X`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

impl ObjId {
    /// The arena index of this name.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// What kind of node a transaction name is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxKind {
    /// The root `T0`.
    Root,
    /// An internal (non-access) transaction.
    Inner,
    /// An access: a leaf bound to one object, performing one operation.
    ///
    /// As in the paper, all parameters of an access are encoded in its name
    /// (the paper's `kind(T)` and `data(T)` functions decode them); here the
    /// whole operation is carried as an [`Op`].
    Access {
        /// The object this access is bound to.
        object: ObjId,
        /// The operation this access performs.
        op: Op,
    },
}

#[derive(Clone, Debug)]
struct Node {
    parent: Option<TxId>,
    depth: u32,
    kind: TxKind,
    children: Vec<TxId>,
}

/// The transaction naming tree for one system type.
///
/// Provides the standard tree vocabulary used throughout the paper:
/// parent, children, ancestor (reflexive), descendant (reflexive), and
/// least common ancestor.
///
/// ```
/// use nt_model::{Op, TxId, TxTree};
/// let mut tree = TxTree::new();
/// let x = tree.add_object();
/// let a = tree.add_inner(TxId::ROOT);
/// let u = tree.add_access(a, x, Op::Read);
/// assert!(tree.is_ancestor(a, u));
/// assert!(tree.is_ancestor(u, u), "reflexive");
/// assert_eq!(tree.lca(u, a), a);
/// assert_eq!(tree.child_toward(TxId::ROOT, u), a);
/// ```
#[derive(Clone, Debug)]
pub struct TxTree {
    nodes: Vec<Node>,
    num_objects: u32,
}

impl Default for TxTree {
    fn default() -> Self {
        Self::new()
    }
}

impl TxTree {
    /// Create a tree containing only the root `T0`.
    pub fn new() -> Self {
        TxTree {
            nodes: vec![Node {
                parent: None,
                depth: 0,
                kind: TxKind::Root,
                children: Vec::new(),
            }],
            num_objects: 0,
        }
    }

    /// Number of registered transaction names (including `T0`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff only `T0` is registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of distinct object names mentioned by accesses.
    pub fn num_objects(&self) -> usize {
        self.num_objects as usize
    }

    /// Register a fresh object name.
    pub fn add_object(&mut self) -> ObjId {
        let id = ObjId(self.num_objects);
        self.num_objects += 1;
        id
    }

    /// Register `n` fresh object names, returning them in order.
    pub fn add_objects(&mut self, n: usize) -> Vec<ObjId> {
        (0..n).map(|_| self.add_object()).collect()
    }

    fn push(&mut self, parent: TxId, kind: TxKind) -> TxId {
        assert!(
            parent.index() < self.nodes.len(),
            "parent {parent:?} not registered"
        );
        assert!(
            !self.is_access(parent),
            "accesses are leaves; cannot add a child to {parent:?}"
        );
        let id = TxId(self.nodes.len() as u32);
        let depth = self.nodes[parent.index()].depth + 1;
        self.nodes.push(Node {
            parent: Some(parent),
            depth,
            kind,
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Register a fresh non-access transaction name under `parent`.
    pub fn add_inner(&mut self, parent: TxId) -> TxId {
        self.push(parent, TxKind::Inner)
    }

    /// Register a fresh access name under `parent`, bound to `object`
    /// and performing `op`.
    pub fn add_access(&mut self, parent: TxId, object: ObjId, op: Op) -> TxId {
        if object.0 >= self.num_objects {
            self.num_objects = object.0 + 1;
        }
        self.push(parent, TxKind::Access { object, op })
    }

    /// The parent of `t`, or `None` for `T0`.
    #[inline]
    pub fn parent(&self, t: TxId) -> Option<TxId> {
        self.nodes[t.index()].parent
    }

    /// The kind of node `t` is.
    #[inline]
    pub fn kind(&self, t: TxId) -> &TxKind {
        &self.nodes[t.index()].kind
    }

    /// Depth of `t` (`T0` has depth 0).
    #[inline]
    pub fn depth(&self, t: TxId) -> u32 {
        self.nodes[t.index()].depth
    }

    /// The children of `t`, in registration order.
    #[inline]
    pub fn children(&self, t: TxId) -> &[TxId] {
        &self.nodes[t.index()].children
    }

    /// True iff `t` is an access (a leaf bound to an object).
    #[inline]
    pub fn is_access(&self, t: TxId) -> bool {
        matches!(self.nodes[t.index()].kind, TxKind::Access { .. })
    }

    /// The object accessed by `t`, if `t` is an access.
    #[inline]
    pub fn object_of(&self, t: TxId) -> Option<ObjId> {
        match self.nodes[t.index()].kind {
            TxKind::Access { object, .. } => Some(object),
            _ => None,
        }
    }

    /// The operation performed by `t`, if `t` is an access.
    #[inline]
    pub fn op_of(&self, t: TxId) -> Option<&Op> {
        match &self.nodes[t.index()].kind {
            TxKind::Access { op, .. } => Some(op),
            _ => None,
        }
    }

    /// True iff `a` is an ancestor of `b`. Reflexive, as in the paper:
    /// "a transaction is its own ancestor and descendant."
    pub fn is_ancestor(&self, a: TxId, b: TxId) -> bool {
        let da = self.depth(a);
        let mut cur = b;
        let mut dc = self.depth(b);
        while dc > da {
            cur = self.parent(cur).expect("non-root has a parent");
            dc -= 1;
        }
        cur == a
    }

    /// True iff `a` is a (reflexive) descendant of `b`.
    #[inline]
    pub fn is_descendant(&self, a: TxId, b: TxId) -> bool {
        self.is_ancestor(b, a)
    }

    /// True iff `a` is a proper ancestor of `b` (ancestor and not equal).
    #[inline]
    pub fn is_proper_ancestor(&self, a: TxId, b: TxId) -> bool {
        a != b && self.is_ancestor(a, b)
    }

    /// Iterator over the (reflexive) ancestors of `t`, from `t` up to `T0`.
    pub fn ancestors(&self, t: TxId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            cur: Some(t),
        }
    }

    /// The least common ancestor of `a` and `b`.
    pub fn lca(&self, a: TxId, b: TxId) -> TxId {
        let (mut a, mut b) = (a, b);
        let (mut da, mut db) = (self.depth(a), self.depth(b));
        while da > db {
            a = self.parent(a).expect("non-root has a parent");
            da -= 1;
        }
        while db > da {
            b = self.parent(b).expect("non-root has a parent");
            db -= 1;
        }
        while a != b {
            a = self.parent(a).expect("non-root has a parent");
            b = self.parent(b).expect("non-root has a parent");
        }
        a
    }

    /// The child of `ancestor` lying on the path down to `descendant`.
    ///
    /// Requires that `ancestor` is a *proper* ancestor of `descendant`.
    /// This is the map used by the serialization-graph construction to
    /// project a conflict between accesses `U`, `U'` up to the pair of
    /// siblings below `lca(U, U')`.
    pub fn child_toward(&self, ancestor: TxId, descendant: TxId) -> TxId {
        debug_assert!(
            self.is_proper_ancestor(ancestor, descendant),
            "{ancestor:?} must be a proper ancestor of {descendant:?}"
        );
        let target = self.depth(ancestor) + 1;
        let mut cur = descendant;
        while self.depth(cur) > target {
            cur = self.parent(cur).expect("non-root has a parent");
        }
        cur
    }

    /// True iff `a` and `b` are siblings (distinct, same parent).
    pub fn are_siblings(&self, a: TxId, b: TxId) -> bool {
        a != b && self.parent(a).is_some() && self.parent(a) == self.parent(b)
    }

    /// All registered transaction names, in registration order.
    pub fn all_tx(&self) -> impl Iterator<Item = TxId> + '_ {
        (0..self.nodes.len() as u32).map(TxId)
    }

    /// All registered access names.
    pub fn accesses(&self) -> impl Iterator<Item = TxId> + '_ {
        self.all_tx().filter(|&t| self.is_access(t))
    }
}

/// Iterator over reflexive ancestors, from the starting name up to `T0`.
pub struct Ancestors<'a> {
    tree: &'a TxTree,
    cur: Option<TxId>,
}

impl Iterator for Ancestors<'_> {
    type Item = TxId;

    fn next(&mut self) -> Option<TxId> {
        let cur = self.cur?;
        self.cur = self.tree.parent(cur);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    fn sample() -> (TxTree, TxId, TxId, TxId, TxId, TxId) {
        // T0 -> a -> (c, d[access]) ; T0 -> b -> e[access]
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let c = tree.add_inner(a);
        let d = tree.add_access(a, x, Op::Read);
        let e = tree.add_access(b, x, Op::Write(7));
        (tree, a, b, c, d, e)
    }

    #[test]
    fn parents_and_depths() {
        let (tree, a, b, c, d, e) = sample();
        assert_eq!(tree.parent(TxId::ROOT), None);
        assert_eq!(tree.parent(a), Some(TxId::ROOT));
        assert_eq!(tree.parent(c), Some(a));
        assert_eq!(tree.parent(d), Some(a));
        assert_eq!(tree.parent(e), Some(b));
        assert_eq!(tree.depth(TxId::ROOT), 0);
        assert_eq!(tree.depth(a), 1);
        assert_eq!(tree.depth(d), 2);
    }

    #[test]
    fn ancestor_is_reflexive() {
        let (tree, a, _, c, _, _) = sample();
        assert!(tree.is_ancestor(a, a));
        assert!(tree.is_ancestor(a, c));
        assert!(tree.is_ancestor(TxId::ROOT, c));
        assert!(!tree.is_ancestor(c, a));
        assert!(tree.is_descendant(c, a));
        assert!(!tree.is_proper_ancestor(a, a));
        assert!(tree.is_proper_ancestor(a, c));
    }

    #[test]
    fn lca_and_child_toward() {
        let (tree, a, b, c, d, e) = sample();
        assert_eq!(tree.lca(c, d), a);
        assert_eq!(tree.lca(d, e), TxId::ROOT);
        assert_eq!(tree.lca(a, a), a);
        assert_eq!(tree.lca(a, c), a);
        assert_eq!(tree.child_toward(TxId::ROOT, d), a);
        assert_eq!(tree.child_toward(TxId::ROOT, e), b);
        assert_eq!(tree.child_toward(a, d), d);
    }

    #[test]
    fn ancestors_iterator_reaches_root() {
        let (tree, a, _, c, _, _) = sample();
        let anc: Vec<_> = tree.ancestors(c).collect();
        assert_eq!(anc, vec![c, a, TxId::ROOT]);
    }

    #[test]
    fn access_metadata() {
        let (tree, a, _, _, d, e) = sample();
        assert!(tree.is_access(d));
        assert!(!tree.is_access(a));
        assert_eq!(tree.object_of(d), Some(ObjId(0)));
        assert_eq!(tree.op_of(e), Some(&Op::Write(7)));
        assert_eq!(tree.op_of(a), None);
    }

    #[test]
    fn siblings() {
        let (tree, a, b, c, d, _) = sample();
        assert!(tree.are_siblings(a, b));
        assert!(tree.are_siblings(c, d));
        assert!(!tree.are_siblings(a, c));
        assert!(!tree.are_siblings(a, a));
    }

    #[test]
    #[should_panic(expected = "accesses are leaves")]
    fn cannot_add_child_to_access() {
        let (mut tree, _, _, _, d, _) = sample();
        tree.add_inner(d);
    }

    #[test]
    fn accesses_iterator() {
        let (tree, _, _, _, d, e) = sample();
        let acc: Vec<_> = tree.accesses().collect();
        assert_eq!(acc, vec![d, e]);
    }
}
