//! Syntactic well-formedness conditions (§2.2.1, §2.2.2, §2.3.1).
//!
//! Three validators: transaction well-formedness (the constraints every
//! transaction automaton must preserve), serial object well-formedness (the
//! alternating invoke/respond discipline of object interfaces), and the
//! simple-database constraints that any reasonable transaction-processing
//! system satisfies. The simulator's outputs are checked against all three
//! in tests.

use crate::action::Action;
use crate::tree::{ObjId, TxId, TxTree};
use std::collections::HashSet;

/// A violation of a well-formedness discipline, with the offending index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Index of the offending event.
    pub at: usize,
    /// Human-readable description of the violated constraint.
    pub what: String,
}

fn violation(at: usize, what: impl Into<String>) -> Violation {
    Violation {
        at,
        what: what.into(),
    }
}

/// Statically check structural well-formedness of a naming tree: root at
/// index 0, consistent parent/child links and depths, accesses as leaves
/// bound to registered objects.
///
/// [`TxTree`]'s constructors maintain these invariants, so violations can
/// only arise from future construction paths (deserialization, fuzzing,
/// hand-built fixtures); static analyzers check them defensively before
/// reasoning about a tree. `at` in each returned [`Violation`] is the arena
/// index of the offending transaction name.
pub fn check_tree(tree: &TxTree) -> Vec<Violation> {
    let mut out = Vec::new();
    for t in tree.all_tx() {
        let i = t.index();
        match tree.parent(t) {
            None => {
                if t != TxId::ROOT {
                    out.push(violation(i, format!("{t} has no parent but is not T0")));
                }
                if tree.depth(t) != 0 {
                    out.push(violation(
                        i,
                        format!("{t} is parentless with nonzero depth"),
                    ));
                }
            }
            Some(p) => {
                if t == TxId::ROOT {
                    out.push(violation(i, "T0 must not have a parent".to_string()));
                    continue;
                }
                if p.index() >= tree.len() {
                    out.push(violation(i, format!("{t} has unregistered parent {p}")));
                    continue;
                }
                if !tree.children(p).contains(&t) {
                    out.push(violation(i, format!("{t} missing from children of {p}")));
                }
                if tree.depth(t) != tree.depth(p) + 1 {
                    out.push(violation(
                        i,
                        format!("depth of {t} is not one more than depth of its parent {p}"),
                    ));
                }
            }
        }
        for &c in tree.children(t) {
            if c.index() >= tree.len() {
                out.push(violation(i, format!("{t} lists unregistered child {c}")));
            } else if tree.parent(c) != Some(t) {
                out.push(violation(
                    i,
                    format!("child {c} of {t} does not point back"),
                ));
            }
        }
        if tree.is_access(t) {
            if !tree.children(t).is_empty() {
                out.push(violation(i, format!("access {t} has children")));
            }
            if let Some(x) = tree.object_of(t) {
                if x.index() >= tree.num_objects() {
                    out.push(violation(i, format!("access {t} touches unregistered {x}")));
                }
            }
        }
    }
    out
}

/// Check serial object well-formedness for `x` (§2.2.2): the projection of
/// `beta` on external actions of `S_x` must be a prefix of
/// `CREATE(T1) REQUEST_COMMIT(T1,v1) CREATE(T2) REQUEST_COMMIT(T2,v2) …`
/// with pairwise-distinct access names.
pub fn check_serial_object_wf(tree: &TxTree, beta: &[Action], x: ObjId) -> Result<(), Violation> {
    let mut active: Option<TxId> = None;
    let mut seen: HashSet<TxId> = HashSet::new();
    for (i, a) in beta.iter().enumerate() {
        if a.object(tree) != Some(x) {
            continue;
        }
        match a {
            Action::Create(t) => {
                if active.is_some() {
                    return Err(violation(
                        i,
                        format!("CREATE({t}) while another access is active"),
                    ));
                }
                if !seen.insert(*t) {
                    return Err(violation(i, format!("duplicate CREATE({t})")));
                }
                active = Some(*t);
            }
            Action::RequestCommit(t, _) => {
                if active != Some(*t) {
                    return Err(violation(
                        i,
                        format!("REQUEST_COMMIT for {t} which is not the active access"),
                    ));
                }
                active = None;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Check transaction well-formedness for non-access `t` (§2.2.1) against the
/// projection `beta|t`. Constraints:
///
/// * the first event of `t` is its `CREATE`, which occurs at most once;
/// * `t` requests each child at most once, only after its own `CREATE`;
/// * at most one report per child, and only for requested children;
/// * `t` requests to commit at most once, only after receiving reports for
///   all children whose creation it requested, and performs no further
///   action afterwards.
pub fn check_transaction_wf(tree: &TxTree, beta: &[Action], t: TxId) -> Result<(), Violation> {
    let mut created = false;
    let mut requested: HashSet<TxId> = HashSet::new();
    let mut reported: HashSet<TxId> = HashSet::new();
    let mut commit_requested = false;
    for (i, a) in beta.iter().enumerate() {
        if a.transaction(tree) != Some(t) {
            continue;
        }
        if commit_requested {
            return Err(violation(i, format!("{t} acted after REQUEST_COMMIT")));
        }
        match a {
            Action::Create(_) => {
                if created {
                    return Err(violation(i, format!("duplicate CREATE({t})")));
                }
                created = true;
            }
            Action::RequestCreate(c) => {
                if !created {
                    return Err(violation(i, format!("{t} requested child before CREATE")));
                }
                if tree.parent(*c) != Some(t) {
                    return Err(violation(i, format!("{c} is not a child of {t}")));
                }
                if !requested.insert(*c) {
                    return Err(violation(i, format!("duplicate REQUEST_CREATE({c})")));
                }
            }
            Action::ReportCommit(c, _) | Action::ReportAbort(c) => {
                if !requested.contains(c) {
                    return Err(violation(i, format!("report for unrequested child {c}")));
                }
                if !reported.insert(*c) {
                    return Err(violation(i, format!("duplicate report for child {c}")));
                }
            }
            Action::RequestCommit(_, _) => {
                if !created {
                    return Err(violation(i, format!("{t} requested commit before CREATE")));
                }
                if reported.len() != requested.len() {
                    return Err(violation(
                        i,
                        format!("{t} requested commit with outstanding children"),
                    ));
                }
                commit_requested = true;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Check the simple-database constraints (§2.3.1) over a whole behavior:
///
/// * no `CREATE`, `COMMIT`, or `ABORT` without the appropriate prior request;
/// * no transaction has two creation events or two completion events
///   (in particular never both `COMMIT` and `ABORT`);
/// * no report without the corresponding completion, and at most one report
///   per transaction;
/// * no response (access `REQUEST_COMMIT`) without a prior invocation
///   (`CREATE`), and at most one response per access.
pub fn check_simple_behavior(tree: &TxTree, beta: &[Action]) -> Result<(), Violation> {
    let mut requested: HashSet<TxId> = HashSet::new();
    let mut created: HashSet<TxId> = HashSet::new();
    let mut commit_requested: HashSet<TxId> = HashSet::new();
    let mut committed: HashSet<TxId> = HashSet::new();
    let mut aborted: HashSet<TxId> = HashSet::new();
    let mut reported: HashSet<TxId> = HashSet::new();
    for (i, a) in beta.iter().enumerate() {
        match a {
            Action::RequestCreate(t) => {
                if !requested.insert(*t) {
                    return Err(violation(i, format!("duplicate REQUEST_CREATE({t})")));
                }
            }
            Action::Create(t) => {
                if *t != TxId::ROOT && !requested.contains(t) {
                    return Err(violation(i, format!("CREATE({t}) without request")));
                }
                if !created.insert(*t) {
                    return Err(violation(i, format!("duplicate CREATE({t})")));
                }
            }
            Action::RequestCommit(t, _) => {
                if tree.is_access(*t) && !created.contains(t) {
                    return Err(violation(i, format!("response for uninvoked access {t}")));
                }
                if !commit_requested.insert(*t) {
                    return Err(violation(i, format!("duplicate REQUEST_COMMIT({t})")));
                }
            }
            Action::Commit(t) => {
                if !commit_requested.contains(t) {
                    return Err(violation(i, format!("COMMIT({t}) without request")));
                }
                if aborted.contains(t) {
                    return Err(violation(i, format!("COMMIT({t}) after ABORT({t})")));
                }
                if !committed.insert(*t) {
                    return Err(violation(i, format!("duplicate COMMIT({t})")));
                }
            }
            Action::Abort(t) => {
                if !requested.contains(t) {
                    return Err(violation(i, format!("ABORT({t}) without request")));
                }
                if committed.contains(t) {
                    return Err(violation(i, format!("ABORT({t}) after COMMIT({t})")));
                }
                if !aborted.insert(*t) {
                    return Err(violation(i, format!("duplicate ABORT({t})")));
                }
            }
            Action::ReportCommit(t, _) => {
                if !committed.contains(t) {
                    return Err(violation(i, format!("REPORT_COMMIT({t}) before COMMIT")));
                }
                if !reported.insert(*t) {
                    return Err(violation(i, format!("duplicate report for {t}")));
                }
            }
            Action::ReportAbort(t) => {
                if !aborted.contains(t) {
                    return Err(violation(i, format!("REPORT_ABORT({t}) before ABORT")));
                }
                if !reported.insert(*t) {
                    return Err(violation(i, format!("duplicate report for {t}")));
                }
            }
            Action::InformCommit(_, t) => {
                if !committed.contains(t) {
                    return Err(violation(i, format!("INFORM_COMMIT({t}) before COMMIT")));
                }
            }
            Action::InformAbort(_, t) => {
                if !aborted.contains(t) {
                    return Err(violation(i, format!("INFORM_ABORT({t}) before ABORT")));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::value::Value;

    fn setup() -> (TxTree, TxId, TxId, TxId) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let u = tree.add_access(a, x, Op::Read);
        let w = tree.add_access(a, x, Op::Write(2));
        (tree, a, u, w)
    }

    #[test]
    fn object_wf_accepts_alternation() {
        let (tree, _a, u, w) = setup();
        let beta = vec![
            Action::Create(u),
            Action::RequestCommit(u, Value::Int(0)),
            Action::Create(w),
            Action::RequestCommit(w, Value::Ok),
        ];
        assert!(check_serial_object_wf(&tree, &beta, ObjId(0)).is_ok());
        // A trailing unanswered CREATE is fine (prefix property).
        let beta2 = vec![Action::Create(u)];
        assert!(check_serial_object_wf(&tree, &beta2, ObjId(0)).is_ok());
    }

    #[test]
    fn object_wf_rejects_concurrent_and_duplicate_invocations() {
        let (tree, _a, u, w) = setup();
        let overlapping = vec![Action::Create(u), Action::Create(w)];
        assert!(check_serial_object_wf(&tree, &overlapping, ObjId(0)).is_err());
        let dup = vec![
            Action::Create(u),
            Action::RequestCommit(u, Value::Int(0)),
            Action::Create(u),
        ];
        assert!(check_serial_object_wf(&tree, &dup, ObjId(0)).is_err());
        let unsolicited = vec![Action::RequestCommit(u, Value::Int(0))];
        assert!(check_serial_object_wf(&tree, &unsolicited, ObjId(0)).is_err());
    }

    #[test]
    fn transaction_wf_accepts_normal_run() {
        let (tree, a, u, _w) = setup();
        let beta = vec![
            Action::Create(a),
            Action::RequestCreate(u),
            Action::ReportCommit(u, Value::Int(0)),
            Action::RequestCommit(a, Value::Ok),
        ];
        assert!(check_transaction_wf(&tree, &beta, a).is_ok());
    }

    #[test]
    fn transaction_wf_rejects_violations() {
        let (tree, a, u, w) = setup();
        // Child requested before CREATE.
        let b1 = vec![Action::RequestCreate(u)];
        assert!(check_transaction_wf(&tree, &b1, a).is_err());
        // Commit with an outstanding child.
        let b2 = vec![
            Action::Create(a),
            Action::RequestCreate(u),
            Action::RequestCommit(a, Value::Ok),
        ];
        assert!(check_transaction_wf(&tree, &b2, a).is_err());
        // Activity after REQUEST_COMMIT.
        let b3 = vec![
            Action::Create(a),
            Action::RequestCommit(a, Value::Ok),
            Action::RequestCreate(w),
        ];
        assert!(check_transaction_wf(&tree, &b3, a).is_err());
        // Report for an unrequested child.
        let b4 = vec![Action::Create(a), Action::ReportAbort(u)];
        assert!(check_transaction_wf(&tree, &b4, a).is_err());
    }

    #[test]
    fn simple_behavior_accepts_normal_run() {
        let (tree, a, u, _w) = setup();
        let beta = vec![
            Action::RequestCreate(a),
            Action::Create(a),
            Action::RequestCreate(u),
            Action::Create(u),
            Action::RequestCommit(u, Value::Int(0)),
            Action::Commit(u),
            Action::InformCommit(ObjId(0), u),
            Action::ReportCommit(u, Value::Int(0)),
            Action::RequestCommit(a, Value::Ok),
            Action::Commit(a),
            Action::ReportCommit(a, Value::Ok),
        ];
        assert!(check_simple_behavior(&tree, &beta).is_ok());
    }

    #[test]
    fn simple_behavior_rejects_each_violation_kind() {
        let (tree, a, u, _w) = setup();
        let cases: Vec<Vec<Action>> = vec![
            vec![Action::Create(a)],                           // create without request
            vec![Action::RequestCreate(a), Action::Commit(a)], // commit without request
            vec![Action::RequestCreate(a), Action::Abort(a), Action::Abort(a)], // dup abort
            vec![
                Action::RequestCreate(a),
                Action::Create(a),
                Action::RequestCommit(a, Value::Ok),
                Action::Commit(a),
                Action::Abort(a),
            ], // abort after commit
            vec![Action::ReportAbort(a)],                      // report without completion
            vec![Action::RequestCommit(u, Value::Int(0))],     // response w/o invocation
            vec![Action::InformCommit(ObjId(0), u)],           // inform before commit
        ];
        for (k, beta) in cases.iter().enumerate() {
            assert!(
                check_simple_behavior(&tree, beta).is_err(),
                "case {k} should be rejected"
            );
        }
    }

    #[test]
    fn check_tree_accepts_constructed_trees() {
        let (tree, _a, _u, _w) = setup();
        assert_eq!(check_tree(&tree), Vec::new());
        assert_eq!(check_tree(&TxTree::new()), Vec::new());
    }

    #[test]
    fn abort_without_create_is_allowed() {
        // The serial scheduler may abort a transaction that was requested
        // but never created; the simple database permits this too.
        let (tree, a, _u, _w) = setup();
        let beta = vec![
            Action::RequestCreate(a),
            Action::Abort(a),
            Action::ReportAbort(a),
        ];
        assert!(check_simple_behavior(&tree, &beta).is_ok());
    }
}
