//! Sibling orders and their extensions `R_trans` and `R_event(β)` (§2.3.2).
//!
//! A *sibling order* is an irreflexive partial order relating only siblings
//! in the naming tree. The Serializability Theorem consumes one that is
//! *suitable* for a behavior; the serialization-graph construction produces
//! one by topologically sorting each per-parent graph.

use crate::action::Action;
use crate::tree::{TxId, TxTree};
use std::collections::HashMap;

/// A sibling order: for each parent, a total order over (some of) its
/// children. The union over parents is the paper's partial order `R`.
#[derive(Clone, Debug, Default)]
pub struct SiblingOrder {
    /// child → (parent, position of child in parent's chosen total order)
    pos: HashMap<TxId, (TxId, u32)>,
}

impl SiblingOrder {
    /// Build from per-parent ordered child lists.
    ///
    /// Panics (debug) if a child appears under two parents or twice.
    pub fn from_lists<I, L>(lists: I) -> Self
    where
        I: IntoIterator<Item = (TxId, L)>,
        L: IntoIterator<Item = TxId>,
    {
        let mut pos = HashMap::new();
        for (parent, children) in lists {
            for (i, c) in children.into_iter().enumerate() {
                let prev = pos.insert(c, (parent, i as u32));
                debug_assert!(prev.is_none(), "duplicate child {c:?} in sibling order");
            }
        }
        SiblingOrder { pos }
    }

    /// Does the order relate `a` before `b`? (`Some(true)`: a < b;
    /// `Some(false)`: b < a; `None`: unordered or not siblings.)
    pub fn orders(&self, a: TxId, b: TxId) -> Option<bool> {
        if a == b {
            return None;
        }
        let (pa, ia) = *self.pos.get(&a)?;
        let (pb, ib) = *self.pos.get(&b)?;
        if pa != pb || ia == ib {
            return None;
        }
        Some(ia < ib)
    }

    /// True iff the order relates the sibling pair `{a, b}` at all.
    pub fn relates(&self, a: TxId, b: TxId) -> bool {
        self.orders(a, b).is_some()
    }

    /// The paper's `R_trans`: `(a, b) ∈ R_trans` iff there are ancestors
    /// `U` of `a` and `U'` of `b` with `(U, U') ∈ R`. Since `R` only
    /// relates siblings, `U`/`U'` are the children of `lca(a, b)` on the
    /// respective paths; the relation is empty when one argument is an
    /// ancestor of the other.
    ///
    /// Returns `Some(true)` iff `(a, b) ∈ R_trans`, `Some(false)` iff
    /// `(b, a) ∈ R_trans`, `None` if unrelated.
    pub fn r_trans(&self, tree: &TxTree, a: TxId, b: TxId) -> Option<bool> {
        if a == b {
            return None;
        }
        let l = tree.lca(a, b);
        if l == a || l == b {
            return None; // ancestor-related: R_trans never applies
        }
        let u = tree.child_toward(l, a);
        let u2 = tree.child_toward(l, b);
        self.orders(u, u2)
    }

    /// The paper's `R_event(β)` on two *events* (given by their actions):
    /// related iff both have lowtransactions and those are `R_trans`-related.
    pub fn r_event(&self, tree: &TxTree, phi: &Action, pi: &Action) -> Option<bool> {
        let low1 = phi.lowtransaction(tree)?;
        let low2 = pi.lowtransaction(tree)?;
        self.r_trans(tree, low1, low2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::value::Value;

    /// T0 children: a, b (ordered a < b); a children: c, d (ordered d < c).
    fn setup() -> (TxTree, TxId, TxId, TxId, TxId, SiblingOrder) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let c = tree.add_access(a, x, Op::Read);
        let d = tree.add_access(a, x, Op::Write(1));
        let order = SiblingOrder::from_lists([(TxId::ROOT, vec![a, b]), (a, vec![d, c])]);
        (tree, a, b, c, d, order)
    }

    #[test]
    fn orders_siblings_only() {
        let (_, a, b, c, d, order) = setup();
        assert_eq!(order.orders(a, b), Some(true));
        assert_eq!(order.orders(b, a), Some(false));
        assert_eq!(order.orders(d, c), Some(true));
        assert_eq!(order.orders(a, a), None);
        assert_eq!(order.orders(a, c), None, "not siblings");
    }

    #[test]
    fn r_trans_projects_to_lca_children() {
        let (tree, a, b, c, d, order) = setup();
        // c under a, b at top: lca = T0, children a vs b, a < b.
        assert_eq!(order.r_trans(&tree, c, b), Some(true));
        assert_eq!(order.r_trans(&tree, b, d), Some(false));
        // Ancestor-related pairs are never R_trans-related.
        assert_eq!(order.r_trans(&tree, a, c), None);
        assert_eq!(order.r_trans(&tree, c, a), None);
        // Siblings directly.
        assert_eq!(order.r_trans(&tree, d, c), Some(true));
    }

    #[test]
    fn r_event_uses_lowtransactions() {
        let (tree, _a, b, c, _d, order) = setup();
        // lowtransaction(COMMIT(c)) = c, lowtransaction(CREATE(b)) = b.
        assert_eq!(
            order.r_event(&tree, &Action::Commit(c), &Action::Create(b)),
            Some(true)
        );
        // Events of the same transaction are unrelated by R_event.
        assert_eq!(
            order.r_event(
                &tree,
                &Action::Create(b),
                &Action::RequestCommit(b, Value::Ok)
            ),
            None
        );
    }

    #[test]
    fn partial_coverage() {
        let (tree, _, _, c, d, _) = setup();
        let partial = SiblingOrder::from_lists([(TxId::ROOT, Vec::<TxId>::new())]);
        assert_eq!(partial.orders(c, d), None);
        assert_eq!(partial.r_trans(&tree, c, d), None);
        assert!(!partial.relates(c, d));
    }
}
