//! Sequence algebra over behaviors: the derived operators of §2.2.4–§2.3
//! (`visible`, `orphan`, `live`, `clean`, `operations`, `perform`, projections).
//!
//! All operators work on plain `&[Action]` slices plus the naming tree, and
//! return *indices* into the original slice wherever the identity of events
//! matters (the paper reasons about *events* — occurrences — not actions).

use crate::action::Action;
use crate::tree::{ObjId, TxId, TxTree};
use crate::value::Value;

/// Completion status of every transaction in a behavior: which names have a
/// `COMMIT` event and which have an `ABORT` event.
///
/// Backed by dense bitmaps over the tree arena, so queries are O(1) and
/// visibility/orphan walks are O(depth).
#[derive(Clone, Debug)]
pub struct Status {
    committed: Vec<bool>,
    aborted: Vec<bool>,
}

impl Status {
    /// Scan a behavior and record every completion event.
    pub fn of(tree: &TxTree, beta: &[Action]) -> Status {
        let mut committed = vec![false; tree.len()];
        let mut aborted = vec![false; tree.len()];
        for a in beta {
            match a {
                Action::Commit(t) => committed[t.index()] = true,
                Action::Abort(t) => aborted[t.index()] = true,
                _ => {}
            }
        }
        Status { committed, aborted }
    }

    /// True iff `COMMIT(t)` occurs.
    #[inline]
    pub fn is_committed(&self, t: TxId) -> bool {
        self.committed[t.index()]
    }

    /// True iff `ABORT(t)` occurs.
    #[inline]
    pub fn is_aborted(&self, t: TxId) -> bool {
        self.aborted[t.index()]
    }

    /// True iff some completion event for `t` occurs.
    #[inline]
    pub fn is_completed(&self, t: TxId) -> bool {
        self.is_committed(t) || self.is_aborted(t)
    }

    /// The paper's *visible* relation: `from` is visible to `to` iff every
    /// transaction in `ancestors(from) − ancestors(to)` has committed —
    /// equivalently, every ancestor of `from` strictly below `lca(from, to)`,
    /// including `from` itself, has committed.
    pub fn is_visible(&self, tree: &TxTree, from: TxId, to: TxId) -> bool {
        let stop = tree.lca(from, to);
        let mut cur = from;
        while cur != stop {
            if !self.is_committed(cur) {
                return false;
            }
            cur = tree.parent(cur).expect("walk ends at lca before root");
        }
        true
    }

    /// The paper's *orphan* predicate: some ancestor of `t` has aborted.
    pub fn is_orphan(&self, tree: &TxTree, t: TxId) -> bool {
        tree.ancestors(t).any(|u| self.is_aborted(u))
    }
}

/// True iff `t` is *live* in `beta`: created but not completed (§2.2.4).
pub fn is_live(beta: &[Action], t: TxId) -> bool {
    let mut created = false;
    for a in beta {
        match a {
            Action::Create(u) if *u == t => created = true,
            Action::Commit(u) | Action::Abort(u) if *u == t => return false,
            _ => {}
        }
    }
    created
}

/// Indices of the serial actions in `beta` — the `serial(β)` projection.
pub fn serial_indices(beta: &[Action]) -> Vec<usize> {
    (0..beta.len()).filter(|&i| beta[i].is_serial()).collect()
}

/// Owned `serial(β)`.
pub fn serial_projection(beta: &[Action]) -> Vec<Action> {
    beta.iter().filter(|a| a.is_serial()).cloned().collect()
}

/// Indices of `visible(β, t)`: serial actions whose `hightransaction` is
/// visible to `t` in `beta` (§2.3.2).
pub fn visible_indices(tree: &TxTree, beta: &[Action], t: TxId) -> Vec<usize> {
    let status = Status::of(tree, beta);
    visible_indices_with(tree, beta, t, &status)
}

/// As [`visible_indices`], with a precomputed [`Status`] (the status must be
/// the status *of `beta`* — visibility is judged against the whole sequence).
pub fn visible_indices_with(
    tree: &TxTree,
    beta: &[Action],
    t: TxId,
    status: &Status,
) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, a) in beta.iter().enumerate() {
        if let Some(high) = a.hightransaction(tree) {
            if status.is_visible(tree, high, t) {
                out.push(i);
            }
        }
    }
    out
}

/// Indices of `clean(β)`: serial actions whose `hightransaction` is not an
/// orphan in `beta` (§3.3).
pub fn clean_indices(tree: &TxTree, beta: &[Action]) -> Vec<usize> {
    let status = Status::of(tree, beta);
    let mut out = Vec::new();
    for (i, a) in beta.iter().enumerate() {
        if let Some(high) = a.hightransaction(tree) {
            if !status.is_orphan(tree, high) {
                out.push(i);
            }
        }
    }
    out
}

/// Materialize a projection given by `indices` of `beta`.
pub fn project(beta: &[Action], indices: &[usize]) -> Vec<Action> {
    indices.iter().map(|&i| beta[i].clone()).collect()
}

/// The projection `β|T` of §2.2.4: serial actions `π` with
/// `transaction(π) = t`.
pub fn tx_projection(tree: &TxTree, beta: &[Action], t: TxId) -> Vec<Action> {
    beta.iter()
        .filter(|a| a.transaction(tree) == Some(t))
        .cloned()
        .collect()
}

/// The projection `β|X` of §2.2.4: serial actions `π` with `object(π) = x`.
pub fn obj_projection(tree: &TxTree, beta: &[Action], x: ObjId) -> Vec<Action> {
    beta.iter()
        .filter(|a| a.object(tree) == Some(x))
        .cloned()
        .collect()
}

/// An *operation* of an object: the pair `(T, v)` of an access name and its
/// return value (§2.2).
pub type Operation = (TxId, Value);

/// The paper's `operations(·)` operator: the sequence of operations
/// corresponding to the `REQUEST_COMMIT` events for accesses in a sequence.
pub fn operations(tree: &TxTree, beta: &[Action]) -> Vec<Operation> {
    beta.iter()
        .filter_map(|a| match a {
            Action::RequestCommit(t, v) if tree.is_access(*t) => Some((*t, v.clone())),
            _ => None,
        })
        .collect()
}

/// The paper's `perform(ξ)`: `CREATE(T) REQUEST_COMMIT(T, v)` for each
/// operation `(T, v)` of `ξ`, in order (§2.3.2).
pub fn perform(ops: &[Operation]) -> Vec<Action> {
    let mut out = Vec::with_capacity(ops.len() * 2);
    for (t, v) in ops {
        out.push(Action::Create(*t));
        out.push(Action::RequestCommit(*t, v.clone()));
    }
    out
}

/// True iff no two operations in `ops` share a transaction name —
/// "serial object well-formed" for operation sequences (§2.3.2).
pub fn ops_well_formed(ops: &[Operation]) -> bool {
    let mut seen = std::collections::HashSet::with_capacity(ops.len());
    ops.iter().all(|(t, _)| seen.insert(*t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    /// Build the running example used across this module's tests:
    ///
    /// ```text
    /// T0 ── a ── u (write X 5)        a commits
    ///    └─ b ── w (read X)           b aborts
    /// ```
    fn example() -> (TxTree, TxId, TxId, TxId, TxId, Vec<Action>) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let u = tree.add_access(a, x, Op::Write(5));
        let w = tree.add_access(b, x, Op::Read);
        let beta = vec![
            Action::RequestCreate(a),
            Action::Create(a),
            Action::RequestCreate(u),
            Action::Create(u),
            Action::RequestCommit(u, Value::Ok),
            Action::Commit(u),
            Action::InformCommit(x, u),
            Action::ReportCommit(u, Value::Ok),
            Action::RequestCommit(a, Value::Ok),
            Action::Commit(a),
            Action::RequestCreate(b),
            Action::Create(b),
            Action::RequestCreate(w),
            Action::Create(w),
            Action::RequestCommit(w, Value::Int(5)),
            Action::Abort(b),
            Action::InformAbort(x, b),
        ];
        (tree, a, b, u, w, beta)
    }

    #[test]
    fn status_records_completions() {
        let (tree, a, b, u, w, beta) = example();
        let st = Status::of(&tree, &beta);
        assert!(st.is_committed(a));
        assert!(st.is_committed(u));
        assert!(st.is_aborted(b));
        assert!(!st.is_committed(b));
        assert!(!st.is_completed(w));
    }

    #[test]
    fn visibility_requires_committed_path() {
        let (tree, a, b, u, w, beta) = example();
        let st = Status::of(&tree, &beta);
        // u committed and a committed, so u is visible to T0.
        assert!(st.is_visible(&tree, u, TxId::ROOT));
        assert!(st.is_visible(&tree, a, TxId::ROOT));
        // w never committed: not visible to T0, but visible to itself and
        // to its own ancestors' descendants through the reflexive rule.
        assert!(!st.is_visible(&tree, w, TxId::ROOT));
        assert!(st.is_visible(&tree, w, w));
        // An ancestor is always visible to its descendant.
        assert!(st.is_visible(&tree, b, w));
        // u is visible to w (u's chain up to lca=T0 is committed).
        assert!(st.is_visible(&tree, u, w));
        // w is not visible to u.
        assert!(!st.is_visible(&tree, w, u));
    }

    #[test]
    fn orphan_and_live() {
        let (tree, a, b, _u, w, beta) = example();
        let st = Status::of(&tree, &beta);
        assert!(st.is_orphan(&tree, w), "descendant of aborted b");
        assert!(
            st.is_orphan(&tree, b),
            "aborted itself (reflexive ancestor)"
        );
        assert!(!st.is_orphan(&tree, a));
        assert!(!is_live(&beta, a), "a completed");
        assert!(is_live(&beta, w), "w created, never completed");
        assert!(!is_live(&beta, TxId::ROOT), "T0 never created");
    }

    #[test]
    fn serial_projection_strips_informs() {
        let (_, _, _, _, _, beta) = example();
        let s = serial_projection(&beta);
        assert_eq!(s.len(), beta.len() - 2);
        assert!(s.iter().all(Action::is_serial));
        assert_eq!(serial_indices(&beta).len(), s.len());
    }

    #[test]
    fn visible_to_root_hides_aborted_branch() {
        let (tree, _a, b, _u, w, beta) = example();
        let vis = visible_indices(&tree, &beta, TxId::ROOT);
        let acts = project(&beta, &vis);
        // Nothing of b's subtree except actions whose hightransaction is T0
        // (REQUEST_CREATE(b) has hightransaction T0, which is visible).
        assert!(acts.contains(&Action::RequestCreate(b)));
        assert!(!acts.contains(&Action::Create(b)));
        assert!(!acts.contains(&Action::Create(w)));
        assert!(!acts.contains(&Action::RequestCommit(w, Value::Int(5))));
        // ABORT(b) has hightransaction T0: visible.
        assert!(acts.contains(&Action::Abort(b)));
        // The committed branch is fully visible.
        assert!(acts.contains(&Action::RequestCommit(_u, Value::Ok)));
    }

    #[test]
    fn clean_strips_orphan_activity() {
        let (tree, _a, b, u, w, beta) = example();
        let cl = clean_indices(&tree, &beta);
        let acts = project(&beta, &cl);
        assert!(!acts.contains(&Action::Create(w)));
        assert!(!acts.contains(&Action::RequestCommit(w, Value::Int(5))));
        // ABORT(b) itself has hightransaction T0 (not an orphan): kept.
        assert!(acts.contains(&Action::Abort(b)));
        assert!(acts.contains(&Action::RequestCommit(u, Value::Ok)));
    }

    #[test]
    fn projections_by_tx_and_object() {
        let (tree, a, _b, u, _w, beta) = example();
        let pa = tx_projection(&tree, &beta, a);
        // a's actions: CREATE(a), REQUEST_CREATE(u), REPORT_COMMIT(u),
        // REQUEST_COMMIT(a).
        assert_eq!(pa.len(), 4);
        assert_eq!(pa[0], Action::Create(a));
        assert_eq!(pa[3], Action::RequestCommit(a, Value::Ok));

        let px = obj_projection(&tree, &beta, ObjId(0));
        // X's serial actions: CREATE(u), REQUEST_COMMIT(u), CREATE(w),
        // REQUEST_COMMIT(w).
        assert_eq!(px.len(), 4);
        assert_eq!(px[0], Action::Create(u));
    }

    #[test]
    fn operations_and_perform_roundtrip() {
        let (tree, _a, _b, u, w, beta) = example();
        let ops = operations(&tree, &beta);
        assert_eq!(
            ops,
            vec![(u, Value::Ok), (w, Value::Int(5))],
            "only access REQUEST_COMMITs count"
        );
        assert!(ops_well_formed(&ops));
        let performed = perform(&ops);
        assert_eq!(
            performed,
            vec![
                Action::Create(u),
                Action::RequestCommit(u, Value::Ok),
                Action::Create(w),
                Action::RequestCommit(w, Value::Int(5)),
            ]
        );
        assert!(!ops_well_formed(&[(u, Value::Ok), (u, Value::Ok)]));
    }
}
