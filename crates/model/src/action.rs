//! The global action alphabet and the paper's derived maps over actions.
//!
//! The first seven variants are the *serial actions* of §2.2.4 (the external
//! actions of the serial system); `InformCommit`/`InformAbort` are the extra
//! input actions of *generic* objects (§5.1) and are stripped by
//! [`Action::is_serial`] / the `serial(β)` projection.

use crate::tree::{ObjId, TxId, TxTree};
use crate::value::Value;
use std::fmt;

/// One action of a nested transaction system.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// `CREATE(T)`: wakes up transaction `T` (for accesses: the invocation
    /// of the operation at its object).
    Create(TxId),
    /// `REQUEST_CREATE(T)`: `parent(T)` asks for child `T` to be created.
    RequestCreate(TxId),
    /// `REQUEST_COMMIT(T, v)`: `T` announces it finished with value `v`
    /// (for accesses: the object's response to the invocation).
    RequestCommit(TxId, Value),
    /// `COMMIT(T)`: the decision that `T` commits (irrevocable).
    Commit(TxId),
    /// `ABORT(T)`: the decision that `T` aborts (irrevocable).
    Abort(TxId),
    /// `REPORT_COMMIT(T, v)`: tells `parent(T)` that `T` committed with `v`.
    ReportCommit(TxId, Value),
    /// `REPORT_ABORT(T)`: tells `parent(T)` that `T` aborted.
    ReportAbort(TxId),
    /// `INFORM_COMMIT_AT(X) OF(T)`: tells generic object `X` that `T`
    /// committed. Not a serial action.
    InformCommit(ObjId, TxId),
    /// `INFORM_ABORT_AT(X) OF(T)`: tells generic object `X` that `T`
    /// aborted. Not a serial action.
    InformAbort(ObjId, TxId),
}

impl Action {
    /// True iff this is one of the seven serial actions (§2.2.4).
    pub fn is_serial(&self) -> bool {
        !matches!(self, Action::InformCommit(..) | Action::InformAbort(..))
    }

    /// True iff this is a completion action (`COMMIT` or `ABORT`).
    pub fn is_completion(&self) -> bool {
        matches!(self, Action::Commit(_) | Action::Abort(_))
    }

    /// True iff this is a report action (`REPORT_COMMIT` or `REPORT_ABORT`).
    pub fn is_report(&self) -> bool {
        matches!(self, Action::ReportCommit(..) | Action::ReportAbort(_))
    }

    /// The transaction name syntactically mentioned by this action
    /// (the `T` in `CREATE(T)`, `COMMIT(T)`, `INFORM_ABORT_AT(X)OF(T)`, …).
    pub fn subject(&self) -> TxId {
        match self {
            Action::Create(t)
            | Action::RequestCreate(t)
            | Action::RequestCommit(t, _)
            | Action::Commit(t)
            | Action::Abort(t)
            | Action::ReportCommit(t, _)
            | Action::ReportAbort(t)
            | Action::InformCommit(_, t)
            | Action::InformAbort(_, t) => *t,
        }
    }

    /// The paper's `transaction(π)` (§2.2.4): the transaction an action
    /// "belongs to". For `REQUEST_CREATE(T')` and report actions this is
    /// `parent(T')`; for `CREATE(T)`/`REQUEST_COMMIT(T, v)` it is `T`.
    /// Undefined (`None`) for completion and inform actions.
    pub fn transaction(&self, tree: &TxTree) -> Option<TxId> {
        match self {
            Action::Create(t) | Action::RequestCommit(t, _) => Some(*t),
            Action::RequestCreate(t) | Action::ReportCommit(t, _) | Action::ReportAbort(t) => {
                tree.parent(*t)
            }
            Action::Commit(_) | Action::Abort(_) => None,
            Action::InformCommit(..) | Action::InformAbort(..) => None,
        }
    }

    /// The paper's `hightransaction(π)` (§2.2.4): `transaction(π)` for
    /// non-completion serial actions, and `parent(T)` for a completion
    /// action of `T`. Undefined for inform actions.
    pub fn hightransaction(&self, tree: &TxTree) -> Option<TxId> {
        match self {
            Action::Commit(t) | Action::Abort(t) => tree.parent(*t),
            Action::InformCommit(..) | Action::InformAbort(..) => None,
            _ => self.transaction(tree),
        }
    }

    /// The paper's `lowtransaction(π)` (§2.2.4): `transaction(π)` for
    /// non-completion serial actions, and `T` itself for a completion
    /// action of `T`. Undefined for inform actions.
    pub fn lowtransaction(&self, tree: &TxTree) -> Option<TxId> {
        match self {
            Action::Commit(t) | Action::Abort(t) => Some(*t),
            Action::InformCommit(..) | Action::InformAbort(..) => None,
            _ => self.transaction(tree),
        }
    }

    /// The paper's `object(π)` (§2.2.4): for `CREATE(T)` or
    /// `REQUEST_COMMIT(T, v)` where `T` is an access to `X`, the object `X`.
    pub fn object(&self, tree: &TxTree) -> Option<ObjId> {
        match self {
            Action::Create(t) | Action::RequestCommit(t, _) => tree.object_of(*t),
            _ => None,
        }
    }
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Create(t) => write!(f, "CREATE({t})"),
            Action::RequestCreate(t) => write!(f, "REQUEST_CREATE({t})"),
            Action::RequestCommit(t, v) => write!(f, "REQUEST_COMMIT({t},{v})"),
            Action::Commit(t) => write!(f, "COMMIT({t})"),
            Action::Abort(t) => write!(f, "ABORT({t})"),
            Action::ReportCommit(t, v) => write!(f, "REPORT_COMMIT({t},{v})"),
            Action::ReportAbort(t) => write!(f, "REPORT_ABORT({t})"),
            Action::InformCommit(x, t) => write!(f, "INFORM_COMMIT_AT({x})OF({t})"),
            Action::InformAbort(x, t) => write!(f, "INFORM_ABORT_AT({x})OF({t})"),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    fn setup() -> (TxTree, TxId, TxId) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let u = tree.add_access(a, x, Op::Read);
        (tree, a, u)
    }

    #[test]
    fn serial_classification() {
        let (_, a, _) = setup();
        assert!(Action::Create(a).is_serial());
        assert!(Action::Commit(a).is_serial());
        assert!(!Action::InformCommit(ObjId(0), a).is_serial());
        assert!(Action::Commit(a).is_completion());
        assert!(!Action::Create(a).is_completion());
        assert!(Action::ReportAbort(a).is_report());
    }

    #[test]
    fn transaction_map_follows_paper() {
        let (tree, a, u) = setup();
        // CREATE(T) and REQUEST_COMMIT(T, v) belong to T itself.
        assert_eq!(Action::Create(a).transaction(&tree), Some(a));
        assert_eq!(
            Action::RequestCommit(u, Value::Int(0)).transaction(&tree),
            Some(u)
        );
        // REQUEST_CREATE(T') and reports about T' belong to parent(T').
        assert_eq!(Action::RequestCreate(u).transaction(&tree), Some(a));
        assert_eq!(
            Action::ReportCommit(a, Value::Ok).transaction(&tree),
            Some(TxId::ROOT)
        );
        assert_eq!(Action::ReportAbort(u).transaction(&tree), Some(a));
        // Completion actions have no transaction().
        assert_eq!(Action::Commit(a).transaction(&tree), None);
    }

    #[test]
    fn high_and_low_transaction() {
        let (tree, a, u) = setup();
        assert_eq!(Action::Commit(u).hightransaction(&tree), Some(a));
        assert_eq!(Action::Commit(u).lowtransaction(&tree), Some(u));
        assert_eq!(Action::Abort(a).hightransaction(&tree), Some(TxId::ROOT));
        assert_eq!(Action::Abort(a).lowtransaction(&tree), Some(a));
        assert_eq!(Action::Create(u).hightransaction(&tree), Some(u));
        assert_eq!(Action::Create(u).lowtransaction(&tree), Some(u));
        assert_eq!(Action::RequestCreate(u).lowtransaction(&tree), Some(a));
    }

    #[test]
    fn object_map() {
        let (tree, a, u) = setup();
        assert_eq!(Action::Create(u).object(&tree), Some(ObjId(0)));
        assert_eq!(
            Action::RequestCommit(u, Value::Int(1)).object(&tree),
            Some(ObjId(0))
        );
        assert_eq!(Action::Create(a).object(&tree), None);
        assert_eq!(Action::Commit(u).object(&tree), None);
    }
}
