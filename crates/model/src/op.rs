//! Operation kinds carried by access names.
//!
//! In the paper, "all parameters of an access are regarded as encoded in its
//! name" — the functions `kind(T)` and `data(T)` decode whether a read/write
//! access is a read or a write and, for writes, the value written (§3.1).
//! `Op` generalizes this to the arbitrary data types of §6: each access name
//! carries its full operation, and each serial type interprets the subset of
//! operations it supports.

use std::fmt;

/// The operation performed by an access.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    // --- read/write objects (§3.1) ---
    /// Read the current value of a register.
    Read,
    /// Overwrite a register with the given value.
    Write(i64),

    // --- counter ---
    /// Add a (possibly negative) delta to a counter. Returns `OK`.
    Add(i64),
    /// Read the counter total.
    GetCount,

    // --- bank account ---
    /// Unconditionally deposit an amount. Returns `OK`.
    Deposit(i64),
    /// Conditionally withdraw: succeeds (returns `true`) iff the balance
    /// is sufficient, otherwise leaves the balance unchanged and returns
    /// `false`.
    Withdraw(i64),
    /// Read the balance.
    Balance,

    // --- set of integers ---
    /// Insert an element. Returns `OK`.
    Insert(i64),
    /// Remove an element. Returns `OK`.
    Remove(i64),
    /// Membership test.
    Contains(i64),
    /// Cardinality.
    Size,

    // --- FIFO queue ---
    /// Append an element at the back. Returns `OK`.
    Enqueue(i64),
    /// Remove and return the front element (`Nil` if empty).
    Dequeue,

    // --- key-value map ---
    /// Bind `key` to `value`. Returns `OK`.
    Put(i64, i64),
    /// Look up a key (`Nil` if unbound).
    Get(i64),
    /// Unbind a key (blind). Returns `OK`.
    Delete(i64),
}

impl Op {
    /// True iff this is the read operation of a read/write object.
    pub fn is_rw_read(&self) -> bool {
        matches!(self, Op::Read)
    }

    /// True iff this is the write operation of a read/write object.
    pub fn is_rw_write(&self) -> bool {
        matches!(self, Op::Write(_))
    }

    /// The paper's `data(T)`: for a write access, the value written.
    pub fn write_data(&self) -> Option<i64> {
        match self {
            Op::Write(d) => Some(*d),
            _ => None,
        }
    }

    /// True iff the operation is a pure observer (never changes state).
    ///
    /// Observers of the same object always commute backward with each other.
    pub fn is_observer(&self) -> bool {
        matches!(
            self,
            Op::Read | Op::GetCount | Op::Balance | Op::Contains(_) | Op::Size | Op::Get(_)
        )
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Read => write!(f, "read"),
            Op::Write(d) => write!(f, "write({d})"),
            Op::Add(d) => write!(f, "add({d})"),
            Op::GetCount => write!(f, "get_count"),
            Op::Deposit(a) => write!(f, "deposit({a})"),
            Op::Withdraw(a) => write!(f, "withdraw({a})"),
            Op::Balance => write!(f, "balance"),
            Op::Insert(e) => write!(f, "insert({e})"),
            Op::Remove(e) => write!(f, "remove({e})"),
            Op::Contains(e) => write!(f, "contains({e})"),
            Op::Size => write!(f, "size"),
            Op::Enqueue(e) => write!(f, "enqueue({e})"),
            Op::Dequeue => write!(f, "dequeue"),
            Op::Put(k, v) => write!(f, "put({k},{v})"),
            Op::Get(k) => write!(f, "get({k})"),
            Op::Delete(k) => write!(f, "delete({k})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_classification() {
        assert!(Op::Read.is_rw_read());
        assert!(!Op::Read.is_rw_write());
        assert!(Op::Write(1).is_rw_write());
        assert_eq!(Op::Write(9).write_data(), Some(9));
        assert_eq!(Op::Read.write_data(), None);
    }

    #[test]
    fn observers() {
        for op in [
            Op::Read,
            Op::GetCount,
            Op::Balance,
            Op::Contains(3),
            Op::Size,
        ] {
            assert!(op.is_observer(), "{op} should be an observer");
        }
        for op in [
            Op::Write(1),
            Op::Add(1),
            Op::Deposit(1),
            Op::Withdraw(1),
            Op::Insert(1),
            Op::Remove(1),
            Op::Enqueue(1),
            Op::Dequeue,
        ] {
            assert!(!op.is_observer(), "{op} should not be an observer");
        }
    }

    #[test]
    fn display() {
        assert_eq!(Op::Write(4).to_string(), "write(4)");
        assert_eq!(Op::Dequeue.to_string(), "dequeue");
    }
}
