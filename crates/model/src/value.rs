//! Return values and object states.
//!
//! The paper's system type fixes a set of *values* used both as return
//! values of `REQUEST_COMMIT` actions and (for concrete serial object
//! automata) as the data domain `D`. A single closed enum keeps the whole
//! workspace monomorphic, which lets undo logs and witness reconstruction
//! replay operations generically.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A value: an access return value or a serial-object state.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// The paper's `OK`: the fixed return value of every write access and of
    /// most mutators.
    Ok,
    /// Absence of a value (e.g. `Dequeue` on an empty queue).
    Nil,
    /// An integer (register contents, counter totals, balances, elements).
    Int(i64),
    /// A boolean (membership tests, conditional-withdraw outcomes).
    Bool(bool),
    /// A set of integers (state of a set object).
    IntSet(BTreeSet<i64>),
    /// A list of integers, front at index 0 (state of a FIFO queue object).
    IntList(Vec<i64>),
    /// A map from integer keys to integer values (state of a key-value
    /// map object).
    IntMap(BTreeMap<i64, i64>),
}

impl Value {
    /// Convenience: the integer inside, if this is `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Convenience: the boolean inside, if this is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True iff this is the `Ok` acknowledgement.
    pub fn is_ok(&self) -> bool {
        matches!(self, Value::Ok)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Ok => write!(f, "OK"),
            Value::Nil => write!(f, "nil"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::IntSet(s) => write!(f, "{s:?}"),
            Value::IntList(l) => write!(f, "{l:?}"),
            Value::IntMap(m) => write!(f, "{m:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Ok.as_int(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Ok.is_ok());
        assert!(!Value::Nil.is_ok());
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Value::from(5), Value::Int(5));
        assert_eq!(Value::from(false), Value::Bool(false));
        assert_eq!(format!("{}", Value::Ok), "OK");
        assert_eq!(format!("{}", Value::Int(-2)), "-2");
    }

    #[test]
    fn set_and_list_values_are_hashable_and_eq() {
        use std::collections::HashSet;
        let mut h = HashSet::new();
        h.insert(Value::IntSet(BTreeSet::from([1, 2])));
        h.insert(Value::IntList(vec![1, 2]));
        assert!(h.contains(&Value::IntSet(BTreeSet::from([1, 2]))));
        assert!(!h.contains(&Value::IntSet(BTreeSet::from([1]))));
    }
}
