//! Property tests for the model algebra: tree laws, visibility laws,
//! clean-projection idempotence, and order extension laws.

use nt_model::seq::{clean_indices, project, Status};
use nt_model::{Action, Op, SiblingOrder, TxId, TxTree, Value};
use proptest::prelude::*;

/// Build a random tree from a shape seed: each entry attaches a node to a
/// previously created node (or the root), as an access or inner node.
fn build_tree(shape: &[(u8, bool)]) -> TxTree {
    let mut tree = TxTree::new();
    let x = tree.add_object();
    let mut inner_nodes = vec![TxId::ROOT];
    for &(pick, is_access) in shape {
        let parent = inner_nodes[pick as usize % inner_nodes.len()];
        if is_access {
            tree.add_access(parent, x, Op::Read);
        } else {
            inner_nodes.push(tree.add_inner(parent));
        }
    }
    tree
}

/// A random completion pattern: for each non-root name, committed/aborted/
/// incomplete — consistently (never both).
fn completions(tree: &TxTree, pattern: &[u8]) -> Vec<Action> {
    let mut out = Vec::new();
    for t in tree.all_tx().skip(1) {
        match pattern
            .get(t.index() % pattern.len().max(1))
            .copied()
            .unwrap_or(0)
            % 3
        {
            0 => out.push(Action::Commit(t)),
            1 => out.push(Action::Abort(t)),
            _ => {}
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tree_laws(shape in prop::collection::vec((any::<u8>(), any::<bool>()), 1..24)) {
        let tree = build_tree(&shape);
        for a in tree.all_tx() {
            prop_assert!(tree.is_ancestor(TxId::ROOT, a));
            prop_assert!(tree.is_ancestor(a, a), "reflexive");
            for b in tree.all_tx() {
                let l = tree.lca(a, b);
                prop_assert_eq!(l, tree.lca(b, a), "lca commutative");
                prop_assert!(tree.is_ancestor(l, a) && tree.is_ancestor(l, b));
                // lca is the DEEPEST common ancestor.
                for c in tree.all_tx() {
                    if tree.is_ancestor(c, a) && tree.is_ancestor(c, b) {
                        prop_assert!(tree.is_ancestor(c, l));
                    }
                }
                if tree.is_proper_ancestor(a, b) {
                    let c = tree.child_toward(a, b);
                    prop_assert_eq!(tree.parent(c), Some(a));
                    prop_assert!(tree.is_ancestor(c, b));
                }
            }
        }
    }

    #[test]
    fn visibility_is_transitive_and_reflexive(
        shape in prop::collection::vec((any::<u8>(), any::<bool>()), 1..16),
        pattern in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let tree = build_tree(&shape);
        let beta = completions(&tree, &pattern);
        let st = Status::of(&tree, &beta);
        let all: Vec<TxId> = tree.all_tx().collect();
        for &a in &all {
            prop_assert!(st.is_visible(&tree, a, a), "reflexive");
            for &b in &all {
                if tree.is_ancestor(a, b) {
                    prop_assert!(st.is_visible(&tree, a, b), "ancestors always visible");
                }
                for &c in &all {
                    if st.is_visible(&tree, a, b) && st.is_visible(&tree, b, c) {
                        prop_assert!(st.is_visible(&tree, a, c), "transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn visible_to_root_implies_not_orphan(
        shape in prop::collection::vec((any::<u8>(), any::<bool>()), 1..16),
        pattern in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let tree = build_tree(&shape);
        let beta = completions(&tree, &pattern);
        let st = Status::of(&tree, &beta);
        for t in tree.all_tx() {
            if st.is_visible(&tree, t, TxId::ROOT) {
                prop_assert!(!st.is_orphan(&tree, t));
            }
        }
    }

    #[test]
    fn clean_projection_is_idempotent(
        shape in prop::collection::vec((any::<u8>(), any::<bool>()), 1..16),
        pattern in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let tree = build_tree(&shape);
        // Interleave creates and completions for a richer sequence.
        let mut beta: Vec<Action> = Vec::new();
        for t in tree.all_tx().skip(1) {
            beta.push(Action::Create(t));
        }
        beta.extend(completions(&tree, &pattern));
        let once = clean_indices(&tree, &beta);
        let projected = project(&beta, &once);
        let twice = clean_indices(&tree, &projected);
        prop_assert_eq!(
            twice.len(),
            projected.len(),
            "clean of a clean projection removes nothing"
        );
    }

    #[test]
    fn r_trans_is_antisymmetric_and_irreflexive(
        shape in prop::collection::vec((any::<u8>(), any::<bool>()), 2..20),
    ) {
        let tree = build_tree(&shape);
        // Order each parent's children by TxId.
        let lists: Vec<(TxId, Vec<TxId>)> = tree
            .all_tx()
            .filter(|&t| !tree.is_access(t))
            .map(|t| (t, tree.children(t).to_vec()))
            .collect();
        let order = SiblingOrder::from_lists(lists);
        for a in tree.all_tx() {
            prop_assert_eq!(order.r_trans(&tree, a, a), None, "irreflexive");
            for b in tree.all_tx() {
                let ab = order.r_trans(&tree, a, b);
                let ba = order.r_trans(&tree, b, a);
                match (ab, ba) {
                    (Some(x), Some(y)) => prop_assert_eq!(x, !y, "antisymmetric"),
                    (None, None) => {}
                    other => prop_assert!(false, "asymmetric definedness: {:?}", other),
                }
                // R_trans never relates ancestor-related names.
                if tree.is_ancestor(a, b) || tree.is_ancestor(b, a) {
                    prop_assert_eq!(ab, None);
                }
            }
        }
    }

    #[test]
    fn status_matches_events(
        shape in prop::collection::vec((any::<u8>(), any::<bool>()), 1..16),
        pattern in prop::collection::vec(any::<u8>(), 1..8),
    ) {
        let tree = build_tree(&shape);
        let beta = completions(&tree, &pattern);
        let st = Status::of(&tree, &beta);
        for t in tree.all_tx() {
            let committed = beta.contains(&Action::Commit(t));
            let aborted = beta.contains(&Action::Abort(t));
            prop_assert_eq!(st.is_committed(t), committed);
            prop_assert_eq!(st.is_aborted(t), aborted);
            prop_assert_eq!(st.is_completed(t), committed || aborted);
        }
        let _ = Value::Ok;
    }
}
