//! # nt-undolog
//!
//! The undo logging algorithm of §6.2 — a generalization to nested
//! transactions of Weihl's commutativity-based recovery — implemented as
//! the generic object automaton `U_X`, proved correct by the paper's
//! Theorem 25. Works for objects of **arbitrary data type**: the more
//! operations commute backward, the more concurrency it admits.
//!
//! ## The algorithm
//!
//! `U_X` keeps the object "state" abstractly, as a log of operations
//! `(T, v)` in execution order:
//!
//! * an access `T` may be answered with value `v` only when `(T, v)`
//!   *commutes backward* with every logged operation performed by a
//!   transaction not yet visible to `T` (per the `INFORM_COMMIT`s received
//!   so far), and the extended log replays legally;
//! * `INFORM_COMMIT(T)` merely records `T` in the `committed` set
//!   (enlarging visibility);
//! * `INFORM_ABORT(T)` deletes all of `T`'s descendants' operations from
//!   the log — the *undo*. Backward commutativity of everything that was
//!   allowed to run concurrently guarantees the surviving log is still
//!   replayable (Lemma 21).

#![forbid(unsafe_code)]

use nt_automata::Component;
use nt_model::{Action, ObjId, Op, TxId, TxTree, Value};
use nt_obs::{Event, TraceHandle};
use nt_serial::{replay_from, SerialType};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One undo-log entry: the access, its operation, and its return value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogEntry {
    /// The access transaction.
    pub tx: TxId,
    /// Its operation.
    pub op: Op,
    /// Its recorded return value.
    pub value: Value,
}

/// The undo logging object automaton `U_X`.
pub struct UndoLogObject {
    tree: Arc<TxTree>,
    x: ObjId,
    ty: Arc<dyn SerialType>,
    created: BTreeSet<TxId>,
    commit_requested: BTreeSet<TxId>,
    committed: BTreeSet<TxId>,
    /// Transactions whose `INFORM_ABORT` this object has received; their
    /// descendants (*local orphans*) are never answered — a sound
    /// strengthening that keeps late orphan operations from clogging the
    /// log forever.
    aborted_seen: BTreeSet<TxId>,
    operations: Vec<LogEntry>,
    /// Cached replay state of `operations` (kept in sync incrementally;
    /// rebuilt after log erasures).
    state: Value,
    /// Observability sink (disabled by default; see `nt-obs`).
    trace: TraceHandle,
}

impl UndoLogObject {
    /// A fresh `U_X` for object `x` with serial type `ty`.
    pub fn new(tree: Arc<TxTree>, x: ObjId, ty: Arc<dyn SerialType>) -> Self {
        let state = ty.initial();
        UndoLogObject {
            tree,
            x,
            ty,
            created: BTreeSet::new(),
            commit_requested: BTreeSet::new(),
            committed: BTreeSet::new(),
            aborted_seen: BTreeSet::new(),
            operations: Vec::new(),
            state,
            trace: TraceHandle::disabled(),
        }
    }

    /// Attach an observability sink: log pushes and abort-time rollbacks
    /// are journaled through it.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Crash–restart recovery: reconstruct a `U_X` whose volatile state
    /// was lost by replaying this object's slice of the recorded behavior
    /// (its `CREATE`s, answered `REQUEST_COMMIT`s, and `INFORM_*` prefix,
    /// in recorded order). The replay runs untraced; the result is
    /// equivalent to the pre-crash automaton because `U_X` is a
    /// deterministic function of its input/output history.
    pub fn recovered_from(
        tree: Arc<TxTree>,
        x: ObjId,
        ty: Arc<dyn SerialType>,
        behavior: &[Action],
    ) -> (Self, u64) {
        let mut o = UndoLogObject::new(tree, x, ty);
        let mut replayed = 0u64;
        for a in behavior {
            if o.is_input(a) || o.is_output(a) {
                o.apply(a);
                replayed += 1;
            }
        }
        (o, replayed)
    }

    /// Drop the volatile replay cache and rebuild it from the durable
    /// undo log — the undo-log discipline (§6.2) makes the cached state
    /// fully derived data, so losing it is always recoverable. Used by
    /// crash tests to model a partial crash where the log survives.
    pub fn crash_volatile(&mut self) {
        self.state = self.ty.initial();
        self.rebuild_state();
    }

    /// The current log (inspection).
    pub fn log(&self) -> &[LogEntry] {
        &self.operations
    }

    /// The current replayed state (inspection).
    pub fn state(&self) -> &Value {
        &self.state
    }

    /// Is logged access `t_logged` *locally visible* to `t` per the
    /// `INFORM_COMMIT`s received: every ancestor of `t_logged` strictly
    /// below `lca(t_logged, t)` is in `committed`?
    fn locally_visible(&self, t_logged: TxId, t: TxId) -> bool {
        let stop = self.tree.lca(t_logged, t);
        let mut cur = t_logged;
        while cur != stop {
            if !self.committed.contains(&cur) {
                return false;
            }
            cur = self
                .tree
                .parent(cur)
                .expect("the lca is an ancestor of t_logged, so the parent walk reaches it");
        }
        true
    }

    /// Is `t` a local orphan at this object: has an ancestor whose
    /// `INFORM_ABORT` was received here?
    pub fn is_local_orphan(&self, t: TxId) -> bool {
        self.tree
            .ancestors(t)
            .any(|u| self.aborted_seen.contains(&u))
    }

    /// The §6.2 `REQUEST_COMMIT` precondition for access `t`, with the
    /// value the serial type determines. Returns `Some(v)` iff enabled.
    fn try_respond(&self, t: TxId) -> Option<Value> {
        let op = self
            .tree
            .op_of(t)
            .expect("created only holds accesses of x (is_input admits Create(t) only then)");
        let (_, v) = self.ty.apply(&self.state, op);
        let candidate = (op.clone(), v.clone());
        for e in &self.operations {
            if self.locally_visible(e.tx, t) {
                continue;
            }
            if !self
                .ty
                .commutes_backward(&candidate, &(e.op.clone(), e.value.clone()))
            {
                return None;
            }
        }
        // `perform(operations · (t, v))` is a behavior of S_X: the log
        // replays to `state` by construction, and `v` was computed by the
        // specification from `state`, so the extended log is legal.
        Some(v)
    }

    /// Accesses created but unanswered whose precondition fails, with the
    /// log entries blocking them (inspection; deadlock detection).
    pub fn waiting(&self) -> Vec<(TxId, Vec<TxId>)> {
        let mut out = Vec::new();
        for &t in self.created.difference(&self.commit_requested) {
            if self.is_local_orphan(t) || self.try_respond(t).is_some() {
                continue;
            }
            let op = self
                .tree
                .op_of(t)
                .expect("created only holds accesses of x (is_input admits Create(t) only then)");
            let (_, v) = self.ty.apply(&self.state, op);
            let candidate = (op.clone(), v);
            let blockers: Vec<TxId> = self
                .operations
                .iter()
                .filter(|e| {
                    !self.locally_visible(e.tx, t)
                        && !self
                            .ty
                            .commutes_backward(&candidate, &(e.op.clone(), e.value.clone()))
                })
                .map(|e| e.tx)
                .collect();
            out.push((t, blockers));
        }
        out
    }

    fn rebuild_state(&mut self) {
        let ops: Vec<(Op, Value)> = self
            .operations
            .iter()
            .map(|e| (e.op.clone(), e.value.clone()))
            .collect();
        self.state = replay_from(self.ty.as_ref(), self.ty.initial(), &ops)
            .expect("undo log must stay replayable (Lemma 21)");
    }
}

impl Component for UndoLogObject {
    fn name(&self) -> String {
        format!("U({})", self.x)
    }

    fn is_input(&self, a: &Action) -> bool {
        match a {
            Action::Create(t) => self.tree.object_of(*t) == Some(self.x),
            Action::InformCommit(x, t) | Action::InformAbort(x, t) => {
                *x == self.x && *t != TxId::ROOT
            }
            _ => false,
        }
    }

    fn is_output(&self, a: &Action) -> bool {
        matches!(a, Action::RequestCommit(t, _) if self.tree.object_of(*t) == Some(self.x))
    }

    fn apply(&mut self, a: &Action) {
        match a {
            Action::Create(t) => {
                self.created.insert(*t);
            }
            Action::InformCommit(_, t) => {
                self.committed.insert(*t);
            }
            Action::InformAbort(_, t) => {
                self.aborted_seen.insert(*t);
                let tree = Arc::clone(&self.tree);
                let t = *t;
                let before = self.operations.len();
                self.operations.retain(|e| !tree.is_ancestor(t, e.tx));
                let erased = before - self.operations.len();
                if erased != 0 {
                    self.rebuild_state();
                }
                if self.trace.enabled() {
                    self.trace.record(Event::UndoRollback {
                        obj: self.x.0,
                        tx: t.0,
                        erased: erased as u64,
                    });
                }
            }
            Action::RequestCommit(t, v) => {
                debug_assert_eq!(self.try_respond(*t).as_ref(), Some(v));
                self.commit_requested.insert(*t);
                let op = self
                    .tree
                    .op_of(*t)
                    .expect("RequestCommit is shared only for accesses of x (is_output)")
                    .clone();
                let (next, _) = self.ty.apply(&self.state, &op);
                self.state = next;
                self.operations.push(LogEntry {
                    tx: *t,
                    op,
                    value: v.clone(),
                });
                if self.trace.enabled() {
                    self.trace.record(Event::UndoPush {
                        obj: self.x.0,
                        tx: t.0,
                        log_len: self.operations.len() as u64,
                    });
                    self.trace.add_depth("undo.push", self.tree.depth(*t), 1);
                }
            }
            _ => unreachable!("U_X shares no other action"),
        }
    }

    fn enabled_outputs(&self, buf: &mut Vec<Action>) {
        for &t in self.created.difference(&self.commit_requested) {
            if self.is_local_orphan(t) {
                continue;
            }
            if let Some(v) = self.try_respond(t) {
                buf.push(Action::RequestCommit(t, v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_serial::RwRegister;

    /// A tiny counter type local to the tests (the full library version
    /// lives in nt-datatypes; this keeps the dependency direction clean).
    #[derive(Debug)]
    struct TestCounter;
    impl SerialType for TestCounter {
        fn type_name(&self) -> &'static str {
            "test-counter"
        }
        fn initial(&self) -> Value {
            Value::Int(0)
        }
        fn apply(&self, state: &Value, op: &Op) -> (Value, Value) {
            let s = state.as_int().unwrap();
            match op {
                Op::Add(d) => (Value::Int(s + d), Value::Ok),
                Op::GetCount => (state.clone(), Value::Int(s)),
                other => panic!("counter does not support {other}"),
            }
        }
        fn commutes_backward(&self, a: &(Op, Value), b: &(Op, Value)) -> bool {
            matches!((&a.0, &b.0), (Op::Add(_), Op::Add(_)))
                || matches!((&a.0, &b.0), (Op::GetCount, Op::GetCount))
        }
    }

    fn counter_setup() -> (Arc<TxTree>, UndoLogObject, TxId, TxId, TxId, TxId) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let ua = tree.add_access(a, x, Op::Add(3));
        let ub = tree.add_access(b, x, Op::Add(4));
        let ga = tree.add_access(a, x, Op::GetCount);
        let _ = ga;
        let tree = Arc::new(tree);
        let obj = UndoLogObject::new(Arc::clone(&tree), x, Arc::new(TestCounter));
        (tree, obj, a, b, ua, ub)
    }

    fn enabled(o: &UndoLogObject) -> Vec<Action> {
        let mut buf = Vec::new();
        o.enabled_outputs(&mut buf);
        buf
    }

    #[test]
    fn commuting_adds_run_concurrently() {
        let (_tree, mut o, _a, _b, ua, ub) = counter_setup();
        o.apply(&Action::Create(ua));
        o.apply(&Action::Create(ub));
        // Both adds enabled simultaneously: they commute backward.
        assert_eq!(enabled(&o).len(), 2);
        o.apply(&Action::RequestCommit(ua, Value::Ok));
        // ub still enabled with ua's add uncommitted — Moss locking would
        // block here; undo logging does not.
        assert_eq!(enabled(&o), vec![Action::RequestCommit(ub, Value::Ok)]);
        o.apply(&Action::RequestCommit(ub, Value::Ok));
        assert_eq!(o.state(), &Value::Int(7));
        assert_eq!(o.log().len(), 2);
    }

    #[test]
    fn get_blocks_on_uncommitted_add() {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let ua = tree.add_access(a, x, Op::Add(3));
        let gb = tree.add_access(b, x, Op::GetCount);
        let tree = Arc::new(tree);
        let mut o = UndoLogObject::new(Arc::clone(&tree), x, Arc::new(TestCounter));
        o.apply(&Action::Create(ua));
        o.apply(&Action::RequestCommit(ua, Value::Ok));
        o.apply(&Action::Create(gb));
        assert!(enabled(&o).is_empty(), "GetCount vs uncommitted Add");
        assert_eq!(o.waiting()[0], (gb, vec![ua]));
        // Commit ua and a: the add becomes visible to gb.
        o.apply(&Action::InformCommit(ObjId(0), ua));
        o.apply(&Action::InformCommit(ObjId(0), a));
        assert_eq!(enabled(&o), vec![Action::RequestCommit(gb, Value::Int(3))]);
    }

    #[test]
    fn abort_undoes_descendant_operations() {
        let (_tree, mut o, a, _b, ua, ub) = counter_setup();
        o.apply(&Action::Create(ua));
        o.apply(&Action::RequestCommit(ua, Value::Ok));
        o.apply(&Action::Create(ub));
        o.apply(&Action::RequestCommit(ub, Value::Ok));
        assert_eq!(o.state(), &Value::Int(7));
        // Abort a: ua's add is erased from the log, state recomputed.
        o.apply(&Action::InformAbort(ObjId(0), a));
        assert_eq!(o.state(), &Value::Int(4));
        assert_eq!(o.log().len(), 1);
        assert_eq!(o.log()[0].tx, ub);
    }

    #[test]
    fn crash_recovery_mid_subtransaction_with_live_orphans() {
        // Crash while a is mid-flight: ua answered and committed (access-
        // level), b's subtree orphaned by INFORM_ABORT(b) while ub is
        // still created-but-unanswered (a live orphan). Recovery must
        // reproduce the log, the visibility sets, the orphan bookkeeping,
        // and the replayed state exactly.
        let (tree, mut o, _a, b, ua, ub) = counter_setup();
        let behavior = vec![
            Action::Create(ua),
            Action::RequestCommit(ua, Value::Ok),
            Action::Create(ub),
            Action::InformAbort(ObjId(0), b), // ub becomes a live orphan
            Action::InformCommit(ObjId(0), ua),
        ];
        for a in &behavior {
            o.apply(a);
        }
        let (rec, replayed) = UndoLogObject::recovered_from(
            Arc::clone(&tree),
            ObjId(0),
            Arc::new(TestCounter),
            &behavior,
        );
        assert_eq!(replayed, behavior.len() as u64);
        assert_eq!(rec.log(), o.log());
        assert_eq!(rec.state(), o.state());
        assert_eq!(rec.state(), &Value::Int(3));
        assert!(rec.is_local_orphan(ub), "orphan bookkeeping survives");
        assert_eq!(enabled(&rec), enabled(&o));
        assert!(
            enabled(&rec).is_empty(),
            "the orphaned add is never answered post-recovery"
        );
        assert_eq!(rec.waiting(), o.waiting());
    }

    #[test]
    fn crash_volatile_rebuilds_cached_state_from_the_log() {
        let (_tree, mut o, _a, _b, ua, ub) = counter_setup();
        o.apply(&Action::Create(ua));
        o.apply(&Action::RequestCommit(ua, Value::Ok));
        o.apply(&Action::Create(ub));
        o.apply(&Action::RequestCommit(ub, Value::Ok));
        assert_eq!(o.state(), &Value::Int(7));
        o.crash_volatile();
        assert_eq!(o.state(), &Value::Int(7), "cache is derived from the log");
        assert_eq!(o.log().len(), 2);
    }

    #[test]
    fn register_type_behaves_like_locking_for_conflicts() {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let wa = tree.add_access(a, x, Op::Write(5));
        let rb = tree.add_access(b, x, Op::Read);
        let tree = Arc::new(tree);
        let mut o = UndoLogObject::new(Arc::clone(&tree), x, Arc::new(RwRegister::new(0)));
        o.apply(&Action::Create(wa));
        o.apply(&Action::RequestCommit(wa, Value::Ok));
        o.apply(&Action::Create(rb));
        assert!(enabled(&o).is_empty(), "read waits on uncommitted write");
        o.apply(&Action::InformCommit(ObjId(0), wa));
        o.apply(&Action::InformCommit(ObjId(0), a));
        assert_eq!(enabled(&o), vec![Action::RequestCommit(rb, Value::Int(5))]);
    }

    #[test]
    fn nested_visibility_insider_sees_parents_operations() {
        // a's second access can run even though a's first is uncommitted:
        // the first is locally visible to the second (same branch).
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let u1 = tree.add_access(a, x, Op::Add(3));
        let g1 = tree.add_access(a, x, Op::GetCount);
        let tree = Arc::new(tree);
        let mut o = UndoLogObject::new(Arc::clone(&tree), x, Arc::new(TestCounter));
        o.apply(&Action::Create(u1));
        o.apply(&Action::RequestCommit(u1, Value::Ok));
        o.apply(&Action::Create(g1));
        // u1 is not committed, but committing u1 (the access) makes it
        // locally visible to g1 (their lca is a; only u1 itself is below).
        assert!(enabled(&o).is_empty());
        o.apply(&Action::InformCommit(ObjId(0), u1));
        assert_eq!(enabled(&o), vec![Action::RequestCommit(g1, Value::Int(3))]);
    }
}
