//! Property tests for the datatype commutativity relations and the
//! reordering proposition.
//!
//! * **Soundness** of every declared relation against the paper's
//!   definition (`commute_by_definition`) over random reachable states.
//! * **Proposition 7/18**: in a legal operation sequence, swapping adjacent
//!   *backward-commuting* operations preserves legality and the final
//!   state — the lemma the serialization-graph theorem rests on.

use nt_datatypes::all_types;
use nt_model::{Op, Value};
use nt_serial::{commute_by_definition, replay, OpVal, SerialType};
use proptest::prelude::*;
use std::sync::Arc;

/// Random operation suitable for a given type, by index.
fn arb_op(type_name: &'static str) -> BoxedStrategy<Op> {
    match type_name {
        "register" => prop_oneof![Just(Op::Read), (0i64..5).prop_map(Op::Write),].boxed(),
        "counter" => prop_oneof![(-3i64..4).prop_map(Op::Add), Just(Op::GetCount),].boxed(),
        "account" => prop_oneof![
            (0i64..6).prop_map(Op::Deposit),
            (0i64..6).prop_map(Op::Withdraw),
            Just(Op::Balance),
        ]
        .boxed(),
        "intset" => prop_oneof![
            (0i64..4).prop_map(Op::Insert),
            (0i64..4).prop_map(Op::Remove),
            (0i64..4).prop_map(Op::Contains),
            Just(Op::Size),
        ]
        .boxed(),
        "queue" => prop_oneof![(0i64..4).prop_map(Op::Enqueue), Just(Op::Dequeue),].boxed(),
        "kvmap" => prop_oneof![
            ((0i64..3), (0i64..4)).prop_map(|(k, v)| Op::Put(k, v)),
            (0i64..3).prop_map(Op::Get),
            (0i64..3).prop_map(Op::Delete),
        ]
        .boxed(),
        other => panic!("unknown type {other}"),
    }
}

/// Build the legal `(op, value)` sequence by replaying ops through the
/// specification (values are whatever the spec returns).
fn legalize(ty: &dyn SerialType, ops: &[Op]) -> Vec<OpVal> {
    let mut state = ty.initial();
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        let (next, v) = ty.apply(&state, op);
        out.push((op.clone(), v));
        state = next;
    }
    out
}

/// The states reachable by all prefixes of a set of op sequences — a
/// definitional quantification domain that includes everything relevant.
fn reachable_states(ty: &dyn SerialType, opseqs: &[Vec<Op>]) -> Vec<Value> {
    let mut states = vec![ty.initial()];
    for ops in opseqs {
        let mut s = ty.initial();
        for op in ops {
            s = ty.apply(&s, op).0;
            if !states.contains(&s) {
                states.push(s.clone());
            }
        }
    }
    states
}

fn types_and_ops() -> Vec<(&'static str, Arc<dyn SerialType>)> {
    all_types()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Declared commutes ⇒ definitional commutes, on states reachable by
    /// the generated prefixes.
    #[test]
    fn declared_commutativity_is_sound(
        raw in prop::collection::vec(any::<u16>(), 2..14),
        type_idx in 0usize..6,
    ) {
        let (name, ty) = types_and_ops().swap_remove(type_idx);
        // Derive ops deterministically from raw bytes via the strategy's
        // value tree is awkward; instead map integers to ops directly.
        let ops: Vec<Op> = raw.iter().map(|&r| int_to_op(name, r)).collect();
        let legal_seq = legalize(ty.as_ref(), &ops);
        let states = reachable_states(ty.as_ref(), std::slice::from_ref(&ops));
        for i in 0..legal_seq.len() {
            for j in 0..legal_seq.len() {
                let (a, b) = (&legal_seq[i], &legal_seq[j]);
                if ty.commutes_backward(a, b) {
                    prop_assert!(
                        commute_by_definition(ty.as_ref(), a, b, &states),
                        "{name}: declared commuting but definition refutes: {a:?} {b:?}"
                    );
                }
            }
        }
    }

    /// Proposition 7/18: swapping adjacent backward-commuting operations
    /// in a legal sequence keeps it legal and preserves the final state.
    #[test]
    fn adjacent_commuting_swaps_preserve_legality(
        raw in prop::collection::vec(any::<u16>(), 2..16),
        swaps in prop::collection::vec(any::<u16>(), 1..8),
        type_idx in 0usize..6,
    ) {
        let (name, ty) = types_and_ops().swap_remove(type_idx);
        let ops: Vec<Op> = raw.iter().map(|&r| int_to_op(name, r)).collect();
        let mut seq = legalize(ty.as_ref(), &ops);
        let original_final = replay(ty.as_ref(), &seq);
        prop_assert!(original_final.is_some());
        for &s in &swaps {
            let i = (s as usize) % (seq.len() - 1);
            if ty.commutes_backward(&seq[i], &seq[i + 1]) {
                seq.swap(i, i + 1);
                let after = replay(ty.as_ref(), &seq);
                prop_assert_eq!(
                    after.clone(), original_final.clone(),
                    "{}: swap at {} broke legality or changed state", name, i
                );
            }
        }
    }
}

fn int_to_op(type_name: &str, r: u16) -> Op {
    let k = i64::from(r % 7);
    match type_name {
        "register" => {
            if r.is_multiple_of(2) {
                Op::Read
            } else {
                Op::Write(k)
            }
        }
        "counter" => {
            if r.is_multiple_of(3) {
                Op::GetCount
            } else {
                Op::Add(k - 3)
            }
        }
        "account" => match r % 3 {
            0 => Op::Deposit(k),
            1 => Op::Withdraw(k),
            _ => Op::Balance,
        },
        "intset" => match r % 4 {
            0 => Op::Insert(k % 4),
            1 => Op::Remove(k % 4),
            2 => Op::Contains(k % 4),
            _ => Op::Size,
        },
        "queue" => {
            if r.is_multiple_of(3) {
                Op::Dequeue
            } else {
                Op::Enqueue(k % 4)
            }
        }
        "kvmap" => match r % 4 {
            0 | 1 => Op::Put(k % 3, i64::from(r % 5)),
            2 => Op::Get(k % 3),
            _ => Op::Delete(k % 3),
        },
        other => panic!("unknown type {other}"),
    }
}

/// Ensure the unused strategy helper stays exercised (it documents how to
/// generate ops for external users).
#[test]
fn arb_op_strategies_produce_valid_ops() {
    use proptest::strategy::{Strategy, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    for (name, ty) in all_types() {
        let strat = arb_op(name);
        for _ in 0..16 {
            let op = strat.new_tree(&mut runner).unwrap().current();
            // Applying to the initial state must not panic.
            let _ = ty.apply(&ty.initial(), &op);
        }
    }
}
