//! A set of integers: `Insert` / `Remove` / `Contains` / `Size`.
//!
//! Inserts and removes of *distinct* elements commute backward, as do
//! blind inserts (and blind removes) of the *same* element — set union is
//! idempotent. Observers conflict with mutators of the element they
//! observe and with anything that changes the cardinality.

use nt_model::{Op, Value};
use nt_serial::{OpVal, SerialType};
use std::collections::BTreeSet;

/// Integer-set serial type, initially empty.
#[derive(Clone, Debug, Default)]
pub struct IntSetType;

impl IntSetType {
    /// A fresh (empty-initialized) set type.
    pub fn new() -> Self {
        IntSetType
    }
}

fn as_set(state: &Value) -> &BTreeSet<i64> {
    match state {
        Value::IntSet(s) => s,
        other => panic!("set state must be IntSet, got {other}"),
    }
}

impl SerialType for IntSetType {
    fn type_name(&self) -> &'static str {
        "intset"
    }

    fn initial(&self) -> Value {
        Value::IntSet(BTreeSet::new())
    }

    fn apply(&self, state: &Value, op: &Op) -> (Value, Value) {
        let s = as_set(state);
        match op {
            Op::Insert(e) => {
                let mut t = s.clone();
                t.insert(*e);
                (Value::IntSet(t), Value::Ok)
            }
            Op::Remove(e) => {
                let mut t = s.clone();
                t.remove(e);
                (Value::IntSet(t), Value::Ok)
            }
            Op::Contains(e) => (state.clone(), Value::Bool(s.contains(e))),
            Op::Size => (state.clone(), Value::Int(s.len() as i64)),
            other => panic!("set does not support {other}"),
        }
    }

    /// Exact backward commutativity:
    /// * `Insert(a)`/`Insert(b)`: always (idempotence covers `a = b`);
    /// * `Remove(a)`/`Remove(b)`: always;
    /// * `Insert(a)`/`Remove(b)`: iff `a ≠ b`;
    /// * mutator of `a`/`Contains(b)`: iff `a ≠ b`;
    /// * mutator/`Size`: conflict (blind mutators can change cardinality);
    /// * observer/observer: always.
    fn commutes_backward(&self, a: &OpVal, b: &OpVal) -> bool {
        use Op::{Contains, Insert, Remove, Size};
        match (&a.0, &b.0) {
            (Insert(x), Insert(y)) => {
                let _ = (x, y);
                true
            }
            (Remove(_), Remove(_)) => true,
            (Insert(x), Remove(y)) | (Remove(y), Insert(x)) => x != y,
            (Insert(x), Contains(y)) | (Contains(y), Insert(x)) => x != y,
            (Remove(x), Contains(y)) | (Contains(y), Remove(x)) => x != y,
            (Insert(_), Size) | (Size, Insert(_)) => false,
            (Remove(_), Size) | (Size, Remove(_)) => false,
            (Contains(_), Contains(_)) | (Contains(_), Size) | (Size, Contains(_)) => true,
            (Size, Size) => true,
            _ => false,
        }
    }

    fn op_domain(&self) -> Vec<Op> {
        let mut ops = Vec::new();
        for e in [1i64, 2] {
            ops.push(Op::Insert(e));
            ops.push(Op::Remove(e));
            ops.push(Op::Contains(e));
        }
        ops.push(Op::Size);
        ops
    }

    fn bounded_states(&self) -> Vec<Value> {
        let sets: [&[i64]; 5] = [&[], &[1], &[2], &[1, 2], &[1, 2, 3]];
        sets.iter()
            .map(|xs| Value::IntSet(xs.iter().copied().collect()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_serial::commute_by_definition;

    /// All subsets of {1, 2} plus a 3-element state: a small but
    /// distinguishing state space.
    fn states() -> Vec<Value> {
        let sets: [&[i64]; 5] = [&[], &[1], &[2], &[1, 2], &[1, 2, 3]];
        sets.iter()
            .map(|xs| Value::IntSet(xs.iter().copied().collect()))
            .collect()
    }

    fn all_ops() -> Vec<OpVal> {
        let mut ops = Vec::new();
        for e in [1i64, 2] {
            ops.push((Op::Insert(e), Value::Ok));
            ops.push((Op::Remove(e), Value::Ok));
            ops.push((Op::Contains(e), Value::Bool(true)));
            ops.push((Op::Contains(e), Value::Bool(false)));
        }
        for k in [0i64, 1, 2] {
            ops.push((Op::Size, Value::Int(k)));
        }
        ops
    }

    #[test]
    fn semantics() {
        let t = IntSetType::new();
        let (s1, v1) = t.apply(&t.initial(), &Op::Insert(5));
        assert_eq!(v1, Value::Ok);
        let (_, v2) = t.apply(&s1, &Op::Contains(5));
        assert_eq!(v2, Value::Bool(true));
        let (s3, _) = t.apply(&s1, &Op::Remove(5));
        let (_, v4) = t.apply(&s3, &Op::Contains(5));
        assert_eq!(v4, Value::Bool(false));
        let (_, v5) = t.apply(&s1, &Op::Size);
        assert_eq!(v5, Value::Int(1));
    }

    #[test]
    fn declared_commutativity_is_sound_and_tight() {
        let t = IntSetType::new();
        let ops = all_ops();
        for a in &ops {
            for b in &ops {
                let declared = t.commutes_backward(a, b);
                let derived = commute_by_definition(&t, a, b, &states());
                assert_eq!(
                    declared, derived,
                    "mismatch for {a:?} vs {b:?}: declared={declared} derived={derived}"
                );
            }
        }
    }

    #[test]
    fn same_element_insert_insert_commutes_by_idempotence() {
        let t = IntSetType::new();
        let i = (Op::Insert(1), Value::Ok);
        assert!(t.commutes_backward(&i, &i.clone()));
    }

    #[test]
    fn insert_remove_same_element_conflicts() {
        let t = IntSetType::new();
        let i = (Op::Insert(1), Value::Ok);
        let r = (Op::Remove(1), Value::Ok);
        assert!(!t.commutes_backward(&i, &r));
        let r2 = (Op::Remove(2), Value::Ok);
        assert!(t.commutes_backward(&i, &r2));
    }
}
