//! A counter object: `Add(δ)` / `GetCount`.
//!
//! The showcase for commutativity-based concurrency (§6 motivation):
//! increments commute backward with each other, so undo logging lets any
//! number of uncommitted transactions add concurrently — where read/write
//! locking would serialize them.

use nt_model::{Op, Value};
use nt_serial::{OpVal, SerialType};

/// Counter serial type.
#[derive(Clone, Debug)]
pub struct Counter {
    /// Initial count.
    pub init: i64,
}

impl Counter {
    /// A counter starting at `init`.
    pub fn new(init: i64) -> Self {
        Counter { init }
    }
}

impl SerialType for Counter {
    fn type_name(&self) -> &'static str {
        "counter"
    }

    fn initial(&self) -> Value {
        Value::Int(self.init)
    }

    fn apply(&self, state: &Value, op: &Op) -> (Value, Value) {
        let s = state.as_int().expect("counter state is Int");
        match op {
            Op::Add(d) => (Value::Int(s + d), Value::Ok),
            Op::GetCount => (state.clone(), Value::Int(s)),
            other => panic!("counter does not support {other}"),
        }
    }

    /// Exact backward commutativity:
    /// * `Add`/`Add` always commute;
    /// * `GetCount`/`GetCount` always commute;
    /// * `Add(δ)`/`GetCount` commute iff `δ = 0`.
    fn commutes_backward(&self, a: &OpVal, b: &OpVal) -> bool {
        match (&a.0, &b.0) {
            (Op::Add(_), Op::Add(_)) => true,
            (Op::GetCount, Op::GetCount) => true,
            (Op::Add(d), Op::GetCount) | (Op::GetCount, Op::Add(d)) => *d == 0,
            _ => false,
        }
    }

    fn op_domain(&self) -> Vec<Op> {
        vec![Op::Add(-1), Op::Add(0), Op::Add(2), Op::GetCount]
    }

    fn bounded_states(&self) -> Vec<Value> {
        (-4..=4).map(Value::Int).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_serial::commute_by_definition;

    fn states() -> Vec<Value> {
        (-4..=4).map(Value::Int).collect()
    }

    #[test]
    fn semantics() {
        let c = Counter::new(10);
        assert_eq!(c.initial(), Value::Int(10));
        let (s, v) = c.apply(&Value::Int(10), &Op::Add(-3));
        assert_eq!((s, v), (Value::Int(7), Value::Ok));
        let (s, v) = c.apply(&Value::Int(7), &Op::GetCount);
        assert_eq!((s, v), (Value::Int(7), Value::Int(7)));
    }

    #[test]
    fn declared_commutativity_is_sound() {
        let c = Counter::new(0);
        let ops = [
            (Op::Add(2), Value::Ok),
            (Op::Add(-1), Value::Ok),
            (Op::Add(0), Value::Ok),
            (Op::GetCount, Value::Int(1)),
            (Op::GetCount, Value::Int(0)),
        ];
        for a in &ops {
            for b in &ops {
                if c.commutes_backward(a, b) {
                    assert!(
                        commute_by_definition(&c, a, b, &states()),
                        "declared commuting but definition disagrees: {a:?} {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn add_get_conflict_matches_definition() {
        let c = Counter::new(0);
        let add = (Op::Add(2), Value::Ok);
        let get = (Op::GetCount, Value::Int(2));
        assert!(!c.commutes_backward(&add, &get));
        assert!(!commute_by_definition(&c, &add, &get, &states()));
        let add0 = (Op::Add(0), Value::Ok);
        assert!(c.commutes_backward(&add0, &get));
        assert!(commute_by_definition(&c, &add0, &get, &states()));
    }
}
