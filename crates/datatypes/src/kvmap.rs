//! A key-value map: `Put` / `Get` / `Delete` per integer key.
//!
//! The most database-shaped type in the library: operations on *distinct
//! keys* always commute backward, so undo logging gives per-key
//! concurrency "for free" — the type-based concurrency the paper cites
//! (its reference 17, Weihl) generalized past whole-object read/write
//! conflicts.

use nt_model::{Op, Value};
use nt_serial::{OpVal, SerialType};
use std::collections::BTreeMap;

/// Key-value map serial type, initially empty.
#[derive(Clone, Debug, Default)]
pub struct KvMapType;

impl KvMapType {
    /// A fresh (empty-initialized) map type.
    pub fn new() -> Self {
        KvMapType
    }
}

fn as_map(state: &Value) -> &BTreeMap<i64, i64> {
    match state {
        Value::IntMap(m) => m,
        other => panic!("kvmap state must be IntMap, got {other}"),
    }
}

impl SerialType for KvMapType {
    fn type_name(&self) -> &'static str {
        "kvmap"
    }

    fn initial(&self) -> Value {
        Value::IntMap(BTreeMap::new())
    }

    fn apply(&self, state: &Value, op: &Op) -> (Value, Value) {
        let m = as_map(state);
        match op {
            Op::Put(k, v) => {
                let mut t = m.clone();
                t.insert(*k, *v);
                (Value::IntMap(t), Value::Ok)
            }
            Op::Delete(k) => {
                let mut t = m.clone();
                t.remove(k);
                (Value::IntMap(t), Value::Ok)
            }
            Op::Get(k) => (
                state.clone(),
                m.get(k).map(|&v| Value::Int(v)).unwrap_or(Value::Nil),
            ),
            other => panic!("kvmap does not support {other}"),
        }
    }

    /// Exact backward commutativity:
    /// * operations on distinct keys always commute;
    /// * `Put(k,·)`/`Put(k,·)`: iff the values are equal (idempotence);
    /// * `Put(k,·)`/`Delete(k)`: conflict;
    /// * `Delete(k)`/`Delete(k)`: commute;
    /// * mutator of `k`/`Get(k)`: conflict;
    /// * `Get`/`Get`: commute.
    fn commutes_backward(&self, a: &OpVal, b: &OpVal) -> bool {
        use Op::{Delete, Get, Put};
        let key = |op: &Op| match op {
            Put(k, _) | Get(k) | Delete(k) => *k,
            _ => unreachable!(),
        };
        match (&a.0, &b.0) {
            (Put(..) | Get(_) | Delete(_), Put(..) | Get(_) | Delete(_))
                if key(&a.0) != key(&b.0) =>
            {
                true
            }
            (Put(_, v1), Put(_, v2)) => v1 == v2,
            (Delete(_), Delete(_)) => true,
            (Get(_), Get(_)) => true,
            (Put(..), Delete(_)) | (Delete(_), Put(..)) => false,
            (Put(..), Get(_)) | (Get(_), Put(..)) => false,
            (Delete(_), Get(_)) | (Get(_), Delete(_)) => false,
            _ => false,
        }
    }

    fn op_domain(&self) -> Vec<Op> {
        let mut ops = Vec::new();
        for k in [1i64, 2] {
            for v in [10i64, 20] {
                ops.push(Op::Put(k, v));
            }
            ops.push(Op::Get(k));
            ops.push(Op::Delete(k));
        }
        ops
    }

    fn bounded_states(&self) -> Vec<Value> {
        // All maps over keys {1,2} and values {10, 20}.
        let mut out = Vec::new();
        for v1 in [None, Some(10i64), Some(20)] {
            for v2 in [None, Some(10i64), Some(20)] {
                let mut m = BTreeMap::new();
                if let Some(v) = v1 {
                    m.insert(1, v);
                }
                if let Some(v) = v2 {
                    m.insert(2, v);
                }
                out.push(Value::IntMap(m));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_serial::commute_by_definition;

    fn states() -> Vec<Value> {
        // All maps over keys {1,2} and values {10, 20}, plus empty.
        let mut out = vec![Value::IntMap(BTreeMap::new())];
        for v1 in [None, Some(10i64), Some(20)] {
            for v2 in [None, Some(10i64), Some(20)] {
                let mut m = BTreeMap::new();
                if let Some(v) = v1 {
                    m.insert(1, v);
                }
                if let Some(v) = v2 {
                    m.insert(2, v);
                }
                out.push(Value::IntMap(m));
            }
        }
        out
    }

    fn all_ops() -> Vec<OpVal> {
        let mut ops = Vec::new();
        for k in [1i64, 2] {
            for v in [10i64, 20] {
                ops.push((Op::Put(k, v), Value::Ok));
                ops.push((Op::Get(k), Value::Int(v)));
            }
            ops.push((Op::Get(k), Value::Nil));
            ops.push((Op::Delete(k), Value::Ok));
        }
        ops
    }

    #[test]
    fn semantics() {
        let m = KvMapType::new();
        let (s1, v1) = m.apply(&m.initial(), &Op::Put(1, 10));
        assert_eq!(v1, Value::Ok);
        let (_, v2) = m.apply(&s1, &Op::Get(1));
        assert_eq!(v2, Value::Int(10));
        let (_, v3) = m.apply(&s1, &Op::Get(2));
        assert_eq!(v3, Value::Nil);
        let (s4, _) = m.apply(&s1, &Op::Delete(1));
        let (_, v5) = m.apply(&s4, &Op::Get(1));
        assert_eq!(v5, Value::Nil);
    }

    #[test]
    fn declared_commutativity_is_exactly_the_definition() {
        let m = KvMapType::new();
        let ops = all_ops();
        for a in &ops {
            for b in &ops {
                let declared = m.commutes_backward(a, b);
                let derived = commute_by_definition(&m, a, b, &states());
                assert_eq!(
                    declared, derived,
                    "mismatch for {a:?} vs {b:?}: declared={declared} derived={derived}"
                );
            }
        }
    }

    #[test]
    fn distinct_keys_always_commute() {
        let m = KvMapType::new();
        let p1 = (Op::Put(1, 10), Value::Ok);
        let d2 = (Op::Delete(2), Value::Ok);
        let g2 = (Op::Get(2), Value::Nil);
        assert!(m.commutes_backward(&p1, &d2));
        assert!(m.commutes_backward(&p1, &g2));
    }

    #[test]
    fn same_key_put_put_idempotence() {
        let m = KvMapType::new();
        let a = (Op::Put(1, 10), Value::Ok);
        let b = (Op::Put(1, 10), Value::Ok);
        let c = (Op::Put(1, 20), Value::Ok);
        assert!(m.commutes_backward(&a, &b), "equal values commute");
        assert!(!m.commutes_backward(&a, &c), "different values conflict");
    }
}
