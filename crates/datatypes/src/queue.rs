//! A FIFO queue: `Enqueue` / `Dequeue`.
//!
//! The least commutative of the library types — order is the whole point
//! of a queue — but backward commutativity is still not empty: two
//! dequeues that observed the *same* outcome commute, and an enqueue
//! commutes with a dequeue that returned an element other than the one
//! enqueued (the dequeue must have drawn from the existing prefix).

use nt_model::{Op, Value};
use nt_serial::{OpVal, SerialType};

/// FIFO queue serial type, initially empty. `Dequeue` on an empty queue
/// returns `Nil` and leaves the queue empty.
#[derive(Clone, Debug, Default)]
pub struct QueueType;

impl QueueType {
    /// A fresh (empty-initialized) queue type.
    pub fn new() -> Self {
        QueueType
    }
}

fn as_list(state: &Value) -> &Vec<i64> {
    match state {
        Value::IntList(l) => l,
        other => panic!("queue state must be IntList, got {other}"),
    }
}

impl SerialType for QueueType {
    fn type_name(&self) -> &'static str {
        "queue"
    }

    fn initial(&self) -> Value {
        Value::IntList(Vec::new())
    }

    fn apply(&self, state: &Value, op: &Op) -> (Value, Value) {
        let l = as_list(state);
        match op {
            Op::Enqueue(e) => {
                let mut t = l.clone();
                t.push(*e);
                (Value::IntList(t), Value::Ok)
            }
            Op::Dequeue => {
                if l.is_empty() {
                    (state.clone(), Value::Nil)
                } else {
                    (Value::IntList(l[1..].to_vec()), Value::Int(l[0]))
                }
            }
            other => panic!("queue does not support {other}"),
        }
    }

    /// Exact backward commutativity:
    /// * `Enqueue(a)`/`Enqueue(b)`: iff `a = b`;
    /// * `Enqueue(a)`/`Dequeue → v`: iff `v = Int(c)` with `c ≠ a`
    ///   (a dequeue returning `Nil` or the enqueued element itself pins
    ///   the order);
    /// * `Dequeue → v1`/`Dequeue → v2`: iff `v1 = v2`.
    fn commutes_backward(&self, a: &OpVal, b: &OpVal) -> bool {
        use Op::{Dequeue, Enqueue};
        match (&a.0, &b.0) {
            (Enqueue(x), Enqueue(y)) => x == y,
            (Enqueue(x), Dequeue) => match &b.1 {
                Value::Int(c) => c != x,
                _ => false,
            },
            (Dequeue, Enqueue(y)) => match &a.1 {
                Value::Int(c) => c != y,
                _ => false,
            },
            (Dequeue, Dequeue) => a.1 == b.1,
            _ => false,
        }
    }

    fn op_domain(&self) -> Vec<Op> {
        vec![Op::Enqueue(1), Op::Enqueue(2), Op::Dequeue]
    }

    fn bounded_states(&self) -> Vec<Value> {
        let lists: [&[i64]; 8] = [
            &[],
            &[1],
            &[2],
            &[1, 1],
            &[1, 2],
            &[2, 1],
            &[2, 2],
            &[1, 2, 1],
        ];
        lists.iter().map(|l| Value::IntList(l.to_vec())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_serial::commute_by_definition;

    /// All queue states over {1, 2} of length ≤ 2, plus one length-3.
    fn states() -> Vec<Value> {
        let lists: [&[i64]; 8] = [
            &[],
            &[1],
            &[2],
            &[1, 1],
            &[1, 2],
            &[2, 1],
            &[2, 2],
            &[1, 2, 1],
        ];
        lists.iter().map(|l| Value::IntList(l.to_vec())).collect()
    }

    fn all_ops() -> Vec<OpVal> {
        vec![
            (Op::Enqueue(1), Value::Ok),
            (Op::Enqueue(2), Value::Ok),
            (Op::Dequeue, Value::Int(1)),
            (Op::Dequeue, Value::Int(2)),
            (Op::Dequeue, Value::Nil),
        ]
    }

    #[test]
    fn semantics() {
        let q = QueueType::new();
        let (s1, v1) = q.apply(&q.initial(), &Op::Enqueue(7));
        assert_eq!(v1, Value::Ok);
        let (s2, _) = q.apply(&s1, &Op::Enqueue(8));
        let (s3, v3) = q.apply(&s2, &Op::Dequeue);
        assert_eq!(v3, Value::Int(7));
        let (s4, v4) = q.apply(&s3, &Op::Dequeue);
        assert_eq!(v4, Value::Int(8));
        let (_, v5) = q.apply(&s4, &Op::Dequeue);
        assert_eq!(v5, Value::Nil);
    }

    #[test]
    fn declared_commutativity_is_sound_and_tight() {
        let q = QueueType::new();
        let ops = all_ops();
        for a in &ops {
            for b in &ops {
                let declared = q.commutes_backward(a, b);
                let derived = commute_by_definition(&q, a, b, &states());
                assert_eq!(
                    declared, derived,
                    "mismatch for {a:?} vs {b:?}: declared={declared} derived={derived}"
                );
            }
        }
    }

    #[test]
    fn enqueue_dequeue_interplay() {
        let q = QueueType::new();
        let enq1 = (Op::Enqueue(1), Value::Ok);
        // Dequeue that returned a different element: commutes.
        assert!(q.commutes_backward(&enq1, &(Op::Dequeue, Value::Int(2))));
        // Dequeue that returned the enqueued element: pins order.
        assert!(!q.commutes_backward(&enq1, &(Op::Dequeue, Value::Int(1))));
        // Dequeue on empty: the enqueue would have fed it.
        assert!(!q.commutes_backward(&enq1, &(Op::Dequeue, Value::Nil)));
    }
}
