//! # nt-datatypes
//!
//! The library of serial data types used by the workspace (§6 of the
//! paper): each type supplies its deterministic serial specification plus
//! an **exact backward-commutativity relation**, property-tested against
//! the paper's definition (via `nt_serial::commute_by_definition`).
//!
//! | type | operations | commutativity highlights |
//! |------|------------|--------------------------|
//! | [`RwRegister`] (re-export) | `Read`, `Write` | only read/read commutes (§3.1) |
//! | [`Counter`] | `Add`, `GetCount` | adds commute with adds |
//! | [`Account`] | `Deposit`, `Withdraw`, `Balance` | successful withdrawals commute (Weihl) |
//! | [`IntSetType`] | `Insert`, `Remove`, `Contains`, `Size` | distinct-element ops commute; insert/insert idempotent |
//! | [`QueueType`] | `Enqueue`, `Dequeue` | same-outcome dequeues commute |
//! | [`KvMapType`] | `Put`, `Get`, `Delete` | distinct keys always commute |
//!
//! ```
//! use nt_datatypes::Account;
//! use nt_model::{Op, Value};
//! use nt_serial::SerialType;
//! let acc = Account::new(100);
//! // Two successful withdrawals commute backward (Weihl's example)…
//! let w1 = (Op::Withdraw(30), Value::Bool(true));
//! let w2 = (Op::Withdraw(50), Value::Bool(true));
//! assert!(acc.commutes_backward(&w1, &w2));
//! // …but a deposit conflicts with a withdrawal.
//! let d = (Op::Deposit(10), Value::Ok);
//! assert!(!acc.commutes_backward(&d, &w1));
//! ```

#![forbid(unsafe_code)]

pub mod account;
pub mod counter;
pub mod kvmap;
pub mod queue;
pub mod set;

pub use account::Account;
pub use counter::Counter;
pub use kvmap::KvMapType;
pub use nt_serial::RwRegister;
pub use queue::QueueType;
pub use set::IntSetType;

use nt_serial::SerialType;
use std::sync::Arc;

/// Convenience: every library type, for data-driven tests and benches.
pub fn all_types() -> Vec<(&'static str, Arc<dyn SerialType>)> {
    vec![
        ("register", Arc::new(RwRegister::new(0))),
        ("counter", Arc::new(Counter::new(0))),
        ("account", Arc::new(Account::new(100))),
        ("intset", Arc::new(IntSetType::new())),
        ("queue", Arc::new(QueueType::new())),
        ("kvmap", Arc::new(KvMapType::new())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_types_listing() {
        let ts = all_types();
        assert_eq!(ts.len(), 6);
        for (name, ty) in &ts {
            assert_eq!(*name, ty.type_name());
        }
    }

    #[test]
    fn commutativity_relations_are_symmetric() {
        use nt_model::{Op, Value};
        let probes = vec![
            (Op::Read, Value::Int(0)),
            (Op::Write(1), Value::Ok),
            (Op::Add(2), Value::Ok),
            (Op::GetCount, Value::Int(2)),
            (Op::Deposit(3), Value::Ok),
            (Op::Withdraw(3), Value::Bool(true)),
            (Op::Withdraw(3), Value::Bool(false)),
            (Op::Balance, Value::Int(0)),
            (Op::Insert(1), Value::Ok),
            (Op::Remove(1), Value::Ok),
            (Op::Contains(1), Value::Bool(true)),
            (Op::Size, Value::Int(0)),
            (Op::Enqueue(1), Value::Ok),
            (Op::Dequeue, Value::Int(1)),
            (Op::Dequeue, Value::Nil),
        ];
        for (_, ty) in all_types() {
            for a in &probes {
                for b in &probes {
                    assert_eq!(
                        ty.commutes_backward(a, b),
                        ty.commutes_backward(b, a),
                        "{}: symmetry for {a:?} vs {b:?}",
                        ty.type_name()
                    );
                }
            }
        }
    }
}
