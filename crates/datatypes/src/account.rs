//! A bank account: `Deposit` / conditional `Withdraw` / `Balance`.
//!
//! The classic example (due to Weihl) of *return-value-dependent*
//! commutativity: two successful withdrawals commute backward (if both
//! succeeded in one order, the balance covered both, so they succeed in
//! the other), and two failed withdrawals commute — but a successful one
//! conflicts with a failed one, and deposits conflict with withdrawals
//! (a deposit can flip a failure into a success).

use nt_model::{Op, Value};
use nt_serial::{OpVal, SerialType};

/// Bank account serial type. The balance never goes negative: `Withdraw`
/// is conditional, returning `Bool(false)` and leaving the balance alone
/// when funds are insufficient.
#[derive(Clone, Debug)]
pub struct Account {
    /// Initial balance (non-negative).
    pub init: i64,
}

impl Account {
    /// An account with the given opening balance.
    pub fn new(init: i64) -> Self {
        assert!(init >= 0, "opening balance must be non-negative");
        Account { init }
    }
}

impl SerialType for Account {
    fn type_name(&self) -> &'static str {
        "account"
    }

    fn initial(&self) -> Value {
        Value::Int(self.init)
    }

    fn apply(&self, state: &Value, op: &Op) -> (Value, Value) {
        let s = state.as_int().expect("account state is Int");
        match op {
            Op::Deposit(a) => {
                debug_assert!(*a >= 0, "deposits are non-negative");
                (Value::Int(s + a), Value::Ok)
            }
            Op::Withdraw(a) => {
                debug_assert!(*a >= 0, "withdrawals are non-negative");
                if s >= *a {
                    (Value::Int(s - a), Value::Bool(true))
                } else {
                    (state.clone(), Value::Bool(false))
                }
            }
            Op::Balance => (state.clone(), Value::Int(s)),
            other => panic!("account does not support {other}"),
        }
    }

    /// Exact backward commutativity (amount-0 operations are no-ops and
    /// commute with everything):
    ///
    /// | pair                                   | commute? |
    /// |----------------------------------------|----------|
    /// | `Deposit`/`Deposit`                    | yes |
    /// | `Deposit`/`Withdraw(·, true or false)` | iff an amount is 0 |
    /// | `Withdraw(true)`/`Withdraw(true)`      | yes |
    /// | `Withdraw(false)`/`Withdraw(false)`    | yes |
    /// | `Withdraw(true)`/`Withdraw(false)`     | iff an amount is 0¹ |
    /// | `Deposit`/`Balance`                    | iff amount 0 |
    /// | `Withdraw(true)`/`Balance`             | iff amount 0 |
    /// | `Withdraw(false)`/`Balance`            | yes |
    /// | `Balance`/`Balance`                    | yes |
    ///
    /// ¹ `Withdraw(0)` always returns `true`, so a 0-amount never appears
    /// on the `false` side; the 0-amount escape applies to the `true` side.
    fn commutes_backward(&self, a: &OpVal, b: &OpVal) -> bool {
        use Op::{Balance, Deposit, Withdraw};
        let ok = |v: &Value| *v == Value::Bool(true);
        match ((&a.0, &a.1), (&b.0, &b.1)) {
            ((Deposit(x), _), (Deposit(y), _)) => {
                let _ = (x, y);
                true
            }
            ((Deposit(x), _), (Withdraw(y), _)) | ((Withdraw(y), _), (Deposit(x), _)) => {
                *x == 0 || *y == 0
            }
            ((Withdraw(x), va), (Withdraw(y), vb)) => {
                if ok(va) == ok(vb) {
                    true
                } else {
                    *x == 0 || *y == 0
                }
            }
            ((Deposit(x), _), (Balance, _)) | ((Balance, _), (Deposit(x), _)) => *x == 0,
            ((Withdraw(x), v), (Balance, _)) | ((Balance, _), (Withdraw(x), v)) => {
                !ok(v) || *x == 0
            }
            ((Balance, _), (Balance, _)) => true,
            _ => false,
        }
    }

    fn op_domain(&self) -> Vec<Op> {
        let mut ops = Vec::new();
        for amt in [0i64, 1, 3, 7] {
            ops.push(Op::Deposit(amt));
            ops.push(Op::Withdraw(amt));
        }
        ops.push(Op::Balance);
        ops
    }

    fn bounded_states(&self) -> Vec<Value> {
        let mut vals: Vec<i64> = (0..=12).collect();
        if !vals.contains(&self.init) {
            vals.push(self.init);
        }
        vals.into_iter().map(Value::Int).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_serial::commute_by_definition;

    fn states() -> Vec<Value> {
        (0..=12).map(Value::Int).collect()
    }

    fn all_ops() -> Vec<OpVal> {
        let mut ops = Vec::new();
        for amt in [0i64, 1, 3, 7] {
            ops.push((Op::Deposit(amt), Value::Ok));
            ops.push((Op::Withdraw(amt), Value::Bool(true)));
            if amt > 0 {
                ops.push((Op::Withdraw(amt), Value::Bool(false)));
            }
        }
        for b in [0i64, 3, 12] {
            ops.push((Op::Balance, Value::Int(b)));
        }
        ops
    }

    #[test]
    fn semantics() {
        let acc = Account::new(10);
        let (s, v) = acc.apply(&Value::Int(10), &Op::Withdraw(4));
        assert_eq!((s, v), (Value::Int(6), Value::Bool(true)));
        let (s, v) = acc.apply(&Value::Int(3), &Op::Withdraw(4));
        assert_eq!((s, v), (Value::Int(3), Value::Bool(false)));
        let (s, v) = acc.apply(&Value::Int(3), &Op::Deposit(4));
        assert_eq!((s, v), (Value::Int(7), Value::Ok));
        let (_, v) = acc.apply(&Value::Int(3), &Op::Balance);
        assert_eq!(v, Value::Int(3));
    }

    #[test]
    fn declared_commutativity_is_exactly_the_definition() {
        // Exhaustive over a representative operation set and all states
        // 0..=12 (closed under the op amounts used): declared == derived.
        let acc = Account::new(0);
        let ops = all_ops();
        for a in &ops {
            for b in &ops {
                let declared = acc.commutes_backward(a, b);
                let derived = commute_by_definition(&acc, a, b, &states());
                assert_eq!(
                    declared, derived,
                    "mismatch for {a:?} vs {b:?}: declared={declared} derived={derived}"
                );
            }
        }
    }

    #[test]
    fn successful_withdrawals_commute() {
        let acc = Account::new(0);
        let w1 = (Op::Withdraw(3), Value::Bool(true));
        let w2 = (Op::Withdraw(7), Value::Bool(true));
        assert!(acc.commutes_backward(&w1, &w2));
    }

    #[test]
    fn deposit_conflicts_with_withdrawal() {
        let acc = Account::new(0);
        let d = (Op::Deposit(5), Value::Ok);
        let wt = (Op::Withdraw(3), Value::Bool(true));
        let wf = (Op::Withdraw(3), Value::Bool(false));
        assert!(!acc.commutes_backward(&d, &wt));
        assert!(!acc.commutes_backward(&d, &wf));
        assert!(!acc.commutes_backward(&wf, &d), "symmetric");
    }
}
