//! Wide-range latency histograms.
//!
//! `nt-obs`'s [`nt_obs::metrics::Histogram`] tops out at 4096 — fine for
//! counting retries or depths, useless for microsecond latencies that
//! span six orders of magnitude. [`WallHist`] is a log-linear (HDR-style)
//! histogram: each power-of-two octave is split into [`SUB`] sub-buckets,
//! bounding the relative quantile error at `1/SUB` (12.5%) across the
//! whole `u64` range. The recording side is a single atomic increment,
//! so hot paths share one histogram without a lock; [`HistSnapshot`] is
//! the plain-data view used for merging, percentile estimation, and
//! single-threaded recording (e.g. inside a load-driver connection).

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Sub-buckets per power-of-two octave.
pub const SUB: usize = 1 << SUB_BITS;
/// Total bucket count covering all of `u64`.
pub const BUCKETS: usize = (65 - SUB_BITS as usize) * SUB;

/// The bucket a value lands in. Values below [`SUB`] get exact unit
/// buckets; larger values share an octave sliced into [`SUB`] pieces.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros();
        let sub = ((v >> (octave - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (octave - SUB_BITS + 1) as usize * SUB + sub
    }
}

/// Upper bound of the values mapped to bucket `idx` — the conservative
/// representative reported for percentiles.
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let octave = (idx / SUB - 1) as u32 + SUB_BITS;
        let sub = (idx % SUB) as u64;
        let width = 1u64 << (octave - SUB_BITS);
        (1u64 << octave) + sub * width + (width - 1)
    }
}

/// Concurrent log-linear histogram: one relaxed atomic increment per
/// observation, no locks, fixed memory.
pub struct WallHist {
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for WallHist {
    fn default() -> Self {
        WallHist::new()
    }
}

impl WallHist {
    /// An empty histogram.
    pub fn new() -> WallHist {
        WallHist {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one value. Relaxed ordering: per-bucket totals are exact,
    /// cross-bucket skew is bounded by in-flight observations.
    pub fn observe(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A plain-data copy for percentile math and merging.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data histogram: the snapshot of a [`WallHist`], also usable
/// directly as a single-threaded recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    sum: u64,
    count: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot::new()
    }
}

impl HistSnapshot {
    /// An empty snapshot.
    pub fn new() -> HistSnapshot {
        HistSnapshot {
            counts: vec![0; BUCKETS],
            sum: 0,
            count: 0,
        }
    }

    /// Record one value (single-threaded path).
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Fold another snapshot into this one. Merging is associative and
    /// commutative: bucket-wise addition.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the target rank. Empty histograms report 0.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(idx);
            }
        }
        bucket_upper(BUCKETS - 1)
    }

    /// Shorthand for the p50/p95/p99 triple.
    pub fn p50_p95_p99(&self) -> (u64, u64, u64) {
        (
            self.percentile(0.50),
            self.percentile(0.95),
            self.percentile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev_idx = 0;
        for v in 0..100_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev_idx, "index regressed at {v}");
            assert!(idx <= prev_idx + 1, "index skipped at {v}");
            assert!(bucket_upper(idx) >= v, "upper bound below value at {v}");
            prev_idx = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn upper_bound_error_is_bounded() {
        for v in [10u64, 100, 1_000, 10_000, 1_000_000, 1 << 40] {
            let up = bucket_upper(bucket_index(v));
            assert!(up >= v);
            assert!(
                (up - v) as f64 <= v as f64 / SUB as f64 + 1.0,
                "error too big at {v}: {up}"
            );
        }
    }

    #[test]
    fn percentiles_of_uniform_range() {
        let mut h = HistSnapshot::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let (p50, p95, p99) = h.p50_p95_p99();
        // Conservative upper bounds within one sub-bucket of the truth.
        assert!((450..=650).contains(&p50), "p50 = {p50}");
        assert!((900..=1100).contains(&p95), "p95 = {p95}");
        assert!((950..=1150).contains(&p99), "p99 = {p99}");
        assert_eq!(h.percentile(1.0), h.percentile(0.9999));
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |seed: u64, n: u64| {
            let mut h = HistSnapshot::new();
            let mut x = seed;
            for _ in 0..n {
                // xorshift64 keeps this deterministic and dependency-free.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                h.observe(x % 1_000_000);
            }
            h
        };
        let (a, b, c) = (mk(11, 300), mk(23, 500), mk(47, 700));
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // b + a == a + b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(left.count(), 1500);
        assert_eq!(left.sum(), a.sum() + b.sum() + c.sum());
    }

    #[test]
    fn atomic_hist_matches_serial_recording() {
        let h = WallHist::new();
        let mut serial = HistSnapshot::new();
        for v in [0u64, 1, 7, 8, 100, 4096, 123_456] {
            h.observe(v);
            serial.observe(v);
        }
        assert_eq!(h.snapshot(), serial);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn concurrent_observations_all_land() {
        let h = std::sync::Arc::new(WallHist::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.observe(t * 1000 + i % 997);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
