//! Per-request lifecycle spans.
//!
//! The server stamps every frame at fixed points of its life —
//! decoded → enqueued for the executor → dequeued → executed →
//! response written — with both a wall-clock microsecond offset from
//! the telemetry epoch and the engine's logical [`SeqClock`] value, so
//! a span can be placed on the real timeline *and* ordered against the
//! recorded history. Spans aggregate into per-phase histograms and
//! export as a cross-thread Chrome `trace_event` timeline.
//!
//! [`SeqClock`]: https://docs.rs/ (nt-engine's recorder clock; carried
//! here as a plain `u64` so nt-telemetry stays dependency-light)

use nt_obs::json::JsonObj;

/// One request's lifecycle stamps. All `t_*` fields are microseconds
/// since the owning [`crate::Telemetry`]'s epoch; `seq_*` fields are
/// logical clock stamps from the engine's `SeqClock`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReqSpan {
    /// Connection id the frame arrived on.
    pub conn: u64,
    /// Wire sequence number of the request.
    pub seq: u64,
    /// Wire kind byte of the request (0x01..).
    pub kind: u8,
    /// Frame decoded by the read loop.
    pub t_decode: u64,
    /// Handed to the executor queue.
    pub t_enqueue: u64,
    /// Picked up by the executor.
    pub t_dequeue: u64,
    /// Engine execution finished.
    pub t_exec_end: u64,
    /// Response bytes written to the socket.
    pub t_respond: u64,
    /// Time spent blocked in the lock table during execution.
    pub lock_wait_us: u64,
    /// Time spent waiting for the WAL durability watermark before the
    /// response was acknowledged (zero when the server runs without a
    /// store or with `DurabilityMode::None`).
    pub log_wait_us: u64,
    /// Logical clock when the frame was decoded.
    pub seq_decode: u64,
    /// Logical clock when the response was written.
    pub seq_respond: u64,
}

impl ReqSpan {
    /// Parse + channel-send time: decode to executor enqueue.
    pub fn decode_enqueue_us(&self) -> u64 {
        self.t_enqueue.saturating_sub(self.t_decode)
    }

    /// Time the request sat in the executor queue.
    pub fn queue_wait_us(&self) -> u64 {
        self.t_dequeue.saturating_sub(self.t_enqueue)
    }

    /// Execution time (includes any lock wait).
    pub fn execute_us(&self) -> u64 {
        self.t_exec_end.saturating_sub(self.t_dequeue)
    }

    /// Response encode + socket write time.
    pub fn respond_us(&self) -> u64 {
        self.t_respond.saturating_sub(self.t_exec_end)
    }

    /// Whole server-side span: decode to response written.
    pub fn total_us(&self) -> u64 {
        self.t_respond.saturating_sub(self.t_decode)
    }

    /// True when the wall stamps are non-decreasing in lifecycle order
    /// and the logical stamps agree with that order.
    pub fn monotone(&self) -> bool {
        self.t_decode <= self.t_enqueue
            && self.t_enqueue <= self.t_dequeue
            && self.t_dequeue <= self.t_exec_end
            && self.t_exec_end <= self.t_respond
            && self.seq_decode <= self.seq_respond
    }
}

/// Render spans as a Chrome `trace_event` JSON document: one process
/// (pid 3, "nt-serve runtime"), one track per connection, and three
/// complete ("X") events per request — queue wait, execute, respond —
/// so chrome://tracing shows where each request's time went. Wall
/// timestamps are real microseconds; the logical stamps ride along in
/// `args` for correlation with the recorded history.
pub fn spans_to_chrome_trace(spans: &[ReqSpan]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(spans.len() * 3 + 1);
    let mut meta = JsonObj::new();
    meta.str("name", "process_name")
        .str("ph", "M")
        .num("pid", 3)
        .num("tid", 0)
        .raw("args", "{\"name\":\"nt-serve runtime\"}".to_string());
    events.push(meta.build());
    for s in spans {
        let phases = [
            ("queue_wait", s.t_enqueue, s.queue_wait_us()),
            ("execute", s.t_dequeue, s.execute_us()),
            ("respond", s.t_exec_end, s.respond_us()),
        ];
        for (name, ts, dur) in phases {
            let mut args = JsonObj::new();
            args.num("seq", s.seq)
                .num("kind", u64::from(s.kind))
                .num("lock_wait_us", s.lock_wait_us)
                .num("log_wait_us", s.log_wait_us)
                .num("seq_decode", s.seq_decode)
                .num("seq_respond", s.seq_respond);
            let mut o = JsonObj::new();
            o.str("name", name)
                .str("cat", "req")
                .str("ph", "X")
                .num("ts", ts)
                .num("dur", dur)
                .num("pid", 3)
                .num("tid", s.conn)
                .raw("args", args.build());
            events.push(o.build());
        }
    }
    format!("[{}]", events.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span() -> ReqSpan {
        ReqSpan {
            conn: 1,
            seq: 9,
            kind: 0x03,
            t_decode: 100,
            t_enqueue: 110,
            t_dequeue: 150,
            t_exec_end: 400,
            t_respond: 420,
            lock_wait_us: 200,
            log_wait_us: 30,
            seq_decode: 5,
            seq_respond: 12,
        }
    }

    #[test]
    fn phase_durations_decompose_total() {
        let s = span();
        assert!(s.monotone());
        assert_eq!(
            s.decode_enqueue_us() + s.queue_wait_us() + s.execute_us() + s.respond_us(),
            s.total_us()
        );
        assert_eq!(s.queue_wait_us(), 40);
        assert_eq!(s.execute_us(), 250);
    }

    #[test]
    fn non_monotone_span_is_flagged() {
        let mut s = span();
        s.t_dequeue = 90;
        assert!(!s.monotone());
    }

    #[test]
    fn chrome_trace_parses_and_orders() {
        let trace = spans_to_chrome_trace(&[span()]);
        let v = nt_obs::json::Json::parse(&trace).expect("trace parses");
        let nt_obs::json::Json::Arr(items) = v else {
            panic!("trace is an array");
        };
        // 1 metadata + 3 phase events.
        assert_eq!(items.len(), 4);
        let mut last_ts = 0.0;
        for ev in &items[1..] {
            let ts = ev.get("ts").and_then(nt_obs::json::Json::as_num).unwrap();
            assert!(ts >= last_ts, "timestamps in order");
            last_ts = ts;
            assert_eq!(
                ev.get("pid").and_then(nt_obs::json::Json::as_num),
                Some(3.0)
            );
        }
    }
}
