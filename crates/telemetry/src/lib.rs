//! # nt-telemetry
//!
//! Live runtime observability for the threaded engine (`nt-engine`) and
//! the network server (`nt-net`). Where `nt-obs` instruments the
//! *deterministic simulator* with a logical-clock journal, this crate
//! instruments the *real runtime*: wall-clock latencies, cross-thread
//! request lifecycles, and lock-table wait behavior, all with
//! lock-light recording so the hot paths stay hot.
//!
//! Pieces:
//!
//! * [`WallHist`] / [`HistSnapshot`] — wide-range log-linear latency
//!   histograms (atomic recording, associative merging, p50/p95/p99).
//! * [`ReqSpan`] + [`spans_to_chrome_trace`] — per-request lifecycle
//!   stamps (decode → enqueue → dequeue → execute → respond) with dual
//!   wall/logical clocks, exportable as a Chrome `trace_event` timeline.
//! * [`StatsCell`] — generation-stamped coherent counter snapshots
//!   (the safe-code replacement for torn field-by-field atomic clones).
//! * [`TelemetryHandle`] — the cheap clonable handle threaded through
//!   engine and server. Disabled it is a single `Option` branch per
//!   call site: no clock reads, no allocation, no contention.

#![forbid(unsafe_code)]

pub mod cell;
pub mod hist;
pub mod smoke;
pub mod span;

pub use cell::StatsCell;
pub use hist::{HistSnapshot, WallHist};
pub use smoke::SmokeLine;
pub use span::{spans_to_chrome_trace, ReqSpan};

use nt_obs::json::JsonObj;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default bound on the retained request-span ring.
pub const DEFAULT_SPAN_RING: usize = 4096;

/// The fixed request phases aggregated into histograms. Order is the
/// lifecycle order (the last three are reactor phases observed outside
/// the span lifecycle); names are the JSON keys.
pub const PHASES: [&str; 10] = [
    "decode_enqueue",
    "queue_wait",
    "execute",
    "lock_wait",
    "log_wait",
    "respond",
    "total",
    "poll_wait",
    "batch_assemble",
    "coalesce",
];

/// Per-phase latency histograms for the request lifecycle.
#[derive(Default)]
pub struct PhaseHists {
    /// Decode to executor-queue enqueue.
    pub decode_enqueue: WallHist,
    /// Sitting in the executor queue.
    pub queue_wait: WallHist,
    /// Engine execution (includes lock wait).
    pub execute: WallHist,
    /// Blocked in the lock table (subset of execute).
    pub lock_wait: WallHist,
    /// Waiting for the WAL durability watermark (subset of execute's
    /// tail; zero without a durable store).
    pub log_wait: WallHist,
    /// Response encode + socket write.
    pub respond: WallHist,
    /// Whole server-side span.
    pub total: WallHist,
    /// Reactor poll loop blocked waiting for readiness (per `poll(2)`
    /// call, not per request; includes idle time).
    pub poll_wait: WallHist,
    /// Decoding a `BATCH` frame's ops and assembling its per-op response
    /// entries (per batch frame; excludes the durability barrier).
    pub batch_assemble: WallHist,
    /// The coalesced group-commit durability barrier: one `wait_durable`
    /// covering every mutating op since the last flush (per barrier).
    pub coalesce: WallHist,
}

impl PhaseHists {
    /// Snapshots in [`PHASES`] order.
    pub fn snapshots(&self) -> Vec<(&'static str, HistSnapshot)> {
        vec![
            ("decode_enqueue", self.decode_enqueue.snapshot()),
            ("queue_wait", self.queue_wait.snapshot()),
            ("execute", self.execute.snapshot()),
            ("lock_wait", self.lock_wait.snapshot()),
            ("log_wait", self.log_wait.snapshot()),
            ("respond", self.respond.snapshot()),
            ("total", self.total.snapshot()),
            ("poll_wait", self.poll_wait.snapshot()),
            ("batch_assemble", self.batch_assemble.snapshot()),
            ("coalesce", self.coalesce.snapshot()),
        ]
    }
}

/// The shared telemetry registry: one per server (or per engine run).
pub struct Telemetry {
    epoch: Instant,
    /// Request lifecycle histograms.
    pub phases: PhaseHists,
    /// Lock-table blocked-interval durations (every acquire that waited).
    pub lock_blocked: WallHist,
    /// Lock hold times (grant to release/discard).
    pub lock_hold: WallHist,
    spans: Mutex<VecDeque<ReqSpan>>,
    span_cap: usize,
    gauges: Mutex<BTreeMap<&'static str, u64>>,
}

impl Telemetry {
    fn new(span_cap: usize) -> Telemetry {
        Telemetry {
            epoch: Instant::now(),
            phases: PhaseHists::default(),
            lock_blocked: WallHist::new(),
            lock_hold: WallHist::new(),
            spans: Mutex::new(VecDeque::with_capacity(span_cap.min(1024))),
            span_cap,
            gauges: Mutex::new(BTreeMap::new()),
        }
    }
}

/// Cheap clonable handle: `None` means telemetry is off and every call
/// is a single branch.
#[derive(Clone, Default)]
pub struct TelemetryHandle(Option<Arc<Telemetry>>);

impl TelemetryHandle {
    /// A handle that records nothing.
    pub fn disabled() -> TelemetryHandle {
        TelemetryHandle(None)
    }

    /// A live handle with the given span-ring bound.
    pub fn enabled(span_cap: usize) -> TelemetryHandle {
        TelemetryHandle(Some(Arc::new(Telemetry::new(span_cap.max(1)))))
    }

    /// Whether this handle records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Microseconds since the telemetry epoch — 0 when disabled, so
    /// disabled call sites never touch the clock.
    pub fn now_us(&self) -> u64 {
        match &self.0 {
            Some(t) => t.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Record a finished request span: updates every phase histogram and
    /// appends to the bounded span ring (oldest dropped first).
    pub fn record_span(&self, span: ReqSpan) {
        let Some(t) = &self.0 else { return };
        t.phases.decode_enqueue.observe(span.decode_enqueue_us());
        t.phases.queue_wait.observe(span.queue_wait_us());
        t.phases.execute.observe(span.execute_us());
        t.phases.lock_wait.observe(span.lock_wait_us);
        t.phases.log_wait.observe(span.log_wait_us);
        t.phases.respond.observe(span.respond_us());
        t.phases.total.observe(span.total_us());
        let mut ring = t.spans.lock().expect("span ring poisoned");
        if ring.len() == t.span_cap {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    /// Record one blocked interval from the lock table.
    pub fn observe_lock_blocked(&self, us: u64) {
        if let Some(t) = &self.0 {
            t.lock_blocked.observe(us);
        }
    }

    /// Record one lock hold time.
    pub fn observe_lock_hold(&self, us: u64) {
        if let Some(t) = &self.0 {
            t.lock_hold.observe(us);
        }
    }

    /// Record one observation into a named reactor phase histogram
    /// (`poll_wait`, `batch_assemble`, `coalesce`). These phases are fed
    /// outside the request-span lifecycle — the reactor's poll loop and
    /// the worker's group-commit flush have no single request to pin a
    /// span to. Unknown names are ignored.
    pub fn observe_phase(&self, name: &str, us: u64) {
        let Some(t) = &self.0 else { return };
        match name {
            "poll_wait" => t.phases.poll_wait.observe(us),
            "batch_assemble" => t.phases.batch_assemble.observe(us),
            "coalesce" => t.phases.coalesce.observe(us),
            _ => {}
        }
    }

    /// Publish a gauge (last write wins).
    pub fn gauge_set(&self, name: &'static str, v: u64) {
        if let Some(t) = &self.0 {
            t.gauges.lock().expect("gauges poisoned").insert(name, v);
        }
    }

    /// Current gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(&'static str, u64)> {
        match &self.0 {
            Some(t) => t
                .gauges
                .lock()
                .expect("gauges poisoned")
                .iter()
                .map(|(k, v)| (*k, *v))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Copy of the retained span ring (oldest first).
    pub fn spans(&self) -> Vec<ReqSpan> {
        match &self.0 {
            Some(t) => t
                .spans
                .lock()
                .expect("span ring poisoned")
                .iter()
                .copied()
                .collect(),
            None => Vec::new(),
        }
    }

    /// Number of spans recorded and retained.
    pub fn span_count(&self) -> usize {
        match &self.0 {
            Some(t) => t.spans.lock().expect("span ring poisoned").len(),
            None => 0,
        }
    }

    /// The retained spans as a Chrome trace document (`None` when
    /// disabled).
    pub fn chrome_trace(&self) -> Option<String> {
        self.0
            .as_ref()
            .map(|_| spans_to_chrome_trace(&self.spans()))
    }

    /// One JSON object with every histogram and gauge this handle holds:
    /// `{"phases": {...}, "lock_blocked": {...}, "lock_hold": {...},
    /// "gauges": {...}, "spans_retained": n}`. Empty object when
    /// disabled.
    pub fn to_json(&self) -> String {
        let Some(t) = &self.0 else {
            return "{}".to_string();
        };
        let mut phases = JsonObj::new();
        for (name, h) in t.phases.snapshots() {
            phases.raw(name, hist_json(&h));
        }
        let mut gauges = JsonObj::new();
        for (name, v) in self.gauges() {
            gauges.num(name, v);
        }
        let mut o = JsonObj::new();
        o.raw("phases", phases.build())
            .raw("lock_blocked", hist_json(&t.lock_blocked.snapshot()))
            .raw("lock_hold", hist_json(&t.lock_hold.snapshot()))
            .raw("gauges", gauges.build())
            .num("spans_retained", self.span_count() as u64);
        o.build()
    }
}

/// A histogram summary as JSON:
/// `{"count": n, "mean_us": m, "p50_us": a, "p95_us": b, "p99_us": c}`.
pub fn hist_json(h: &HistSnapshot) -> String {
    let (p50, p95, p99) = h.p50_p95_p99();
    let mut o = JsonObj::new();
    o.num("count", h.count())
        .float("mean_us", h.mean())
        .num("p50_us", p50)
        .num("p95_us", p95)
        .num("p99_us", p99);
    o.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_obs::json::Json;

    #[test]
    fn disabled_handle_records_nothing_and_never_allocates_spans() {
        let h = TelemetryHandle::disabled();
        assert!(!h.is_enabled());
        assert_eq!(h.now_us(), 0);
        h.record_span(ReqSpan {
            t_respond: 100,
            ..ReqSpan::default()
        });
        h.observe_lock_blocked(50);
        h.gauge_set("sgt.nodes", 7);
        assert_eq!(h.span_count(), 0);
        assert!(h.gauges().is_empty());
        assert_eq!(h.to_json(), "{}");
        assert!(h.chrome_trace().is_none());
    }

    #[test]
    fn span_ring_is_bounded() {
        let h = TelemetryHandle::enabled(4);
        for seq in 0..10u64 {
            h.record_span(ReqSpan {
                seq,
                ..ReqSpan::default()
            });
        }
        let spans = h.spans();
        assert_eq!(spans.len(), 4);
        // Oldest dropped: the ring keeps the newest 4.
        assert_eq!(spans[0].seq, 6);
        assert_eq!(spans[3].seq, 9);
    }

    #[test]
    fn to_json_summarizes_all_phases() {
        let h = TelemetryHandle::enabled(16);
        h.record_span(ReqSpan {
            t_decode: 0,
            t_enqueue: 10,
            t_dequeue: 30,
            t_exec_end: 130,
            t_respond: 150,
            lock_wait_us: 60,
            ..ReqSpan::default()
        });
        h.observe_lock_blocked(60);
        h.observe_lock_hold(90);
        h.observe_phase("poll_wait", 40);
        h.observe_phase("batch_assemble", 15);
        h.observe_phase("coalesce", 25);
        h.gauge_set("sgt.nodes", 3);
        let v = Json::parse(&h.to_json()).expect("telemetry JSON parses");
        let phases = v.get("phases").unwrap();
        for name in PHASES {
            let p = phases.get(name).unwrap_or_else(|| panic!("phase {name}"));
            assert_eq!(p.get("count").and_then(Json::as_num), Some(1.0));
        }
        assert_eq!(
            phases
                .get("queue_wait")
                .and_then(|p| p.get("mean_us"))
                .and_then(Json::as_num),
            Some(20.0)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|g| g.get("sgt.nodes"))
                .and_then(Json::as_num),
            Some(3.0)
        );
        assert_eq!(v.get("spans_retained").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn reactor_phases_record_via_observe_phase_only() {
        let h = TelemetryHandle::enabled(4);
        h.observe_phase("poll_wait", 100);
        h.observe_phase("poll_wait", 200);
        h.observe_phase("coalesce", 50);
        h.observe_phase("no_such_phase", 1);
        let v = Json::parse(&h.to_json()).expect("telemetry JSON parses");
        let phases = v.get("phases").unwrap();
        let count = |name: &str| {
            phases
                .get(name)
                .and_then(|p| p.get("count"))
                .and_then(Json::as_num)
        };
        assert_eq!(count("poll_wait"), Some(2.0));
        assert_eq!(count("coalesce"), Some(1.0));
        assert_eq!(count("batch_assemble"), Some(0.0));
        // A span record must not feed the reactor phases.
        h.record_span(ReqSpan::default());
        let v = Json::parse(&h.to_json()).expect("parses");
        let phases = v.get("phases").unwrap();
        assert_eq!(
            phases
                .get("poll_wait")
                .and_then(|p| p.get("count"))
                .and_then(Json::as_num),
            Some(2.0)
        );
        let disabled = TelemetryHandle::disabled();
        disabled.observe_phase("poll_wait", 10);
        assert_eq!(disabled.to_json(), "{}");
    }

    #[test]
    fn now_us_is_monotone_when_enabled() {
        let h = TelemetryHandle::enabled(1);
        let a = h.now_us();
        let b = h.now_us();
        assert!(b >= a);
    }
}
