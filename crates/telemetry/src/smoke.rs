//! One-line machine-readable smoke summaries.
//!
//! Every `--smoke` binary in the workspace (engine_bench, net_bench,
//! nt-load) emits exactly one JSON line on stdout so CI can grep and
//! parse the result uniformly: `{"suite": "...", ...}`. This builder
//! keeps the shape consistent — `suite` first, then whatever counters
//! the gate cares about. It lives here (rather than in the bench
//! harness) so the load driver's sweep cells and the bench binaries
//! share one percentile-reporting idiom.

use crate::HistSnapshot;
use nt_obs::json::JsonObj;

/// One-line machine-readable smoke summary.
pub struct SmokeLine(JsonObj);

impl SmokeLine {
    /// Start a line for the named suite.
    pub fn new(suite: &str) -> SmokeLine {
        let mut o = JsonObj::new();
        o.str("suite", suite);
        SmokeLine(o)
    }

    /// Add an integer counter.
    pub fn num(mut self, key: &str, v: u64) -> SmokeLine {
        self.0.num(key, v);
        self
    }

    /// Add a float measurement.
    pub fn float(mut self, key: &str, v: f64) -> SmokeLine {
        self.0.float(key, v);
        self
    }

    /// Add a string field (e.g. a sweep cell's mode tag).
    pub fn str(mut self, key: &str, v: &str) -> SmokeLine {
        self.0.str(key, v);
        self
    }

    /// Add a boolean verdict.
    pub fn bool(mut self, key: &str, v: bool) -> SmokeLine {
        self.0.bool(key, v);
        self
    }

    /// Add a raw (already-serialized) JSON value.
    pub fn raw(mut self, key: &str, json: String) -> SmokeLine {
        self.0.raw(key, json);
        self
    }

    /// Add `{prefix}_p50`/`_p95`/`_p99` from a latency histogram, so
    /// every smoke line reports tail latency alongside its throughput
    /// counters under uniform key names (prefixes carry the unit, e.g.
    /// `top_us`).
    pub fn percentiles(mut self, prefix: &str, hist: &HistSnapshot) -> SmokeLine {
        let (p50, p95, p99) = hist.p50_p95_p99();
        self.0.num(&format!("{prefix}_p50"), p50);
        self.0.num(&format!("{prefix}_p95"), p95);
        self.0.num(&format!("{prefix}_p99"), p99);
        self
    }

    /// The finished line (no trailing newline).
    pub fn build(self) -> String {
        self.0.build()
    }

    /// Print the line to stdout.
    pub fn emit(self) {
        println!("{}", self.build());
    }
}
