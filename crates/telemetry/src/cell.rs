//! Coherent counter snapshots.
//!
//! A struct of independent relaxed atomics cannot be cloned coherently:
//! a reader loading field by field can observe counter B's increment
//! from an update whose counter-A increment it missed (a *torn*
//! snapshot — e.g. `executed > frames` even though every writer bumps
//! `frames` first). [`StatsCell`] fixes this the only way available
//! under `#![forbid(unsafe_code)]` (a true seqlock needs racy reads):
//! all coupled counters live in one `Copy` struct behind a mutex, every
//! update mutates them together under the lock, and a snapshot copies
//! the whole struct under the same lock — so any snapshot equals the
//! state after some exact prefix of updates. A generation stamp counts
//! updates so tests (and metrics readers) can tell snapshots apart and
//! verify progress.
//!
//! The lock is uncontended in practice — updates are a few machine
//! instructions and each connection thread touches disjoint request
//! streams — so this stays "lock-light" rather than lock-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A generation-stamped cell of coupled counters.
pub struct StatsCell<T: Copy> {
    generation: AtomicU64,
    inner: Mutex<T>,
}

impl<T: Copy + Default> Default for StatsCell<T> {
    fn default() -> Self {
        StatsCell::new(T::default())
    }
}

impl<T: Copy> StatsCell<T> {
    /// A cell holding `value` at generation 0.
    pub fn new(value: T) -> StatsCell<T> {
        StatsCell {
            generation: AtomicU64::new(0),
            inner: Mutex::new(value),
        }
    }

    /// Apply one coherent update: every counter the closure touches
    /// changes atomically with respect to [`StatsCell::snapshot`]. The
    /// closure's return value passes through, so callers can read a
    /// just-incremented counter (e.g. a fresh connection id) in the same
    /// critical section.
    pub fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.inner.lock().expect("stats cell poisoned");
        let out = f(&mut guard);
        // Stamped inside the lock so generations and states agree.
        self.generation.fetch_add(1, Ordering::Relaxed);
        out
    }

    /// A coherent copy of the whole counter struct plus the generation
    /// (number of updates) it reflects.
    pub fn snapshot(&self) -> (u64, T) {
        let guard = self.inner.lock().expect("stats cell poisoned");
        (self.generation.load(Ordering::Relaxed), *guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Copy, Default)]
    struct Pair {
        frames: u64,
        executed: u64,
    }

    #[test]
    fn generation_counts_updates() {
        let cell = StatsCell::new(Pair::default());
        cell.update(|p| p.frames += 1);
        cell.update(|p| {
            p.frames += 1;
            p.executed += 1;
        });
        let (generation, p) = cell.snapshot();
        assert_eq!(generation, 2);
        assert_eq!((p.frames, p.executed), (2, 1));
    }

    #[test]
    fn snapshots_never_tear_under_concurrent_load() {
        // Writers maintain the invariant executed == frames by updating
        // both in one coherent update; field-by-field atomic clones (the
        // bug this replaces) can observe executed > frames.
        let cell = Arc::new(StatsCell::new(Pair::default()));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let cell = cell.clone();
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        cell.update(|p| {
                            p.frames += 1;
                            p.executed += 1;
                        });
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let cell = cell.clone();
                std::thread::spawn(move || {
                    let mut last_generation = 0;
                    for _ in 0..20_000 {
                        let (generation, p) = cell.snapshot();
                        assert_eq!(p.frames, p.executed, "torn snapshot");
                        assert_eq!(p.frames, generation, "state/generation mismatch");
                        assert!(generation >= last_generation, "generation regressed");
                        last_generation = generation;
                    }
                })
            })
            .collect();
        for t in writers.into_iter().chain(readers) {
            t.join().unwrap();
        }
        let (generation, p) = cell.snapshot();
        assert_eq!(generation, 80_000);
        assert_eq!(p.frames, 80_000);
    }
}
