//! Property tests for the §5.3 lemmas about `M1_X`, driven by a randomized
//! controller-faithful harness (creates, responses, ascending-order
//! informs, and subtree aborts):
//!
//! * **Lemma 9** (conflicting lockholders form an ancestor chain) is
//!   asserted inside `M1_X` after every step in debug builds — these tests
//!   exercise it thousands of times.
//! * **Lemma 10**: after a non-orphan access responds, the highest
//!   ancestor to which it is lock-visible holds the corresponding lock.
//! * **Lemma 13** (instantiated at enabled reads): the value `M1_X` offers
//!   a read equals the `final-value` of the responded writes that are
//!   lock-visible to the reader.

use nt_automata::Component;
use nt_locking::{LockMode, MossObject};
use nt_model::{Action, ObjId, Op, TxId, TxTree, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Driver state mirroring what a generic controller would know.
struct Driver {
    tree: Arc<TxTree>,
    obj: MossObject,
    /// Accesses not yet created.
    uncreated: Vec<TxId>,
    /// Responded accesses, in response order, with their write data.
    responded: Vec<(TxId, Option<i64>)>,
    /// Transactions whose INFORM_COMMIT has been delivered.
    informed_commit: BTreeSet<TxId>,
    /// Transactions whose INFORM_ABORT has been delivered.
    informed_abort: BTreeSet<TxId>,
}

impl Driver {
    /// Lock-visibility per the paper (§5.3): informs for every ancestor of
    /// `t` strictly below `lca(t, t2)`, delivered in ascending order. The
    /// driver delivers informs leaf-to-root, so set membership suffices.
    fn lock_visible(&self, t: TxId, t2: TxId) -> bool {
        let stop = self.tree.lca(t, t2);
        let mut cur = t;
        while cur != stop {
            if !self.informed_commit.contains(&cur) {
                return false;
            }
            cur = self.tree.parent(cur).expect("ends at lca");
        }
        true
    }

    fn local_orphan(&self, t: TxId) -> bool {
        self.tree
            .ancestors(t)
            .any(|u| self.informed_abort.contains(&u))
    }

    /// Lemma 13's reference value for reader `t`: the data of the last
    /// responded write lock-visible to `t` (initial 0 otherwise).
    fn expected_read_value(&self, t: TxId) -> i64 {
        let mut v = 0;
        for &(w, data) in &self.responded {
            if let Some(d) = data {
                if !self.local_orphan(w) && self.lock_visible(w, t) {
                    v = d;
                }
            }
        }
        v
    }

    fn check_lemma10(&self) {
        let (wl, rl) = self.obj.lockholders();
        for &(t, data) in &self.responded {
            if self.local_orphan(t) {
                continue;
            }
            // Highest ancestor to which t is lock-visible.
            let highest = self
                .tree
                .ancestors(t)
                .filter(|&u| self.lock_visible(t, u))
                .last()
                .unwrap_or(t);
            if data.is_some() {
                assert!(
                    wl.contains(&highest),
                    "Lemma 10: write lock for {t} must sit at {highest}"
                );
            } else {
                assert!(
                    rl.contains(&highest) || wl.contains(&highest),
                    "Lemma 10: read lock for {t} must sit at {highest}"
                );
            }
        }
    }

    fn check_lemma13_on_enabled_reads(&self) {
        let mut buf = Vec::new();
        self.obj.enabled_outputs(&mut buf);
        for a in buf {
            if let Action::RequestCommit(t, Value::Int(v)) = a {
                let expect = self.expected_read_value(t);
                assert_eq!(
                    v, expect,
                    "Lemma 13: read {t} offered {v}, lock-visible final value is {expect}"
                );
            }
        }
    }
}

/// Build a tree: `tops` top-level transactions × one access each to X0,
/// write/read per the bit pattern.
fn build(tops: usize, writes: &[bool]) -> (Arc<TxTree>, Vec<TxId>, Vec<TxId>) {
    let mut tree = TxTree::new();
    let x = tree.add_object();
    let mut top = Vec::new();
    let mut accesses = Vec::new();
    for i in 0..tops {
        let t = tree.add_inner(TxId::ROOT);
        let op = if writes[i % writes.len()] {
            Op::Write(100 + i as i64)
        } else {
            Op::Read
        };
        accesses.push(tree.add_access(t, x, op));
        top.push(t);
    }
    (Arc::new(tree), top, accesses)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lemmas_hold_under_random_schedules(
        tops in 2usize..6,
        writes in prop::collection::vec(any::<bool>(), 1..6),
        choices in prop::collection::vec(any::<u16>(), 4..60),
    ) {
        let (tree, top, accesses) = build(tops, &writes);
        let mut d = Driver {
            obj: MossObject::new(Arc::clone(&tree), ObjId(0), 0, LockMode::ReadWrite),
            uncreated: accesses.clone(),
            responded: Vec::new(),
            informed_commit: BTreeSet::new(),
            informed_abort: BTreeSet::new(),
            tree: Arc::clone(&tree),
        };
        for &c in &choices {
            match c % 4 {
                // Create a pending access.
                0 if !d.uncreated.is_empty() => {
                    let t = d.uncreated.remove(c as usize % d.uncreated.len());
                    d.obj.apply(&Action::Create(t));
                }
                // Fire an enabled response.
                1 => {
                    let mut buf = Vec::new();
                    d.obj.enabled_outputs(&mut buf);
                    if !buf.is_empty() {
                        let a = buf[c as usize % buf.len()].clone();
                        if let Action::RequestCommit(t, _) = &a {
                            let data = tree.op_of(*t).and_then(|op| op.write_data());
                            d.responded.push((*t, data));
                        }
                        d.obj.apply(&a);
                    }
                }
                // Commit-and-inform a responded access and its parent
                // (ascending order), if not already done or dead.
                2 => {
                    let candidates: Vec<TxId> = d
                        .responded
                        .iter()
                        .map(|&(t, _)| t)
                        .filter(|&t| {
                            !d.informed_commit.contains(&t) && !d.local_orphan(t)
                        })
                        .collect();
                    if !candidates.is_empty() {
                        let t = candidates[c as usize % candidates.len()];
                        d.obj.apply(&Action::InformCommit(ObjId(0), t));
                        d.informed_commit.insert(t);
                        let p = tree.parent(t).unwrap();
                        if p != TxId::ROOT && !d.informed_commit.contains(&p) {
                            d.obj.apply(&Action::InformCommit(ObjId(0), p));
                            d.informed_commit.insert(p);
                        }
                    }
                }
                // Abort a top-level transaction that has not committed.
                _ => {
                    let candidates: Vec<TxId> = top
                        .iter()
                        .copied()
                        .filter(|t| {
                            !d.informed_commit.contains(t) && !d.informed_abort.contains(t)
                        })
                        .collect();
                    // Abort rarely, and only if something else remains live.
                    if !candidates.is_empty() && c % 16 == 3 {
                        let t = candidates[c as usize % candidates.len()];
                        d.obj.apply(&Action::InformAbort(ObjId(0), t));
                        d.informed_abort.insert(t);
                    }
                }
            }
            d.check_lemma10();
            d.check_lemma13_on_enabled_reads();
        }
    }
}

/// A deterministic end-to-end walk of Lemma 13: nested writers at
/// different levels, informs flowing up, a read observing each stage.
#[test]
fn lemma13_value_tracks_lock_visibility_stages() {
    let mut tree = TxTree::new();
    let x = tree.add_object();
    let a = tree.add_inner(TxId::ROOT);
    let a1 = tree.add_inner(a);
    let w = tree.add_access(a1, x, Op::Write(7));
    let r_in_a = tree.add_access(a, x, Op::Read);
    let b = tree.add_inner(TxId::ROOT);
    let r_out = tree.add_access(b, x, Op::Read);
    let tree = Arc::new(tree);
    let mut o = MossObject::new(Arc::clone(&tree), x, 0, LockMode::ReadWrite);

    o.apply(&Action::Create(w));
    o.apply(&Action::RequestCommit(w, Value::Ok));
    // Stage 1: w uncommitted — the sibling-level read inside a waits; the
    // outside read waits too.
    o.apply(&Action::Create(r_in_a));
    o.apply(&Action::Create(r_out));
    let mut buf = Vec::new();
    o.enabled_outputs(&mut buf);
    assert!(buf.is_empty());
    // Stage 2: w committed → lock at a1; r_in_a still waits (a1 is not its
    // ancestor); commit a1 → lock at a; now r_in_a sees 7, r_out still
    // waits.
    o.apply(&Action::InformCommit(x, w));
    o.apply(&Action::InformCommit(x, a1));
    buf.clear();
    o.enabled_outputs(&mut buf);
    assert_eq!(buf, vec![Action::RequestCommit(r_in_a, Value::Int(7))]);
    o.apply(&buf[0]);
    // Stage 3: a commits → lock at T0 → the outside read sees 7.
    o.apply(&Action::InformCommit(x, r_in_a));
    o.apply(&Action::InformCommit(x, a));
    buf.clear();
    o.enabled_outputs(&mut buf);
    assert_eq!(buf, vec![Action::RequestCommit(r_out, Value::Int(7))]);
}
