//! # nt-locking
//!
//! Moss' read/write locking algorithm for nested transactions (§5.2) — the
//! default concurrency control of Argus and Camelot, proved correct by the
//! paper's Theorem 17 — implemented as the generic object automaton `M1_X`.
//!
//! ## The algorithm
//!
//! `M1_X` maintains read-lockholders, write-lockholders, and one stored
//! value per write-lockholder (a stack of tentative versions along the
//! transaction tree):
//!
//! * an access may be answered only when every holder of a conflicting lock
//!   is an *ancestor* of the access — otherwise the access simply waits
//!   (its `REQUEST_COMMIT` is not enabled);
//! * a read returns the value of the *least* write-lockholder (the most
//!   deeply nested tentative version) and takes a read lock;
//! * a write stores its value under itself and takes a write lock;
//! * `INFORM_COMMIT(T)` passes `T`'s locks — and tentative value — up to
//!   `parent(T)` (lock inheritance);
//! * `INFORM_ABORT(T)` discards all locks held by descendants of `T`
//!   (recovery: the aborted subtree leaves no trace).
//!
//! The crate also provides an *exclusive-only* variant (reads take write
//! locks) used by experiment E7 to measure what the read/write distinction
//! buys.
//!
//! Lemma 9 (conflicting lockholders form an ancestor chain) is checked as a
//! debug-mode invariant after every step.

#![forbid(unsafe_code)]

use nt_automata::Component;
use nt_model::{Action, ObjId, TxId, TxTree, Value};
use nt_obs::{Event, LockClass, TraceHandle};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Moss' lock-grant precondition (§5.2), shared between the simulated
/// object automaton [`MossObject`] and the threaded engine's sharded lock
/// table (`nt-engine`): an access `t` may be granted only when every holder
/// of a conflicting lock is an ancestor of `t`. Write-like requests
/// conflict with both lock classes; read requests conflict with write
/// locks only.
pub fn moss_precondition(
    tree: &TxTree,
    t: TxId,
    write_like: bool,
    write_holders: impl IntoIterator<Item = TxId>,
    read_holders: impl IntoIterator<Item = TxId>,
) -> bool {
    moss_precondition_by(
        |a, b| tree.is_ancestor(a, b),
        t,
        write_like,
        write_holders,
        read_holders,
    )
}

/// [`moss_precondition`] parameterized over the ancestor relation instead
/// of a concrete [`TxTree`], so callers holding a different tree
/// representation (the engine's growable session tree) can apply the exact
/// same rule.
pub fn moss_precondition_by(
    is_ancestor: impl Fn(TxId, TxId) -> bool,
    t: TxId,
    write_like: bool,
    write_holders: impl IntoIterator<Item = TxId>,
    read_holders: impl IntoIterator<Item = TxId>,
) -> bool {
    let writes_ok = write_holders.into_iter().all(|h| is_ancestor(h, t));
    if !write_like {
        writes_ok
    } else {
        writes_ok && read_holders.into_iter().all(|h| is_ancestor(h, t))
    }
}

/// The lockholders that block access `t` under [`moss_precondition`]: the
/// non-ancestor holders of conflicting locks. Empty iff the precondition
/// holds.
pub fn moss_blockers(
    tree: &TxTree,
    t: TxId,
    write_like: bool,
    write_holders: impl IntoIterator<Item = TxId>,
    read_holders: impl IntoIterator<Item = TxId>,
) -> Vec<TxId> {
    moss_blockers_by(
        |a, b| tree.is_ancestor(a, b),
        t,
        write_like,
        write_holders,
        read_holders,
    )
}

/// [`moss_blockers`] parameterized over the ancestor relation (see
/// [`moss_precondition_by`]).
pub fn moss_blockers_by(
    is_ancestor: impl Fn(TxId, TxId) -> bool,
    t: TxId,
    write_like: bool,
    write_holders: impl IntoIterator<Item = TxId>,
    read_holders: impl IntoIterator<Item = TxId>,
) -> Vec<TxId> {
    let mut blockers: Vec<TxId> = write_holders
        .into_iter()
        .filter(|&h| !is_ancestor(h, t))
        .collect();
    if write_like {
        blockers.extend(read_holders.into_iter().filter(|&h| !is_ancestor(h, t)));
    }
    blockers
}

/// Locking discipline: Moss read/write locks, or exclusive-only (ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// §5.2: reads take read locks, writes take write locks.
    ReadWrite,
    /// Every access takes a write lock (reads still return the stacked
    /// value). Baseline for experiment E7.
    Exclusive,
}

/// Moss' read/write locking object automaton `M1_X`.
pub struct MossObject {
    tree: Arc<TxTree>,
    x: ObjId,
    mode: LockMode,
    created: BTreeSet<TxId>,
    commit_requested: BTreeSet<TxId>,
    /// `write_lockholders` with the paper's `value` map folded in:
    /// holder → its tentative value.
    write_lockholders: BTreeMap<TxId, i64>,
    read_lockholders: BTreeSet<TxId>,
    /// Transactions whose `INFORM_ABORT` this object has received.
    /// Accesses that are descendants of one (*local orphans*, §5.3) are
    /// never answered — a sound strengthening of M1's preconditions that
    /// keeps late orphan requests from acquiring unreclaimable locks.
    aborted_seen: BTreeSet<TxId>,
    /// Observability sink (disabled by default; see `nt-obs`).
    trace: TraceHandle,
}

impl MossObject {
    /// A fresh `M1_X` for object `x` with initial value `init`
    /// (the start state has `T0` holding a write lock on `init`).
    pub fn new(tree: Arc<TxTree>, x: ObjId, init: i64, mode: LockMode) -> Self {
        let mut write_lockholders = BTreeMap::new();
        write_lockholders.insert(TxId::ROOT, init);
        MossObject {
            tree,
            x,
            mode,
            created: BTreeSet::new(),
            commit_requested: BTreeSet::new(),
            write_lockholders,
            read_lockholders: BTreeSet::new(),
            aborted_seen: BTreeSet::new(),
            trace: TraceHandle::disabled(),
        }
    }

    /// Attach an observability sink: lock acquisitions, inheritances, and
    /// abort-time discards are journaled through it.
    pub fn attach_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Crash–restart recovery: reconstruct an `M1_X` whose volatile state
    /// (lock tables, tentative values, orphan bookkeeping) was lost, by
    /// replaying this object's slice of the recorded behavior — its
    /// `CREATE`s, answered `REQUEST_COMMIT`s, and `INFORM_*` prefix, in
    /// recorded order. The replay runs untraced (no journal re-emission or
    /// metric double counting); the returned automaton is bitwise
    /// equivalent to the pre-crash one because `M1_X` is a deterministic
    /// function of its input/output history.
    pub fn recovered_from(
        tree: Arc<TxTree>,
        x: ObjId,
        init: i64,
        mode: LockMode,
        behavior: &[Action],
    ) -> (Self, u64) {
        let mut o = MossObject::new(tree, x, init, mode);
        let mut replayed = 0u64;
        for a in behavior {
            if o.is_input(a) || o.is_output(a) {
                o.apply(a);
                replayed += 1;
            }
        }
        (o, replayed)
    }

    /// The least (deepest) write-lockholder. The write-lockholders always
    /// form an ancestor chain (Lemma 9), so this is the unique holder that
    /// is a descendant of all others.
    fn least_write_lockholder(&self) -> TxId {
        *self
            .write_lockholders
            .iter()
            .max_by_key(|(t, _)| self.tree.depth(**t))
            .expect("T0 always holds a write lock")
            .0
    }

    /// Current value a read would observe (inspection).
    pub fn current_value(&self) -> i64 {
        self.write_lockholders[&self.least_write_lockholder()]
    }

    /// The lock chain invariant of Lemma 9: every pair drawn from
    /// write-lockholders × (read ∪ write)-lockholders is ancestor-related.
    fn check_lemma9(&self) {
        for &w in self.write_lockholders.keys() {
            for other in self
                .write_lockholders
                .keys()
                .chain(self.read_lockholders.iter())
            {
                assert!(
                    self.tree.is_ancestor(w, *other) || self.tree.is_ancestor(*other, w),
                    "Lemma 9 violated at {:?}: {w} vs {other} unrelated",
                    self.x
                );
            }
        }
    }

    /// Is `t` a local orphan at this object (§5.3): has an ancestor whose
    /// `INFORM_ABORT` was received here?
    pub fn is_local_orphan(&self, t: TxId) -> bool {
        self.tree
            .ancestors(t)
            .any(|u| self.aborted_seen.contains(&u))
    }

    /// Is the lock precondition for access `t` met?
    fn lock_precondition(&self, t: TxId) -> bool {
        let op = self
            .tree
            .op_of(t)
            .expect("created only holds accesses of x (is_input admits Create(t) only then)");
        let write_like = !op.is_rw_read() || self.mode == LockMode::Exclusive;
        moss_precondition(
            &self.tree,
            t,
            write_like,
            self.write_lockholders.keys().copied(),
            self.read_lockholders.iter().copied(),
        )
    }

    /// Accesses created but not yet answered whose locks are unavailable
    /// (inspection; the simulator's deadlock detector uses this).
    pub fn waiting(&self) -> Vec<(TxId, Vec<TxId>)> {
        let mut out = Vec::new();
        for &t in self.created.difference(&self.commit_requested) {
            if self.is_local_orphan(t) {
                continue;
            }
            if !self.lock_precondition(t) {
                let op = self.tree.op_of(t).expect(
                    "created only holds accesses of x (is_input admits Create(t) only then)",
                );
                let write_like = !op.is_rw_read() || self.mode == LockMode::Exclusive;
                let blockers = moss_blockers(
                    &self.tree,
                    t,
                    write_like,
                    self.write_lockholders.keys().copied(),
                    self.read_lockholders.iter().copied(),
                );
                out.push((t, blockers));
            }
        }
        out
    }

    /// Lockholders (inspection).
    pub fn lockholders(&self) -> (Vec<TxId>, Vec<TxId>) {
        (
            self.write_lockholders.keys().copied().collect(),
            self.read_lockholders.iter().copied().collect(),
        )
    }
}

impl Component for MossObject {
    fn name(&self) -> String {
        format!("M1({})", self.x)
    }

    fn is_input(&self, a: &Action) -> bool {
        match a {
            Action::Create(t) => self.tree.object_of(*t) == Some(self.x),
            Action::InformCommit(x, t) | Action::InformAbort(x, t) => {
                *x == self.x && *t != TxId::ROOT
            }
            _ => false,
        }
    }

    fn is_output(&self, a: &Action) -> bool {
        matches!(a, Action::RequestCommit(t, _) if self.tree.object_of(*t) == Some(self.x))
    }

    fn apply(&mut self, a: &Action) {
        match a {
            Action::Create(t) => {
                self.created.insert(*t);
            }
            Action::InformCommit(_, t) => {
                // Pass locks (and tentative value) up to the parent.
                let mut inherited = false;
                if let Some(v) = self.write_lockholders.remove(t) {
                    let p = self
                        .tree
                        .parent(*t)
                        .expect("is_input rejects InformCommit(T0), so t has a parent");
                    self.write_lockholders.insert(p, v);
                    inherited = true;
                }
                if self.read_lockholders.remove(t) {
                    let p = self
                        .tree
                        .parent(*t)
                        .expect("is_input rejects InformCommit(T0), so t has a parent");
                    self.read_lockholders.insert(p);
                    inherited = true;
                }
                if inherited && self.trace.enabled() {
                    let p = self
                        .tree
                        .parent(*t)
                        .expect("is_input rejects InformCommit(T0), so t has a parent");
                    self.trace.record(Event::LockInherited {
                        obj: self.x.0,
                        tx: t.0,
                        to: p.0,
                    });
                }
            }
            Action::InformAbort(_, t) => {
                self.aborted_seen.insert(*t);
                let tree = &self.tree;
                let t = *t;
                let before = self.write_lockholders.len() + self.read_lockholders.len();
                self.write_lockholders
                    .retain(|&h, _| !tree.is_ancestor(t, h));
                self.read_lockholders.retain(|&h| !tree.is_ancestor(t, h));
                let discarded =
                    before - (self.write_lockholders.len() + self.read_lockholders.len());
                if self.trace.enabled() {
                    self.trace.record(Event::AbortApplied {
                        obj: self.x.0,
                        tx: t.0,
                        discarded: discarded as u64,
                    });
                }
            }
            Action::RequestCommit(t, v) => {
                debug_assert!(self.lock_precondition(*t));
                self.commit_requested.insert(*t);
                let op = self
                    .tree
                    .op_of(*t)
                    .expect("RequestCommit is shared only for accesses of x (is_output)");
                let class = match op.write_data() {
                    Some(d) => {
                        debug_assert_eq!(*v, Value::Ok);
                        self.write_lockholders.insert(*t, d);
                        LockClass::Write
                    }
                    None => {
                        debug_assert_eq!(*v, Value::Int(self.current_value()));
                        if self.mode == LockMode::Exclusive {
                            // Exclusive variant: the read takes a write lock
                            // carrying the unchanged current value.
                            let cur = self.current_value();
                            self.write_lockholders.insert(*t, cur);
                        } else {
                            self.read_lockholders.insert(*t);
                        }
                        LockClass::Read
                    }
                };
                if self.trace.enabled() {
                    self.trace.record(Event::LockAcquired {
                        obj: self.x.0,
                        tx: t.0,
                        class,
                    });
                    self.trace
                        .add_depth("lock.acquired", self.tree.depth(*t), 1);
                }
            }
            _ => unreachable!("M1 shares no other action"),
        }
        if cfg!(debug_assertions) {
            self.check_lemma9();
        }
    }

    fn enabled_outputs(&self, buf: &mut Vec<Action>) {
        for &t in self.created.difference(&self.commit_requested) {
            if self.is_local_orphan(t) || !self.lock_precondition(t) {
                continue;
            }
            let op = self
                .tree
                .op_of(t)
                .expect("created only holds accesses of x (is_input admits Create(t) only then)");
            let v = match op.write_data() {
                Some(_) => Value::Ok,
                None => Value::Int(self.current_value()),
            };
            buf.push(Action::RequestCommit(t, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nt_model::Op;

    /// T0 ── a ── (w: write 5, r1: read) ; T0 ── b ── r2: read
    fn setup(mode: LockMode) -> (Arc<TxTree>, MossObject, TxId, TxId, TxId, TxId, TxId) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let w = tree.add_access(a, x, Op::Write(5));
        let r1 = tree.add_access(a, x, Op::Read);
        let r2 = tree.add_access(b, x, Op::Read);
        let tree = Arc::new(tree);
        let obj = MossObject::new(Arc::clone(&tree), x, 0, mode);
        (tree, obj, a, b, w, r1, r2)
    }

    fn enabled(o: &MossObject) -> Vec<Action> {
        let mut buf = Vec::new();
        o.enabled_outputs(&mut buf);
        buf
    }

    #[test]
    fn write_blocks_external_reader_until_commit_informs() {
        let (_tree, mut o, a, _b, w, _r1, r2) = setup(LockMode::ReadWrite);
        o.apply(&Action::Create(w));
        o.apply(&Action::RequestCommit(w, Value::Ok));
        // r2 (different branch) must wait: w holds a write lock.
        o.apply(&Action::Create(r2));
        assert!(enabled(&o).is_empty(), "r2 blocked by w's lock");
        assert_eq!(o.waiting().len(), 1);
        assert_eq!(o.waiting()[0].0, r2);
        assert_eq!(o.waiting()[0].1, vec![w]);
        // w commits, lock moves to a — still not an ancestor of r2.
        o.apply(&Action::InformCommit(ObjId(0), w));
        assert!(enabled(&o).is_empty());
        // a commits, lock moves to T0 — ancestor of r2: the read fires
        // and sees the inherited value 5.
        o.apply(&Action::InformCommit(ObjId(0), a));
        assert_eq!(enabled(&o), vec![Action::RequestCommit(r2, Value::Int(5))]);
    }

    #[test]
    fn sibling_reader_within_writer_branch_waits_only_for_the_write() {
        let (_tree, mut o, _a, _b, w, r1, _r2) = setup(LockMode::ReadWrite);
        o.apply(&Action::Create(w));
        o.apply(&Action::RequestCommit(w, Value::Ok));
        o.apply(&Action::Create(r1));
        // r1's sibling w holds the write lock; w is NOT an ancestor of r1.
        assert!(enabled(&o).is_empty());
        // After w commits to a, a IS an ancestor of r1: read sees 5.
        o.apply(&Action::InformCommit(ObjId(0), w));
        assert_eq!(enabled(&o), vec![Action::RequestCommit(r1, Value::Int(5))]);
    }

    #[test]
    fn abort_discards_tentative_value() {
        let (_tree, mut o, a, _b, w, _r1, r2) = setup(LockMode::ReadWrite);
        o.apply(&Action::Create(w));
        o.apply(&Action::RequestCommit(w, Value::Ok));
        assert_eq!(o.current_value(), 5);
        // Abort a: w's lock (a descendant of a) is discarded, value restored.
        o.apply(&Action::InformAbort(ObjId(0), a));
        assert_eq!(o.current_value(), 0);
        o.apply(&Action::Create(r2));
        assert_eq!(enabled(&o), vec![Action::RequestCommit(r2, Value::Int(0))]);
    }

    #[test]
    fn concurrent_readers_share() {
        let (_tree, mut o, _a, _b, _w, r1, r2) = setup(LockMode::ReadWrite);
        o.apply(&Action::Create(r1));
        o.apply(&Action::Create(r2));
        let e = enabled(&o);
        assert_eq!(e.len(), 2, "both reads enabled: read locks are shared");
        o.apply(&Action::RequestCommit(r1, Value::Int(0)));
        assert_eq!(enabled(&o), vec![Action::RequestCommit(r2, Value::Int(0))]);
    }

    #[test]
    fn exclusive_mode_blocks_second_reader() {
        let (_tree, mut o, a, _b, _w, r1, r2) = setup(LockMode::Exclusive);
        o.apply(&Action::Create(r1));
        o.apply(&Action::RequestCommit(r1, Value::Int(0)));
        o.apply(&Action::Create(r2));
        assert!(
            enabled(&o).is_empty(),
            "exclusive mode: r1's lock blocks r2"
        );
        // Release by committing r1 up to T0.
        o.apply(&Action::InformCommit(ObjId(0), r1));
        o.apply(&Action::InformCommit(ObjId(0), a));
        assert_eq!(enabled(&o), vec![Action::RequestCommit(r2, Value::Int(0))]);
    }

    #[test]
    fn reader_blocks_external_writer_in_rw_mode() {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let r = tree.add_access(a, x, Op::Read);
        let w = tree.add_access(b, x, Op::Write(9));
        let tree = Arc::new(tree);
        let mut o = MossObject::new(Arc::clone(&tree), x, 0, LockMode::ReadWrite);
        o.apply(&Action::Create(r));
        o.apply(&Action::RequestCommit(r, Value::Int(0)));
        let (wl, rl) = o.lockholders();
        assert_eq!(wl, vec![TxId::ROOT]);
        assert_eq!(rl, vec![r]);
        // The external writer waits on r's read lock.
        o.apply(&Action::Create(w));
        assert!(enabled(&o).is_empty());
        assert_eq!(o.waiting()[0], (w, vec![r]));
        // Release r's lock up to T0: the write proceeds.
        o.apply(&Action::InformCommit(ObjId(0), r));
        o.apply(&Action::InformCommit(ObjId(0), a));
        assert_eq!(enabled(&o), vec![Action::RequestCommit(w, Value::Ok)]);
    }

    #[test]
    fn crash_recovery_mid_subtransaction_with_live_orphans() {
        // Crash while a is mid-flight: w answered and inherited to a, b's
        // subtree was orphaned by INFORM_ABORT(b) while its access r2 is
        // still created-but-unanswered (a live orphan), and r1 waits on
        // nothing yet. Recovery must reproduce locks, tentative values,
        // orphan bookkeeping, and the waiting set exactly.
        let (tree, mut o, _a, b, w, r1, r2) = setup(LockMode::ReadWrite);
        let behavior = vec![
            Action::Create(w),
            Action::RequestCommit(w, Value::Ok),
            Action::Create(r2),
            Action::InformAbort(ObjId(0), b), // r2 is now a live local orphan
            Action::InformCommit(ObjId(0), w), // w's lock inherits to a
            Action::Create(r1),
        ];
        for a in &behavior {
            o.apply(a);
        }
        let (rec, replayed) = MossObject::recovered_from(
            Arc::clone(&tree),
            ObjId(0),
            0,
            LockMode::ReadWrite,
            &behavior,
        );
        assert_eq!(replayed, behavior.len() as u64);
        assert_eq!(rec.lockholders(), o.lockholders());
        assert_eq!(rec.current_value(), o.current_value());
        assert_eq!(rec.current_value(), 5, "a holds w's tentative 5");
        assert_eq!(rec.waiting(), o.waiting());
        assert!(rec.is_local_orphan(r2), "orphan bookkeeping survives");
        assert_eq!(enabled(&rec), enabled(&o), "same enabled answers");
        // The orphaned access is never answered post-recovery either.
        assert!(enabled(&rec)
            .iter()
            .all(|a| !matches!(a, Action::RequestCommit(t, _) if *t == r2)));
    }

    #[test]
    fn value_inheritance_stacks() {
        // Nested writers: a ── a1(w1: write 1), then a's own w overwrite.
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let a1 = tree.add_inner(a);
        let w1 = tree.add_access(a1, x, Op::Write(1));
        let w2 = tree.add_access(a, x, Op::Write(2));
        let r = tree.add_access(a, x, Op::Read);
        let tree = Arc::new(tree);
        let mut o = MossObject::new(Arc::clone(&tree), x, 0, LockMode::ReadWrite);
        o.apply(&Action::Create(w1));
        o.apply(&Action::RequestCommit(w1, Value::Ok));
        o.apply(&Action::InformCommit(ObjId(0), w1));
        o.apply(&Action::InformCommit(ObjId(0), a1));
        // a now holds the write lock with value 1.
        assert_eq!(o.current_value(), 1);
        o.apply(&Action::Create(w2));
        o.apply(&Action::RequestCommit(w2, Value::Ok));
        assert_eq!(o.current_value(), 2);
        // Abort w2 alone: restores a's value 1.
        o.apply(&Action::InformAbort(ObjId(0), w2));
        assert_eq!(o.current_value(), 1);
        o.apply(&Action::Create(r));
        assert_eq!(enabled(&o), vec![Action::RequestCommit(r, Value::Int(1))]);
    }
}
