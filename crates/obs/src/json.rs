//! A minimal, dependency-free JSON value: a writer with correct string
//! escaping (used by every exporter) and a recursive-descent parser (used
//! by the schema validator and the CI gate that checks exports re-parse).
//!
//! Only the subset of JSON the observability layer emits is needed, but
//! the parser accepts any RFC 8259 document so the validation gates are
//! honest: they run the emitted bytes through an independent reader rather
//! than trusting the writer.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or to-be-written JSON value. Objects keep insertion order on
/// the write path (via [`JsonObj`]) and sorted order after parsing.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; everything this layer emits fits i64/f64.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (parsed form: sorted by key).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object's field, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Parse one JSON document, requiring it to span the full input
    /// (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Escape `s` into a JSON string literal (including the quotes).
pub fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An order-preserving JSON object builder for the write path: fields are
/// emitted in insertion order so journals are byte-stable.
#[derive(Default)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn push_raw(&mut self, key: &str, raw: String) -> &mut Self {
        self.fields.push((key.to_string(), raw));
        self
    }

    /// Add a string field.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        let mut s = String::new();
        escape_str(v, &mut s);
        self.push_raw(key, s)
    }

    /// Add an unsigned integer field.
    pub fn num(&mut self, key: &str, v: u64) -> &mut Self {
        self.push_raw(key, v.to_string())
    }

    /// Add a signed integer field.
    pub fn inum(&mut self, key: &str, v: i64) -> &mut Self {
        self.push_raw(key, v.to_string())
    }

    /// Add a float field (finite; NaN/inf are emitted as null).
    pub fn float(&mut self, key: &str, v: f64) -> &mut Self {
        if v.is_finite() {
            self.push_raw(key, format!("{v}"))
        } else {
            self.push_raw(key, "null".to_string())
        }
    }

    /// Add a boolean field.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.push_raw(key, v.to_string())
    }

    /// Add an array of unsigned integers.
    pub fn num_arr(&mut self, key: &str, vs: &[u64]) -> &mut Self {
        let body: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
        self.push_raw(key, format!("[{}]", body.join(",")))
    }

    /// Add a pre-rendered JSON fragment (caller guarantees validity).
    pub fn raw(&mut self, key: &str, fragment: String) -> &mut Self {
        self.push_raw(key, fragment)
    }

    /// Render as `{"k":v,...}`.
    pub fn build(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_str(k, &mut out);
            out.push(':');
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

impl fmt::Display for JsonObj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.build())
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not emitted by this layer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing on
                    // char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {s:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let mut o = JsonObj::new();
        o.num("round", 3)
            .str("type", "lock_acquired")
            .bool("ok", true)
            .num_arr("blockers", &[1, 2, 3]);
        let s = o.build();
        let v = Json::parse(&s).unwrap();
        assert_eq!(v.get("round").unwrap().as_num(), Some(3.0));
        assert_eq!(v.get("type").unwrap().as_str(), Some("lock_acquired"));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            v.get("blockers"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.0),
                Json::Num(3.0)
            ]))
        );
    }

    #[test]
    fn escaping_roundtrips() {
        let nasty = "quote\" back\\ newline\n tab\t ctrl\u{1} unicode é";
        let mut o = JsonObj::new();
        o.str("s", nasty);
        let v = Json::parse(&o.build()).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("truth").is_err());
    }

    #[test]
    fn nested_documents_parse() {
        let v = Json::parse(r#"{"a":[{"b":null},{"c":-1.5e2}],"d":{}}"#).unwrap();
        let Json::Arr(items) = v.get("a").unwrap() else {
            panic!("array expected");
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].get("c").unwrap().as_num(), Some(-150.0));
    }
}
