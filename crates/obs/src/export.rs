//! Journal exporters: JSONL and Chrome `trace_event` JSON.
//!
//! Both are pure functions of the stamped journal, so exports inherit the
//! recorder's determinism. The Chrome export uses the event sequence
//! number as its microsecond timestamp (monotonic, deterministic) and maps
//! checker phases to `B`/`E` duration events so `chrome://tracing` and
//! Perfetto render phase spans; everything else becomes a thread-scoped
//! instant event on the track of the object it concerns.

use crate::event::{Event, Stamped};
use crate::json::JsonObj;

/// Render a journal as JSONL (one object per line, trailing newline;
/// empty string for an empty journal).
pub fn to_jsonl(journal: &[Stamped]) -> String {
    let mut out = String::new();
    for s in journal {
        out.push_str(&s.to_json_line());
        out.push('\n');
    }
    out
}

/// Render a journal in Chrome `trace_event` format ("JSON object format":
/// `{"traceEvents": [...], ...}`).
///
/// Track mapping: `pid` 1 is the simulation; `tid` 0 is the executor /
/// controller, `tid` 100+x is object `X_x`, and `pid` 2 / `tid` 0 is the
/// checker. Timestamps are sequence numbers in microseconds.
pub fn to_chrome_trace(journal: &[Stamped]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(journal.len() + 8);
    for meta in [(1u64, "nt-sim"), (2u64, "nt-sgt checker")] {
        let mut m = JsonObj::new();
        let mut args = JsonObj::new();
        args.str("name", meta.1);
        m.str("name", "process_name")
            .str("ph", "M")
            .num("pid", meta.0)
            .num("tid", 0)
            .raw("args", args.build());
        events.push(m.build());
    }
    for s in journal {
        let (pid, tid) = track_of(&s.event);
        let ph = match &s.event {
            Event::CheckPhaseStart { .. } => "B",
            Event::CheckPhaseEnd { .. } => "E",
            _ => "i",
        };
        let name: &str = match &s.event {
            Event::CheckPhaseStart { phase } | Event::CheckPhaseEnd { phase } => phase,
            e => e.kind(),
        };
        let mut o = JsonObj::new();
        o.str("name", name)
            .str("ph", ph)
            .num("ts", s.seq)
            .num("pid", pid)
            .num("tid", tid);
        if ph == "i" {
            o.str("s", "t"); // thread-scoped instant
        }
        let mut args = JsonObj::new();
        args.num("round", s.round).num("step", s.step);
        s.event.write_fields(&mut args);
        o.raw("args", args.build());
        events.push(o.build());
    }
    let mut root = JsonObj::new();
    root.raw("traceEvents", format!("[{}]", events.join(",")))
        .str("displayTimeUnit", "ms");
    root.build()
}

fn track_of(e: &Event) -> (u64, u64) {
    match e {
        Event::CheckPhaseStart { .. }
        | Event::CheckPhaseEnd { .. }
        | Event::SgEdgeInserted { .. }
        | Event::CheckVerdict { .. } => (2, 0),
        other => match other.object() {
            Some(x) => (1, 100 + u64::from(x)),
            None => (1, 0),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::{Event, LockClass};

    fn sample() -> Vec<Stamped> {
        let mk = |seq, event| Stamped {
            round: 1,
            step: seq,
            seq,
            event,
        };
        vec![
            mk(
                0,
                Event::RunStart {
                    protocol: "moss-rw",
                    seed: 1,
                },
            ),
            mk(
                1,
                Event::LockAcquired {
                    obj: 0,
                    tx: 3,
                    class: LockClass::Write,
                },
            ),
            mk(2, Event::CheckPhaseStart { phase: "sg_build" }),
            mk(
                3,
                Event::SgEdgeInserted {
                    parent: 0,
                    from: 1,
                    to: 2,
                    kind: "conflict",
                },
            ),
            mk(4, Event::CheckPhaseEnd { phase: "sg_build" }),
        ]
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let jl = to_jsonl(&sample());
        assert_eq!(jl.lines().count(), 5);
        for line in jl.lines() {
            Json::parse(line).unwrap();
        }
    }

    #[test]
    fn chrome_trace_parses_and_pairs_phases() {
        let ct = to_chrome_trace(&sample());
        let v = Json::parse(&ct).unwrap();
        let Some(Json::Arr(evs)) = v.get("traceEvents") else {
            panic!("traceEvents array");
        };
        // 2 metadata + 5 events.
        assert_eq!(evs.len(), 7);
        let phases: Vec<&str> = evs
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "B").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "E").count(), 1);
        // ts are monotonic.
        let ts: Vec<f64> = evs
            .iter()
            .skip(2)
            .filter_map(|e| e.get("ts").and_then(Json::as_num))
            .collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn object_events_land_on_object_tracks() {
        let ct = to_chrome_trace(&sample());
        let v = Json::parse(&ct).unwrap();
        let Some(Json::Arr(evs)) = v.get("traceEvents") else {
            panic!("traceEvents array");
        };
        let lock = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("lock_acquired"))
            .unwrap();
        assert_eq!(lock.get("tid").unwrap().as_num(), Some(100.0));
        let sg = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("sg_edge_inserted"))
            .unwrap();
        assert_eq!(sg.get("pid").unwrap().as_num(), Some(2.0));
    }
}
