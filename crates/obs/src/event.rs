//! The typed event taxonomy of the observability layer.
//!
//! Every instrumented site in the protocol/checker stack emits one of
//! these variants; the recorder stamps it with the logical clock and the
//! exporters render it. Field types are plain integers (`TxId`/`ObjId`
//! arena indices) so events serialize bytewise-identically across runs.

use crate::json::JsonObj;
use nt_model::{ObjId, TxId};

/// Which lock class an access acquired (Moss locking).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockClass {
    /// A shared read lock.
    Read,
    /// An exclusive write lock (also what reads take in `Exclusive` mode).
    Write,
}

impl LockClass {
    fn as_str(self) -> &'static str {
        match self {
            LockClass::Read => "read",
            LockClass::Write => "write",
        }
    }
}

/// One structured event. See `DESIGN.md` §9 for the taxonomy rationale.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A simulation run started.
    RunStart {
        /// Protocol label (`moss-rw`, `undo`, `mvto`, …).
        protocol: &'static str,
        /// Interleaving seed of the run.
        seed: u64,
    },
    /// A simulation run ended.
    RunEnd {
        /// Actions fired.
        steps: u64,
        /// Scheduler rounds.
        rounds: u64,
        /// Whether the run quiesced (vs. hitting the step cap).
        quiescent: bool,
    },
    /// An access acquired a lock (Moss locking, on `REQUEST_COMMIT`).
    LockAcquired {
        /// Object.
        obj: u32,
        /// The access transaction.
        tx: u32,
        /// Read or write lock.
        class: LockClass,
    },
    /// `INFORM_COMMIT` passed a lock (and tentative value) up to the parent.
    LockInherited {
        /// Object.
        obj: u32,
        /// The committing holder.
        tx: u32,
        /// The parent that inherits.
        to: u32,
    },
    /// `INFORM_ABORT` reached an object and discarded descendant state
    /// (locks for Moss; counted uniformly as "abort propagation").
    AbortApplied {
        /// Object.
        obj: u32,
        /// The aborted transaction.
        tx: u32,
        /// Lock entries (or other per-holder records) discarded.
        discarded: u64,
    },
    /// An access transitioned to blocked (its precondition failed) at the
    /// end of a scheduler round. Emitted on the transition only, not every
    /// round, so journals stay compact.
    AccessBlocked {
        /// Object.
        obj: u32,
        /// The waiting access.
        tx: u32,
        /// The transactions it waits on (a blocker equal to `tx` itself
        /// means the access was *refused*, e.g. an MVTO write-too-late).
        blockers: Vec<u32>,
    },
    /// A previously blocked access became unblocked (answered, orphaned,
    /// or its blockers resolved).
    AccessUnblocked {
        /// Object.
        obj: u32,
        /// The access.
        tx: u32,
    },
    /// Undo logging appended an operation to the log.
    UndoPush {
        /// Object.
        obj: u32,
        /// The access whose operation was logged.
        tx: u32,
        /// Log length after the push.
        log_len: u64,
    },
    /// `INFORM_ABORT` erased descendant operations from an undo log.
    UndoRollback {
        /// Object.
        obj: u32,
        /// The aborted transaction.
        tx: u32,
        /// Entries erased.
        erased: u64,
    },
    /// MVTO installed a new version.
    VersionInstalled {
        /// Object.
        obj: u32,
        /// The writing access.
        tx: u32,
        /// Number of versions after installation.
        versions: u64,
    },
    /// MVTO answered a read from a version.
    VersionRead {
        /// Object.
        obj: u32,
        /// The reading access.
        tx: u32,
        /// The writer of the observed version (`None` = initial version).
        writer: Option<u32>,
    },
    /// `INFORM_ABORT` discarded MVTO versions and read records.
    VersionsDiscarded {
        /// Object.
        obj: u32,
        /// The aborted transaction.
        tx: u32,
        /// Versions discarded.
        versions: u64,
        /// Read records discarded.
        reads: u64,
    },
    /// The simulator's deadlock breaker chose a victim.
    DeadlockVictim {
        /// The transaction aborted to break the wait.
        victim: u32,
        /// A waiter that was stuck.
        waiter: u32,
        /// The blocker whose ancestor chain supplied the victim.
        blocker: u32,
    },
    /// Fault injection aborted a live transaction.
    AbortInjected {
        /// The victim.
        tx: u32,
    },
    /// A fault-plan event was applied by the executor (nt-faults).
    FaultInjected {
        /// Stable fault-kind label (`abort_tx`, `orphan_subtree`,
        /// `crash_object`, `delay_inform`, `duplicate_inform`,
        /// `abort_storm`).
        kind: &'static str,
        /// The round the plan pinned the fault to.
        round: u64,
        /// The resolved target (transaction or object index; a storm
        /// records its window end).
        target: u64,
    },
    /// An object's volatile automaton state was dropped (crash fault).
    ObjectCrashed {
        /// The crashed object.
        obj: u32,
    },
    /// A crashed object finished recovery by replaying its slice of the
    /// recorded behavior.
    ObjectRecovered {
        /// The recovered object.
        obj: u32,
        /// Actions replayed to reconstruct the state.
        replayed: u64,
    },
    /// An aborted child slot armed a backoff timer for a fresh sibling
    /// replica (retry-with-backoff).
    RetryScheduled {
        /// The slot's original child transaction.
        orig: u32,
        /// The replica that will be submitted.
        replica: u32,
        /// Retry number (1 = first retry).
        attempt: u64,
        /// Round at which the replica becomes eligible.
        wake_round: u64,
    },
    /// A retried slot ran out of replica budget with every attempt
    /// aborted.
    RetryExhausted {
        /// The slot's original child transaction.
        orig: u32,
        /// Retries consumed.
        attempts: u64,
    },
    /// The quiescence watchdog fired: no component made progress for the
    /// configured window, so the run is cut short (with a flight-recorder
    /// dump) instead of hanging.
    WatchdogFired {
        /// Rounds without progress when the watchdog tripped.
        stalled_rounds: u64,
    },
    /// The networked server accepted a client connection (nt-net).
    ConnAccepted {
        /// Server-assigned connection id.
        conn: u64,
    },
    /// A client connection finished (EOF, error, or drain).
    ConnClosed {
        /// Connection id.
        conn: u64,
        /// Request frames read off this connection (after fault injection).
        frames: u64,
    },
    /// The transport fault plan acted on a received frame (nt-net).
    FrameFault {
        /// Connection id.
        conn: u64,
        /// The connection's frame counter (1-based).
        frame: u64,
        /// Stable fault label (`drop`, `duplicate`, `delay`).
        fault: &'static str,
    },
    /// A client re-sent a request whose response timed out (nt-net,
    /// client side).
    NetRetry {
        /// Connection id (client-local numbering).
        conn: u64,
        /// The retried request's wire sequence number (written as
        /// `req_seq` — `seq` is the stamp's own field).
        req_seq: u64,
        /// Retry number (1 = first resend).
        attempt: u64,
    },
    /// The server finished a graceful drain: stopped accepting, executed
    /// every queued request, closed every connection.
    ServerDrained {
        /// Connections served over the server's lifetime.
        conns: u64,
    },
    /// A checker phase began (graph build, cycle check, …).
    CheckPhaseStart {
        /// Phase name (stable identifiers, see `DESIGN.md`).
        phase: &'static str,
    },
    /// A checker phase ended.
    CheckPhaseEnd {
        /// Phase name.
        phase: &'static str,
    },
    /// The serialization-graph construction inserted a (deduplicated) edge.
    SgEdgeInserted {
        /// The subgraph's parent transaction.
        parent: u32,
        /// Source sibling.
        from: u32,
        /// Target sibling.
        to: u32,
        /// `"conflict"` or `"precedes"`.
        kind: &'static str,
    },
    /// The checker reached a verdict.
    CheckVerdict {
        /// Stable verdict label (`serially-correct`, `cyclic`, …).
        verdict: &'static str,
    },
    /// A violation or failure that triggers a flight-recorder dump.
    Violation {
        /// Free-form reason.
        reason: String,
    },
    /// Free-form annotation (experiment markers etc.).
    Note {
        /// The annotation text.
        text: String,
    },
}

/// Helper: the arena index of a `TxId` as the wire type.
pub fn tx(t: TxId) -> u32 {
    t.0
}

/// Helper: the arena index of an `ObjId` as the wire type.
pub fn obj(x: ObjId) -> u32 {
    x.0
}

impl Event {
    /// Stable snake_case discriminator used as the `type` journal field
    /// and the auto-derived metrics key.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::RunEnd { .. } => "run_end",
            Event::LockAcquired { .. } => "lock_acquired",
            Event::LockInherited { .. } => "lock_inherited",
            Event::AbortApplied { .. } => "abort_applied",
            Event::AccessBlocked { .. } => "access_blocked",
            Event::AccessUnblocked { .. } => "access_unblocked",
            Event::UndoPush { .. } => "undo_push",
            Event::UndoRollback { .. } => "undo_rollback",
            Event::VersionInstalled { .. } => "version_installed",
            Event::VersionRead { .. } => "version_read",
            Event::VersionsDiscarded { .. } => "versions_discarded",
            Event::DeadlockVictim { .. } => "deadlock_victim",
            Event::AbortInjected { .. } => "abort_injected",
            Event::FaultInjected { .. } => "fault_injected",
            Event::ObjectCrashed { .. } => "object_crashed",
            Event::ObjectRecovered { .. } => "object_recovered",
            Event::RetryScheduled { .. } => "retry_scheduled",
            Event::RetryExhausted { .. } => "retry_exhausted",
            Event::WatchdogFired { .. } => "watchdog_fired",
            Event::ConnAccepted { .. } => "conn_accepted",
            Event::ConnClosed { .. } => "conn_closed",
            Event::FrameFault { .. } => "frame_fault",
            Event::NetRetry { .. } => "net_retry",
            Event::ServerDrained { .. } => "server_drained",
            Event::CheckPhaseStart { .. } => "check_phase_start",
            Event::CheckPhaseEnd { .. } => "check_phase_end",
            Event::SgEdgeInserted { .. } => "sg_edge_inserted",
            Event::CheckVerdict { .. } => "check_verdict",
            Event::Violation { .. } => "violation",
            Event::Note { .. } => "note",
        }
    }

    /// The object this event concerns, if any (per-object metrics key).
    pub fn object(&self) -> Option<u32> {
        match self {
            Event::LockAcquired { obj, .. }
            | Event::LockInherited { obj, .. }
            | Event::AbortApplied { obj, .. }
            | Event::AccessBlocked { obj, .. }
            | Event::AccessUnblocked { obj, .. }
            | Event::UndoPush { obj, .. }
            | Event::UndoRollback { obj, .. }
            | Event::VersionInstalled { obj, .. }
            | Event::VersionRead { obj, .. }
            | Event::VersionsDiscarded { obj, .. }
            | Event::ObjectCrashed { obj }
            | Event::ObjectRecovered { obj, .. } => Some(*obj),
            _ => None,
        }
    }

    /// Append this event's payload fields to a journal object (the caller
    /// has already written `round`/`step`/`seq`/`type`).
    pub fn write_fields(&self, o: &mut JsonObj) {
        match self {
            Event::RunStart { protocol, seed } => {
                o.str("protocol", protocol).num("seed", *seed);
            }
            Event::RunEnd {
                steps,
                rounds,
                quiescent,
            } => {
                o.num("steps", *steps)
                    .num("rounds", *rounds)
                    .bool("quiescent", *quiescent);
            }
            Event::LockAcquired { obj, tx, class } => {
                o.num("obj", u64::from(*obj))
                    .num("tx", u64::from(*tx))
                    .str("class", class.as_str());
            }
            Event::LockInherited { obj, tx, to } => {
                o.num("obj", u64::from(*obj))
                    .num("tx", u64::from(*tx))
                    .num("to", u64::from(*to));
            }
            Event::AbortApplied { obj, tx, discarded } => {
                o.num("obj", u64::from(*obj))
                    .num("tx", u64::from(*tx))
                    .num("discarded", *discarded);
            }
            Event::AccessBlocked { obj, tx, blockers } => {
                let bs: Vec<u64> = blockers.iter().map(|&b| u64::from(b)).collect();
                o.num("obj", u64::from(*obj))
                    .num("tx", u64::from(*tx))
                    .num_arr("blockers", &bs);
            }
            Event::AccessUnblocked { obj, tx } => {
                o.num("obj", u64::from(*obj)).num("tx", u64::from(*tx));
            }
            Event::UndoPush { obj, tx, log_len } => {
                o.num("obj", u64::from(*obj))
                    .num("tx", u64::from(*tx))
                    .num("log_len", *log_len);
            }
            Event::UndoRollback { obj, tx, erased } => {
                o.num("obj", u64::from(*obj))
                    .num("tx", u64::from(*tx))
                    .num("erased", *erased);
            }
            Event::VersionInstalled { obj, tx, versions } => {
                o.num("obj", u64::from(*obj))
                    .num("tx", u64::from(*tx))
                    .num("versions", *versions);
            }
            Event::VersionRead { obj, tx, writer } => {
                o.num("obj", u64::from(*obj)).num("tx", u64::from(*tx));
                match writer {
                    Some(w) => o.num("writer", u64::from(*w)),
                    None => o.raw("writer", "null".to_string()),
                };
            }
            Event::VersionsDiscarded {
                obj,
                tx,
                versions,
                reads,
            } => {
                o.num("obj", u64::from(*obj))
                    .num("tx", u64::from(*tx))
                    .num("versions", *versions)
                    .num("reads", *reads);
            }
            Event::DeadlockVictim {
                victim,
                waiter,
                blocker,
            } => {
                o.num("victim", u64::from(*victim))
                    .num("waiter", u64::from(*waiter))
                    .num("blocker", u64::from(*blocker));
            }
            Event::AbortInjected { tx } => {
                o.num("tx", u64::from(*tx));
            }
            Event::FaultInjected {
                kind,
                round,
                target,
            } => {
                // The stamp already owns the "round" key, so the plan's
                // clock point serializes as "plan_round".
                o.str("kind", kind)
                    .num("plan_round", *round)
                    .num("target", *target);
            }
            Event::ObjectCrashed { obj } => {
                o.num("obj", u64::from(*obj));
            }
            Event::ObjectRecovered { obj, replayed } => {
                o.num("obj", u64::from(*obj)).num("replayed", *replayed);
            }
            Event::RetryScheduled {
                orig,
                replica,
                attempt,
                wake_round,
            } => {
                o.num("orig", u64::from(*orig))
                    .num("replica", u64::from(*replica))
                    .num("attempt", *attempt)
                    .num("wake_round", *wake_round);
            }
            Event::RetryExhausted { orig, attempts } => {
                o.num("orig", u64::from(*orig)).num("attempts", *attempts);
            }
            Event::ConnAccepted { conn } => {
                o.num("conn", *conn);
            }
            Event::ConnClosed { conn, frames } => {
                o.num("conn", *conn).num("frames", *frames);
            }
            Event::FrameFault { conn, frame, fault } => {
                o.num("conn", *conn)
                    .num("frame", *frame)
                    .str("fault", fault);
            }
            Event::NetRetry {
                conn,
                req_seq,
                attempt,
            } => {
                o.num("conn", *conn)
                    .num("req_seq", *req_seq)
                    .num("attempt", *attempt);
            }
            Event::ServerDrained { conns } => {
                o.num("conns", *conns);
            }
            Event::WatchdogFired { stalled_rounds } => {
                o.num("stalled_rounds", *stalled_rounds);
            }
            Event::CheckPhaseStart { phase } | Event::CheckPhaseEnd { phase } => {
                o.str("phase", phase);
            }
            Event::SgEdgeInserted {
                parent,
                from,
                to,
                kind,
            } => {
                o.num("parent", u64::from(*parent))
                    .num("from", u64::from(*from))
                    .num("to", u64::from(*to))
                    .str("kind", kind);
            }
            Event::CheckVerdict { verdict } => {
                o.str("verdict", verdict);
            }
            Event::Violation { reason } => {
                o.str("reason", reason);
            }
            Event::Note { text } => {
                o.str("text", text);
            }
        }
    }
}

/// An event stamped with the deterministic logical clock.
#[derive(Clone, Debug, PartialEq)]
pub struct Stamped {
    /// Scheduler round at record time (0 outside a simulation).
    pub round: u64,
    /// Fired-action count at record time (0 outside a simulation).
    pub step: u64,
    /// Global monotonic sequence number (total order on the journal).
    pub seq: u64,
    /// The payload.
    pub event: Event,
}

impl Stamped {
    /// Render as one JSONL journal line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut o = JsonObj::new();
        o.num("round", self.round)
            .num("step", self.step)
            .num("seq", self.seq)
            .str("type", self.event.kind());
        self.event.write_fields(&mut o);
        o.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn every_variant_serializes_and_parses() {
        let events = vec![
            Event::RunStart {
                protocol: "moss-rw",
                seed: 7,
            },
            Event::RunEnd {
                steps: 10,
                rounds: 3,
                quiescent: true,
            },
            Event::LockAcquired {
                obj: 0,
                tx: 4,
                class: LockClass::Write,
            },
            Event::LockInherited {
                obj: 0,
                tx: 4,
                to: 2,
            },
            Event::AbortApplied {
                obj: 1,
                tx: 3,
                discarded: 2,
            },
            Event::AccessBlocked {
                obj: 0,
                tx: 5,
                blockers: vec![4, 9],
            },
            Event::AccessUnblocked { obj: 0, tx: 5 },
            Event::UndoPush {
                obj: 2,
                tx: 8,
                log_len: 3,
            },
            Event::UndoRollback {
                obj: 2,
                tx: 1,
                erased: 2,
            },
            Event::VersionInstalled {
                obj: 0,
                tx: 6,
                versions: 2,
            },
            Event::VersionRead {
                obj: 0,
                tx: 7,
                writer: None,
            },
            Event::VersionsDiscarded {
                obj: 0,
                tx: 2,
                versions: 1,
                reads: 1,
            },
            Event::DeadlockVictim {
                victim: 3,
                waiter: 5,
                blocker: 4,
            },
            Event::AbortInjected { tx: 2 },
            Event::FaultInjected {
                kind: "crash_object",
                round: 4,
                target: 1,
            },
            Event::ObjectCrashed { obj: 1 },
            Event::ObjectRecovered {
                obj: 1,
                replayed: 12,
            },
            Event::RetryScheduled {
                orig: 5,
                replica: 31,
                attempt: 1,
                wake_round: 9,
            },
            Event::RetryExhausted {
                orig: 5,
                attempts: 2,
            },
            Event::WatchdogFired { stalled_rounds: 64 },
            Event::ConnAccepted { conn: 3 },
            Event::ConnClosed {
                conn: 3,
                frames: 17,
            },
            Event::FrameFault {
                conn: 3,
                frame: 6,
                fault: "drop",
            },
            Event::NetRetry {
                conn: 3,
                req_seq: 6,
                attempt: 1,
            },
            Event::ServerDrained { conns: 4 },
            Event::CheckPhaseStart { phase: "sg_build" },
            Event::CheckPhaseEnd { phase: "sg_build" },
            Event::SgEdgeInserted {
                parent: 0,
                from: 1,
                to: 2,
                kind: "conflict",
            },
            Event::CheckVerdict {
                verdict: "serially-correct",
            },
            Event::Violation {
                reason: "cycle found".to_string(),
            },
            Event::Note {
                text: "hello".to_string(),
            },
        ];
        for (i, event) in events.into_iter().enumerate() {
            let s = Stamped {
                round: 1,
                step: 2,
                seq: i as u64,
                event,
            };
            let line = s.to_json_line();
            let v = Json::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(
                v.get("type").unwrap().as_str(),
                Some(s.event.kind()),
                "{line}"
            );
            assert_eq!(v.get("seq").unwrap().as_num(), Some(i as f64));
        }
    }
}
