//! # nt-obs
//!
//! Deterministic, zero-external-dependency observability for the
//! protocol/checker stack: a structured event journal with logical-clock
//! timestamps, a metrics registry (counters / gauges / fixed-bucket
//! histograms with per-object and per-depth breakdowns), JSONL /
//! Chrome-`trace_event` / summary exporters, and a bounded flight-recorder
//! ring buffer dumped on violations, invariant failures, and
//! non-quiescent runs.
//!
//! ## Design constraints
//!
//! * **Deterministic**: events are stamped with the scheduler's logical
//!   clock (round, step) plus a monotonic sequence number — never
//!   wall-clock — so same-seed runs emit *byte-identical* journals.
//! * **Near-zero overhead when disabled**: instrumented sites hold a
//!   [`TraceHandle`]; a disabled handle is a `None` and every recording
//!   call is a single branch.
//! * **No new dependencies**: std only (compatible with the vendored-shims
//!   offline build); JSON is written and parsed by [`json`].
//!
//! ## Usage sketch
//!
//! ```
//! use nt_obs::{Event, Recorder, TraceHandle};
//! let h: TraceHandle = Recorder::full();
//! h.set_now(1, 3); // the executor advances the logical clock
//! h.record(Event::Note { text: "hello".into() });
//! h.inc("my.counter");
//! let journal = h.journal_jsonl().unwrap();
//! assert!(journal.contains("\"type\":\"note\""));
//! ```

#![forbid(unsafe_code)]

pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod schema;

pub use event::{obj, tx, Event, LockClass, Stamped};
pub use metrics::{Histogram, MetricsRegistry, HIST_BOUNDS};

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Default flight-recorder capacity (events kept for post-mortem dumps).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;

struct Inner {
    round: u64,
    step: u64,
    seq: u64,
    /// Keep the full journal (`Recorder::full`) or only the flight ring.
    keep_journal: bool,
    flight_capacity: usize,
    journal: VecDeque<Stamped>,
    metrics: MetricsRegistry,
}

/// The event/metrics sink. Create one via [`Recorder::full`] (unbounded
/// journal, for exports) or [`Recorder::flight`] (bounded ring only, for
/// always-on post-mortem recording); both return a cheap [`TraceHandle`].
pub struct Recorder {
    inner: Mutex<Inner>,
}

impl Recorder {
    fn make(keep_journal: bool, flight_capacity: usize) -> TraceHandle {
        TraceHandle(Some(Arc::new(Recorder {
            inner: Mutex::new(Inner {
                round: 0,
                step: 0,
                seq: 0,
                keep_journal,
                flight_capacity: flight_capacity.max(1),
                journal: VecDeque::new(),
                metrics: MetricsRegistry::new(),
            }),
        })))
    }

    /// A recorder that keeps the whole journal (exportable as JSONL /
    /// Chrome trace) plus the metrics registry.
    pub fn full() -> TraceHandle {
        Recorder::make(true, DEFAULT_FLIGHT_CAPACITY)
    }

    /// A recorder that keeps only the last `capacity` events (the flight
    /// ring) plus the metrics registry — bounded memory, always-on use.
    pub fn flight(capacity: usize) -> TraceHandle {
        Recorder::make(false, capacity)
    }
}

/// A cheap, cloneable handle to a [`Recorder`], or a disabled no-op.
///
/// Everything in the stack that can emit events holds one of these; the
/// default is disabled, in which case every method returns immediately
/// after one `Option` branch.
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<Recorder>>);

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "TraceHandle(enabled)"
        } else {
            "TraceHandle(disabled)"
        })
    }
}

impl TraceHandle {
    /// The no-op handle.
    pub fn disabled() -> Self {
        TraceHandle(None)
    }

    /// Is a recorder attached?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Set the logical clock (the executor calls this as rounds/steps
    /// advance; events recorded afterwards carry this stamp).
    #[inline]
    pub fn set_now(&self, round: u64, step: u64) {
        if let Some(r) = &self.0 {
            let mut g = r.inner.lock().expect("nt-obs recorder poisoned");
            g.round = round;
            g.step = step;
        }
    }

    /// Advance the step component by one (post-hoc phases, tests).
    #[inline]
    pub fn tick(&self) {
        if let Some(r) = &self.0 {
            let mut g = r.inner.lock().expect("nt-obs recorder poisoned");
            g.step += 1;
        }
    }

    /// Record an event (stamped with the current logical clock). Also
    /// auto-derives metrics: an `ev.<kind>` counter and, when the event
    /// names an object, a per-object breakdown of the same key.
    #[inline]
    pub fn record(&self, event: Event) {
        if let Some(r) = &self.0 {
            let mut g = r.inner.lock().expect("nt-obs recorder poisoned");
            let kind = event.kind();
            g.metrics.add(kind_counter(kind), 1);
            if let Some(o) = event.object() {
                g.metrics.add_obj(kind_counter(kind), o, 1);
            }
            let stamped = Stamped {
                round: g.round,
                step: g.step,
                seq: g.seq,
                event,
            };
            g.seq += 1;
            g.journal.push_back(stamped);
            if !g.keep_journal {
                while g.journal.len() > g.flight_capacity {
                    g.journal.pop_front();
                }
            }
        }
    }

    /// Run `f` against the metrics registry (no-op when disabled).
    #[inline]
    pub fn metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
        self.0.as_ref().map(|r| {
            let mut g = r.inner.lock().expect("nt-obs recorder poisoned");
            f(&mut g.metrics)
        })
    }

    /// Increment a counter.
    #[inline]
    pub fn inc(&self, name: &'static str) {
        self.metrics(|m| m.inc(name));
    }

    /// Add to a counter.
    #[inline]
    pub fn add(&self, name: &'static str, n: u64) {
        self.metrics(|m| m.add(name, n));
    }

    /// Set a gauge.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, v: i64) {
        self.metrics(|m| m.gauge_set(name, v));
    }

    /// Record a histogram observation.
    #[inline]
    pub fn observe(&self, name: &'static str, v: u64) {
        self.metrics(|m| m.observe(name, v));
    }

    /// Add to a per-object counter.
    #[inline]
    pub fn add_obj(&self, name: &'static str, obj: u32, n: u64) {
        self.metrics(|m| m.add_obj(name, obj, n));
    }

    /// Add to a per-depth counter.
    #[inline]
    pub fn add_depth(&self, name: &'static str, depth: u32, n: u64) {
        self.metrics(|m| m.add_depth(name, depth, n));
    }

    /// Snapshot the recorded journal (full journal or flight ring).
    pub fn journal(&self) -> Option<Vec<Stamped>> {
        self.0.as_ref().map(|r| {
            let g = r.inner.lock().expect("nt-obs recorder poisoned");
            g.journal.iter().cloned().collect()
        })
    }

    /// Snapshot the metrics registry.
    pub fn metrics_snapshot(&self) -> Option<MetricsRegistry> {
        self.0.as_ref().map(|r| {
            let g = r.inner.lock().expect("nt-obs recorder poisoned");
            g.metrics.clone()
        })
    }

    /// Export the journal as JSONL (one event object per line, trailing
    /// newline). `None` when disabled.
    pub fn journal_jsonl(&self) -> Option<String> {
        self.journal().map(|j| export::to_jsonl(&j))
    }

    /// Export the journal in Chrome `trace_event` format (a JSON object
    /// loadable by `chrome://tracing` / Perfetto). `None` when disabled.
    pub fn chrome_trace_json(&self) -> Option<String> {
        self.journal().map(|j| export::to_chrome_trace(&j))
    }

    /// Export the metrics registry as JSON. `None` when disabled.
    pub fn metrics_json(&self) -> Option<String> {
        self.metrics_snapshot().map(|m| m.to_json())
    }

    /// The last events (at most the flight capacity) rendered as a
    /// JSONL post-mortem dump with a leading `violation` header line.
    /// `None` when disabled or empty.
    pub fn flight_dump(&self, reason: &str) -> Option<String> {
        let r = self.0.as_ref()?;
        let (mut tail, cap): (Vec<Stamped>, usize) = {
            let g = r.inner.lock().expect("nt-obs recorder poisoned");
            (g.journal.iter().cloned().collect(), g.flight_capacity)
        };
        if tail.is_empty() {
            return None;
        }
        if tail.len() > cap {
            tail.drain(..tail.len() - cap);
        }
        let header = Stamped {
            round: tail.last().map(|s| s.round).unwrap_or(0),
            step: tail.last().map(|s| s.step).unwrap_or(0),
            seq: tail.last().map(|s| s.seq + 1).unwrap_or(0),
            event: Event::Violation {
                reason: reason.to_string(),
            },
        };
        let mut out = String::new();
        out.push_str(&header.to_json_line());
        out.push('\n');
        out.push_str(&export::to_jsonl(&tail));
        Some(out)
    }

    /// Record a violation event and write the flight dump to stderr
    /// (the automatic trigger path: checker violations, failed runs).
    pub fn dump_flight_to_stderr(&self, reason: &str) {
        if let Some(dump) = self.flight_dump(reason) {
            eprintln!("=== nt-obs flight recorder dump ({reason}) ===");
            eprint!("{dump}");
            eprintln!("=== end flight dump ===");
        }
    }
}

/// Install a panic hook that dumps `handle`'s flight ring to stderr before
/// the default hook runs — so an invariant `expect`/`assert!` firing
/// anywhere in the stack leaves a post-mortem trace. Intended for binaries
/// (the hook is process-global).
pub fn install_panic_flight_dump(handle: TraceHandle) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        handle.dump_flight_to_stderr("panic (invariant failure)");
        previous(info);
    }));
}

/// Map an event kind to its auto-derived counter name. The set of kinds is
/// closed (see [`Event::kind`]), so this is a static table — keeping the
/// counter keys `&'static str` without allocation.
fn kind_counter(kind: &'static str) -> &'static str {
    match kind {
        "run_start" => "ev.run_start",
        "run_end" => "ev.run_end",
        "lock_acquired" => "ev.lock_acquired",
        "lock_inherited" => "ev.lock_inherited",
        "abort_applied" => "ev.abort_applied",
        "access_blocked" => "ev.access_blocked",
        "access_unblocked" => "ev.access_unblocked",
        "undo_push" => "ev.undo_push",
        "undo_rollback" => "ev.undo_rollback",
        "version_installed" => "ev.version_installed",
        "version_read" => "ev.version_read",
        "versions_discarded" => "ev.versions_discarded",
        "deadlock_victim" => "ev.deadlock_victim",
        "abort_injected" => "ev.abort_injected",
        "fault_injected" => "ev.fault_injected",
        "object_crashed" => "ev.object_crashed",
        "object_recovered" => "ev.object_recovered",
        "retry_scheduled" => "ev.retry_scheduled",
        "retry_exhausted" => "ev.retry_exhausted",
        "watchdog_fired" => "ev.watchdog_fired",
        "check_phase_start" => "ev.check_phase_start",
        "check_phase_end" => "ev.check_phase_end",
        "sg_edge_inserted" => "ev.sg_edge_inserted",
        "check_verdict" => "ev.check_verdict",
        "violation" => "ev.violation",
        "note" => "ev.note",
        _ => "ev.other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let h = TraceHandle::disabled();
        assert!(!h.enabled());
        h.record(Event::Note { text: "x".into() });
        h.inc("c");
        h.set_now(1, 1);
        assert!(h.journal().is_none());
        assert!(h.journal_jsonl().is_none());
        assert!(h.flight_dump("r").is_none());
    }

    #[test]
    fn recording_stamps_logical_clock_and_seq() {
        let h = Recorder::full();
        h.set_now(2, 5);
        h.record(Event::Note { text: "a".into() });
        h.set_now(3, 9);
        h.record(Event::Note { text: "b".into() });
        let j = h.journal().unwrap();
        assert_eq!((j[0].round, j[0].step, j[0].seq), (2, 5, 0));
        assert_eq!((j[1].round, j[1].step, j[1].seq), (3, 9, 1));
    }

    #[test]
    fn auto_metrics_from_events() {
        let h = Recorder::full();
        h.record(Event::LockAcquired {
            obj: 2,
            tx: 5,
            class: LockClass::Read,
        });
        h.record(Event::LockAcquired {
            obj: 2,
            tx: 6,
            class: LockClass::Write,
        });
        let m = h.metrics_snapshot().unwrap();
        assert_eq!(m.counter("ev.lock_acquired"), 2);
        assert_eq!(m.object_breakdown("ev.lock_acquired"), vec![(2, 2)]);
    }

    #[test]
    fn flight_ring_keeps_only_tail() {
        let h = Recorder::flight(3);
        for i in 0..10u64 {
            h.record(Event::Note {
                text: format!("n{i}"),
            });
        }
        let j = h.journal().unwrap();
        assert_eq!(j.len(), 3);
        assert_eq!(j[0].seq, 7, "oldest kept event");
        let dump = h.flight_dump("test").unwrap();
        assert!(dump.lines().count() == 4, "header + 3 events");
        assert!(dump.starts_with('{'));
        assert!(dump.contains("\"type\":\"violation\""));
    }

    #[test]
    fn full_recorder_flight_dump_truncates_to_capacity() {
        let h = Recorder::full();
        for i in 0..(DEFAULT_FLIGHT_CAPACITY as u64 + 40) {
            h.record(Event::Note {
                text: format!("n{i}"),
            });
        }
        assert_eq!(
            h.journal().unwrap().len(),
            DEFAULT_FLIGHT_CAPACITY + 40,
            "full journal unbounded"
        );
        let dump = h.flight_dump("test").unwrap();
        assert_eq!(dump.lines().count(), DEFAULT_FLIGHT_CAPACITY + 1);
    }
}
