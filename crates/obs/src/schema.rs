//! The journal schema, as an executable validator.
//!
//! `validate_line` re-parses one JSONL journal line with the independent
//! [`crate::json`] parser and checks it against the event taxonomy: the
//! stamp fields must be present and numeric, the `type` must be a known
//! kind, and every kind's required payload fields must be present with the
//! right JSON type. The CI gate and the golden-file test both run emitted
//! journals through this, so schema drift is caught at the PR that causes
//! it (and must update the golden file deliberately).

use crate::json::Json;

/// Field type expectations for the validator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FieldTy {
    Num,
    Str,
    Bool,
    NumArr,
    /// A number or `null` (e.g. `version_read.writer`).
    NumOrNull,
}

/// Required payload fields per event kind (the stamp fields `round`,
/// `step`, `seq`, `type` are checked for every kind).
const SCHEMA: &[(&str, &[(&str, FieldTy)])] = &[
    (
        "run_start",
        &[("protocol", FieldTy::Str), ("seed", FieldTy::Num)],
    ),
    (
        "run_end",
        &[
            ("steps", FieldTy::Num),
            ("rounds", FieldTy::Num),
            ("quiescent", FieldTy::Bool),
        ],
    ),
    (
        "lock_acquired",
        &[
            ("obj", FieldTy::Num),
            ("tx", FieldTy::Num),
            ("class", FieldTy::Str),
        ],
    ),
    (
        "lock_inherited",
        &[
            ("obj", FieldTy::Num),
            ("tx", FieldTy::Num),
            ("to", FieldTy::Num),
        ],
    ),
    (
        "abort_applied",
        &[
            ("obj", FieldTy::Num),
            ("tx", FieldTy::Num),
            ("discarded", FieldTy::Num),
        ],
    ),
    (
        "access_blocked",
        &[
            ("obj", FieldTy::Num),
            ("tx", FieldTy::Num),
            ("blockers", FieldTy::NumArr),
        ],
    ),
    (
        "access_unblocked",
        &[("obj", FieldTy::Num), ("tx", FieldTy::Num)],
    ),
    (
        "undo_push",
        &[
            ("obj", FieldTy::Num),
            ("tx", FieldTy::Num),
            ("log_len", FieldTy::Num),
        ],
    ),
    (
        "undo_rollback",
        &[
            ("obj", FieldTy::Num),
            ("tx", FieldTy::Num),
            ("erased", FieldTy::Num),
        ],
    ),
    (
        "version_installed",
        &[
            ("obj", FieldTy::Num),
            ("tx", FieldTy::Num),
            ("versions", FieldTy::Num),
        ],
    ),
    (
        "version_read",
        &[
            ("obj", FieldTy::Num),
            ("tx", FieldTy::Num),
            ("writer", FieldTy::NumOrNull),
        ],
    ),
    (
        "versions_discarded",
        &[
            ("obj", FieldTy::Num),
            ("tx", FieldTy::Num),
            ("versions", FieldTy::Num),
            ("reads", FieldTy::Num),
        ],
    ),
    (
        "deadlock_victim",
        &[
            ("victim", FieldTy::Num),
            ("waiter", FieldTy::Num),
            ("blocker", FieldTy::Num),
        ],
    ),
    ("abort_injected", &[("tx", FieldTy::Num)]),
    (
        "fault_injected",
        &[
            ("kind", FieldTy::Str),
            ("plan_round", FieldTy::Num),
            ("target", FieldTy::Num),
        ],
    ),
    ("object_crashed", &[("obj", FieldTy::Num)]),
    (
        "object_recovered",
        &[("obj", FieldTy::Num), ("replayed", FieldTy::Num)],
    ),
    (
        "retry_scheduled",
        &[
            ("orig", FieldTy::Num),
            ("replica", FieldTy::Num),
            ("attempt", FieldTy::Num),
            ("wake_round", FieldTy::Num),
        ],
    ),
    (
        "retry_exhausted",
        &[("orig", FieldTy::Num), ("attempts", FieldTy::Num)],
    ),
    ("watchdog_fired", &[("stalled_rounds", FieldTy::Num)]),
    ("conn_accepted", &[("conn", FieldTy::Num)]),
    (
        "conn_closed",
        &[("conn", FieldTy::Num), ("frames", FieldTy::Num)],
    ),
    (
        "frame_fault",
        &[
            ("conn", FieldTy::Num),
            ("frame", FieldTy::Num),
            ("fault", FieldTy::Str),
        ],
    ),
    (
        "net_retry",
        &[
            ("conn", FieldTy::Num),
            ("req_seq", FieldTy::Num),
            ("attempt", FieldTy::Num),
        ],
    ),
    ("server_drained", &[("conns", FieldTy::Num)]),
    ("check_phase_start", &[("phase", FieldTy::Str)]),
    ("check_phase_end", &[("phase", FieldTy::Str)]),
    (
        "sg_edge_inserted",
        &[
            ("parent", FieldTy::Num),
            ("from", FieldTy::Num),
            ("to", FieldTy::Num),
            ("kind", FieldTy::Str),
        ],
    ),
    ("check_verdict", &[("verdict", FieldTy::Str)]),
    ("violation", &[("reason", FieldTy::Str)]),
    ("note", &[("text", FieldTy::Str)]),
];

fn check_field(v: &Json, key: &str, ty: FieldTy) -> Result<(), String> {
    let field = v.get(key).ok_or_else(|| format!("missing field {key:?}"))?;
    let ok = match ty {
        FieldTy::Num => matches!(field, Json::Num(_)),
        FieldTy::Str => matches!(field, Json::Str(_)),
        FieldTy::Bool => matches!(field, Json::Bool(_)),
        FieldTy::NumArr => match field {
            Json::Arr(items) => items.iter().all(|i| matches!(i, Json::Num(_))),
            _ => false,
        },
        FieldTy::NumOrNull => matches!(field, Json::Num(_) | Json::Null),
    };
    if ok {
        Ok(())
    } else {
        Err(format!("field {key:?} has wrong type (expected {ty:?})"))
    }
}

/// Validate one journal line against the schema.
pub fn validate_line(line: &str) -> Result<(), String> {
    let v = Json::parse(line).map_err(|e| format!("not JSON: {e}"))?;
    for stamp in ["round", "step", "seq"] {
        check_field(&v, stamp, FieldTy::Num)?;
    }
    check_field(&v, "type", FieldTy::Str)?;
    let kind = v.get("type").and_then(Json::as_str).expect("checked above");
    let Some((_, fields)) = SCHEMA.iter().find(|(k, _)| *k == kind) else {
        return Err(format!("unknown event type {kind:?}"));
    };
    for (key, ty) in *fields {
        check_field(&v, key, *ty).map_err(|e| format!("{kind}: {e}"))?;
    }
    Ok(())
}

/// Validate a whole JSONL journal; returns the (1-based) line number and
/// message of the first offending line.
pub fn validate_journal(jsonl: &str) -> Result<usize, (usize, String)> {
    let mut n = 0;
    for (i, line) in jsonl.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| (i + 1, e))?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Stamped};
    use crate::LockClass;

    #[test]
    fn emitted_lines_validate() {
        let s = Stamped {
            round: 1,
            step: 2,
            seq: 3,
            event: Event::LockAcquired {
                obj: 0,
                tx: 7,
                class: LockClass::Read,
            },
        };
        validate_line(&s.to_json_line()).unwrap();
    }

    #[test]
    fn missing_fields_rejected() {
        assert!(
            validate_line(r#"{"round":1,"step":2,"seq":3,"type":"lock_acquired","obj":0}"#)
                .is_err()
        );
        assert!(validate_line(r#"{"round":1,"type":"note","text":"x"}"#).is_err());
        assert!(
            validate_line(r#"{"round":1,"step":2,"seq":3,"type":"nonsense"}"#).is_err(),
            "unknown kinds rejected"
        );
        assert!(validate_line("not json").is_err());
    }

    #[test]
    fn journal_validation_reports_line_numbers() {
        let good = Stamped {
            round: 0,
            step: 0,
            seq: 0,
            event: Event::Note { text: "ok".into() },
        }
        .to_json_line();
        let journal = format!("{good}\n{{\"broken\":true}}\n");
        let err = validate_journal(&journal).unwrap_err();
        assert_eq!(err.0, 2);
        assert_eq!(validate_journal(&format!("{good}\n{good}\n")), Ok(2));
    }

    #[test]
    fn schema_covers_every_event_kind() {
        // Compile-time-ish exhaustiveness: every kind the taxonomy can emit
        // must be in SCHEMA (catches adding an Event variant without a
        // schema entry).
        let kinds = [
            "run_start",
            "run_end",
            "lock_acquired",
            "lock_inherited",
            "abort_applied",
            "access_blocked",
            "access_unblocked",
            "undo_push",
            "undo_rollback",
            "version_installed",
            "version_read",
            "versions_discarded",
            "deadlock_victim",
            "abort_injected",
            "fault_injected",
            "object_crashed",
            "object_recovered",
            "retry_scheduled",
            "retry_exhausted",
            "watchdog_fired",
            "check_phase_start",
            "check_phase_end",
            "sg_edge_inserted",
            "check_verdict",
            "violation",
            "note",
            "conn_accepted",
            "conn_closed",
            "frame_fault",
            "net_retry",
            "server_drained",
        ];
        for k in kinds {
            assert!(
                SCHEMA.iter().any(|(s, _)| *s == k),
                "schema missing kind {k}"
            );
        }
        assert_eq!(SCHEMA.len(), kinds.len());
    }
}
