//! The metrics registry: counters, gauges, and fixed-bucket histograms
//! keyed by static names, with per-object and per-transaction-depth
//! breakdowns.
//!
//! Everything is deterministic: keys are `&'static str` (no allocation on
//! the hot path), iteration order is `BTreeMap` order, and histogram
//! buckets are fixed powers of two, so a metrics export is a pure function
//! of the run.

use crate::json::JsonObj;
use std::collections::BTreeMap;

/// Power-of-two histogram bucket upper bounds (inclusive); one overflow
/// bucket on top. Fixed so exports never depend on observed ranges.
pub const HIST_BOUNDS: [u64; 12] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096];

/// A fixed-bucket histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[i]` = observations `<= HIST_BOUNDS[i]` (first matching
    /// bucket); the last slot counts overflow.
    pub counts: [u64; HIST_BOUNDS.len() + 1],
    /// Sum of observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        let idx = HIST_BOUNDS
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(HIST_BOUNDS.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The registry. Plain data, no interior mutability: either owned by an
/// executor directly or guarded by the recorder's mutex.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
    /// Per-object breakdowns: `(name, object index)` → count.
    by_object: BTreeMap<(&'static str, u32), u64>,
    /// Per-transaction-depth breakdowns: `(name, depth)` → count.
    by_depth: BTreeMap<(&'static str, u32), u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to a counter.
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Increment a counter.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, name: &'static str, v: i64) {
        self.gauges.insert(name, v);
    }

    /// Record a histogram observation.
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().observe(v);
    }

    /// Add `n` to the per-object breakdown of `name`.
    pub fn add_obj(&mut self, name: &'static str, obj: u32, n: u64) {
        *self.by_object.entry((name, obj)).or_insert(0) += n;
    }

    /// Add `n` to the per-depth breakdown of `name`.
    pub fn add_depth(&mut self, name: &'static str, depth: u32, n: u64) {
        *self.by_depth.entry((name, depth)).or_insert(0) += n;
    }

    /// Read a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Read a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Read a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The per-object counts of `name`, sorted by object index.
    pub fn object_breakdown(&self, name: &str) -> Vec<(u32, u64)> {
        self.by_object
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|((_, o), &c)| (*o, c))
            .collect()
    }

    /// The per-depth counts of `name`, sorted by depth.
    pub fn depth_breakdown(&self, name: &str) -> Vec<(u32, u64)> {
        self.by_depth
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|((_, d), &c)| (*d, c))
            .collect()
    }

    /// Merge another registry into this one (counters/histograms add,
    /// gauges overwrite).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&k, &v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.gauges {
            self.gauges.insert(k, v);
        }
        for (&k, h) in &other.histograms {
            let mine = self.histograms.entry(k).or_default();
            for (i, c) in h.counts.iter().enumerate() {
                mine.counts[i] += c;
            }
            mine.sum += h.sum;
            mine.count += h.count;
        }
        for (&k, &v) in &other.by_object {
            *self.by_object.entry(k).or_insert(0) += v;
        }
        for (&k, &v) in &other.by_depth {
            *self.by_depth.entry(k).or_insert(0) += v;
        }
    }

    /// Export the whole registry as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut root = JsonObj::new();
        let mut counters = JsonObj::new();
        for (&k, &v) in &self.counters {
            counters.num(k, v);
        }
        root.raw("counters", counters.build());
        let mut gauges = JsonObj::new();
        for (&k, &v) in &self.gauges {
            gauges.inum(k, v);
        }
        root.raw("gauges", gauges.build());
        let mut hists = JsonObj::new();
        for (&k, h) in &self.histograms {
            let mut ho = JsonObj::new();
            ho.num_arr("counts", &h.counts)
                .num("sum", h.sum)
                .num("count", h.count)
                .float("mean", h.mean());
            hists.raw(k, ho.build());
        }
        root.raw("histograms", hists.build());
        root.raw("by_object", breakdown_json(&self.by_object));
        root.raw("by_depth", breakdown_json(&self.by_depth));
        root.build()
    }

    /// A human-readable summary table (plain text, aligned).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<32} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<32} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (count / mean):\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!("  {k:<32} {} / {:.2}\n", h.count, h.mean()));
            }
        }
        if !self.by_object.is_empty() {
            out.push_str("per-object:\n");
            for ((k, o), v) in &self.by_object {
                out.push_str(&format!("  {k:<28} X{o:<3} {v}\n"));
            }
        }
        if !self.by_depth.is_empty() {
            out.push_str("per-depth:\n");
            for ((k, d), v) in &self.by_depth {
                out.push_str(&format!("  {k:<28} d={d:<3} {v}\n"));
            }
        }
        out
    }
}

fn breakdown_json(map: &BTreeMap<(&'static str, u32), u64>) -> String {
    // {"name": {"0": 3, "1": 5}, ...} with keys in BTreeMap order.
    let mut outer = JsonObj::new();
    let mut current: Option<(&'static str, JsonObj)> = None;
    for (&(name, idx), &v) in map {
        match &mut current {
            Some((n, inner)) if *n == name => {
                inner.num(&idx.to_string(), v);
            }
            _ => {
                if let Some((n, inner)) = current.take() {
                    outer.raw(n, inner.build());
                }
                let mut inner = JsonObj::new();
                inner.num(&idx.to_string(), v);
                current = Some((name, inner));
            }
        }
    }
    if let Some((n, inner)) = current.take() {
        outer.raw(n, inner.build());
    }
    outer.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn counters_gauges_histograms() {
        let mut m = MetricsRegistry::new();
        m.inc("a");
        m.add("a", 2);
        m.gauge_set("g", -5);
        m.observe("h", 3);
        m.observe("h", 100_000);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.gauge("g"), Some(-5));
        let h = m.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.counts[2], 1, "3 lands in the <=4 bucket");
        assert_eq!(h.counts[HIST_BOUNDS.len()], 1, "overflow bucket");
    }

    #[test]
    fn breakdowns_and_merge() {
        let mut m = MetricsRegistry::new();
        m.add_obj("blocked", 0, 2);
        m.add_obj("blocked", 3, 1);
        m.add_depth("blocked", 1, 4);
        let mut m2 = MetricsRegistry::new();
        m2.add_obj("blocked", 0, 1);
        m.merge(&m2);
        assert_eq!(m.object_breakdown("blocked"), vec![(0, 3), (3, 1)]);
        assert_eq!(m.depth_breakdown("blocked"), vec![(1, 4)]);
    }

    #[test]
    fn json_export_parses() {
        let mut m = MetricsRegistry::new();
        m.inc("ev.lock_acquired");
        m.gauge_set("sg.edges", 12);
        m.observe("wait", 7);
        m.add_obj("blocked", 1, 9);
        m.add_depth("blocked", 2, 9);
        let v = Json::parse(&m.to_json()).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("ev.lock_acquired")
                .unwrap()
                .as_num(),
            Some(1.0)
        );
        assert_eq!(
            v.get("gauges").unwrap().get("sg.edges").unwrap().as_num(),
            Some(12.0)
        );
        assert!(v.get("by_object").unwrap().get("blocked").is_some());
        assert!(!m.summary().is_empty());
    }

    #[test]
    fn export_is_deterministic_across_insertion_orders() {
        let mut a = MetricsRegistry::new();
        a.inc("x");
        a.inc("b");
        a.add_obj("k", 2, 1);
        a.add_obj("k", 0, 1);
        let mut b = MetricsRegistry::new();
        b.add_obj("k", 0, 1);
        b.inc("b");
        b.add_obj("k", 2, 1);
        b.inc("x");
        assert_eq!(a.to_json(), b.to_json());
    }
}
