//! Serial specifications of data types (§3.1, §6.1).
//!
//! A [`SerialType`] gives the *serial specification* of an object: its
//! initial state, its deterministic transition function, and its declared
//! *backward commutativity* relation on operations. The transition function
//! defines the serial object automaton `S_X` (see [`crate::object`]); the
//! commutativity relation defines conflicts for the generalized
//! serialization graph of §6.1 and gates concurrency in the undo-logging
//! algorithm of §6.2.
//!
//! Declared commutativity must be *sound*: if `commutes_backward(a, b)`
//! holds then `a` and `b` really commute backward per the paper's
//! definition. It may be conservative (declaring true conflicts where the
//! definition would allow commuting); that only reduces concurrency and adds
//! serialization-graph edges, never breaking correctness.
//! [`commute_by_definition`] checks a declared relation against the
//! definition over a supplied set of reachable states — property tests use
//! it to validate every type in `nt-datatypes`.

use nt_model::{Op, TxId, TxTree, Value};
use std::fmt;
use std::sync::Arc;

/// An operation together with its return value: the paper's `(T, v)` pair
/// with the transaction name replaced by its operation (all parameters of an
/// access are encoded in its name, so this is the quotient that matters for
/// object semantics).
pub type OpVal = (Op, Value);

/// The serial specification of one data type.
pub trait SerialType: fmt::Debug + Send + Sync {
    /// Short name for diagnostics (`"register"`, `"counter"`, …).
    fn type_name(&self) -> &'static str;

    /// The initial state (the paper's `d` for read/write objects).
    fn initial(&self) -> Value;

    /// Apply `op` to `state`, returning `(new_state, return_value)`.
    ///
    /// Must be deterministic and total on the operations the type supports;
    /// may panic on operations of other types (workloads never mix types).
    fn apply(&self, state: &Value, op: &Op) -> (Value, Value);

    /// Declared backward-commutativity relation (must be symmetric and
    /// sound w.r.t. the definition, may be conservative).
    fn commutes_backward(&self, a: &OpVal, b: &OpVal) -> bool;

    /// A small, representative set of operations for bounded exhaustive
    /// analysis of this type (the `nt-lint` soundness pass).
    ///
    /// The domain should exercise every operation kind the type supports,
    /// with enough distinct parameters to distinguish conflicting pairs
    /// (e.g. two different write values, one present and one absent set
    /// element). An empty domain (the default) opts the type out of static
    /// certification; `nt-lint` reports such types as unanalyzable.
    fn op_domain(&self) -> Vec<Op> {
        Vec::new()
    }

    /// A bounded set of starting states for quantifying the
    /// backward-commutativity definition (the prefix `ξ` of the paper is
    /// represented by its final state).
    ///
    /// Should contain [`SerialType::initial`] and enough distinguishing
    /// states that any declared-commuting pair that truly conflicts is
    /// refuted from at least one of them. Analyzers additionally close this
    /// set under [`SerialType::op_domain`], so supplying seed states that
    /// generate the interesting region is sufficient.
    fn bounded_states(&self) -> Vec<Value> {
        vec![self.initial()]
    }
}

/// Replay a sequence of `(Op, Value)` pairs from the initial state.
///
/// Returns the final state if every recorded return value matches the
/// specification — i.e. iff `perform(ξ)` is a behavior of `S_X` (Lemma 4
/// generalized) — and `None` otherwise.
///
/// ```
/// use nt_model::{Op, Value};
/// use nt_serial::{replay, RwRegister};
/// let reg = RwRegister::new(0);
/// let legal = [(Op::Write(3), Value::Ok), (Op::Read, Value::Int(3))];
/// assert_eq!(replay(&reg, &legal), Some(Value::Int(3)));
/// let stale = [(Op::Write(3), Value::Ok), (Op::Read, Value::Int(0))];
/// assert_eq!(replay(&reg, &stale), None);
/// ```
pub fn replay(ty: &dyn SerialType, ops: &[OpVal]) -> Option<Value> {
    replay_from(ty, ty.initial(), ops)
}

/// As [`replay`], starting from an explicit state.
pub fn replay_from(ty: &dyn SerialType, start: Value, ops: &[OpVal]) -> Option<Value> {
    let mut state = start;
    for (op, recorded) in ops {
        let (next, v) = ty.apply(&state, op);
        if v != *recorded {
            return None;
        }
        state = next;
    }
    Some(state)
}

/// Is `perform(ξ)` a behavior of `S_X`? (Legality of an operation sequence.)
pub fn legal(ty: &dyn SerialType, ops: &[OpVal]) -> bool {
    replay(ty, ops).is_some()
}

/// Resolve the operations of paper-style `(TxId, Value)` pairs through the
/// naming tree, yielding `(Op, Value)` pairs. Panics if some name is not an
/// access.
pub fn resolve_ops(tree: &TxTree, ops: &[(TxId, Value)]) -> Vec<OpVal> {
    ops.iter()
        .map(|(t, v)| {
            (
                tree.op_of(*t)
                    .unwrap_or_else(|| panic!("{t} is not an access"))
                    .clone(),
                v.clone(),
            )
        })
        .collect()
}

/// Check one direction of the backward-commutativity definition from a
/// single starting state `s` (standing for an arbitrary prefix `ξ` with
/// final state `s`):
///
/// if `s --first--> --second-->` is legal with the recorded values, then the
/// swapped order must be legal with the recorded values and reach the same
/// final state (equieffectiveness for deterministic specifications).
fn commute_dir_from(ty: &dyn SerialType, s: &Value, first: &OpVal, second: &OpVal) -> bool {
    let (s1, v1) = ty.apply(s, &first.0);
    if v1 != first.1 {
        return true; // original order illegal from s: vacuously fine
    }
    let (s2, v2) = ty.apply(&s1, &second.0);
    if v2 != second.1 {
        return true;
    }
    // Swapped order must replay with identical recorded values…
    let (t1, w1) = ty.apply(s, &second.0);
    if w1 != second.1 {
        return false;
    }
    let (t2, w2) = ty.apply(&t1, &first.0);
    // …and be equieffective (same state ⇒ same continuations, since the
    // specification is deterministic and states are canonical values).
    w2 == first.1 && t2 == s2
}

/// Decide backward commutativity of `a` and `b` *by the definition*,
/// quantifying over the given set of states (which should cover the states
/// reachable by the prefixes `ξ` of interest; exhaustive for small domains).
///
/// Both directions are checked, making the result symmetric like the
/// paper's relation.
pub fn commute_by_definition(ty: &dyn SerialType, a: &OpVal, b: &OpVal, states: &[Value]) -> bool {
    commute_refutation(ty, a, b, states).is_none()
}

/// As [`commute_by_definition`], but on failure return the first starting
/// state from which the pair fails to commute — a concrete counterexample
/// for diagnostics. `None` means the pair commutes from every given state.
pub fn commute_refutation<'a>(
    ty: &dyn SerialType,
    a: &OpVal,
    b: &OpVal,
    states: &'a [Value],
) -> Option<&'a Value> {
    states
        .iter()
        .find(|s| !(commute_dir_from(ty, s, a, b) && commute_dir_from(ty, s, b, a)))
}

/// The serial types of every object in a system, indexed by [`nt_model::ObjId`].
#[derive(Clone)]
pub struct ObjectTypes {
    types: Vec<Arc<dyn SerialType>>,
}

impl fmt::Debug for ObjectTypes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<_> = self.types.iter().map(|t| t.type_name()).collect();
        write!(f, "ObjectTypes({names:?})")
    }
}

impl ObjectTypes {
    /// One explicit type per object, `ObjId(0)` first.
    pub fn new(types: Vec<Arc<dyn SerialType>>) -> Self {
        ObjectTypes { types }
    }

    /// `n` objects all of the same type.
    pub fn uniform(n: usize, ty: Arc<dyn SerialType>) -> Self {
        ObjectTypes {
            types: (0..n).map(|_| Arc::clone(&ty)).collect(),
        }
    }

    /// The type of object `x`.
    pub fn get(&self, x: nt_model::ObjId) -> &Arc<dyn SerialType> {
        &self.types[x.index()]
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True iff there are no objects.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Iterate `(ObjId, type)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (nt_model::ObjId, &Arc<dyn SerialType>)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (nt_model::ObjId(i as u32), t))
    }
}

/// The read/write register of §3.1: the canonical serial object of the
/// classical theory. `Read` returns the current value; `Write(d)` replaces
/// it and returns `OK`.
#[derive(Clone, Debug)]
pub struct RwRegister {
    /// The initial value `d`.
    pub init: i64,
}

impl RwRegister {
    /// A register with the given initial value.
    pub fn new(init: i64) -> Self {
        RwRegister { init }
    }
}

impl SerialType for RwRegister {
    fn type_name(&self) -> &'static str {
        "register"
    }

    fn initial(&self) -> Value {
        Value::Int(self.init)
    }

    fn apply(&self, state: &Value, op: &Op) -> (Value, Value) {
        match op {
            Op::Read => (state.clone(), state.clone()),
            Op::Write(d) => (Value::Int(*d), Value::Ok),
            other => panic!("register does not support {other}"),
        }
    }

    /// The paper's read/write conflict relation (§4): two accesses conflict
    /// unless both are reads. This is (slightly) conservative w.r.t. the
    /// backward-commutativity definition — e.g. two writes of the *same*
    /// value commute by the definition but are declared conflicting — which
    /// keeps the §4 and §6 constructions consistent on registers.
    fn commutes_backward(&self, a: &OpVal, b: &OpVal) -> bool {
        a.0.is_rw_read() && b.0.is_rw_read()
    }

    fn op_domain(&self) -> Vec<Op> {
        vec![Op::Read, Op::Write(0), Op::Write(1)]
    }

    fn bounded_states(&self) -> Vec<Value> {
        let mut vals = vec![self.init, self.init + 1, 0, 1];
        vals.sort_unstable();
        vals.dedup();
        vals.into_iter().map(Value::Int).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> RwRegister {
        RwRegister::new(0)
    }

    #[test]
    fn register_semantics() {
        let r = reg();
        assert_eq!(r.initial(), Value::Int(0));
        let (s, v) = r.apply(&Value::Int(0), &Op::Write(5));
        assert_eq!((s.clone(), v), (Value::Int(5), Value::Ok));
        let (s2, v2) = r.apply(&s, &Op::Read);
        assert_eq!((s2, v2), (Value::Int(5), Value::Int(5)));
    }

    #[test]
    fn replay_accepts_legal_rejects_illegal() {
        let r = reg();
        let legal_ops = vec![
            (Op::Write(3), Value::Ok),
            (Op::Read, Value::Int(3)),
            (Op::Write(4), Value::Ok),
            (Op::Read, Value::Int(4)),
        ];
        assert_eq!(replay(&r, &legal_ops), Some(Value::Int(4)));
        assert!(legal(&r, &legal_ops));
        let illegal = vec![(Op::Write(3), Value::Ok), (Op::Read, Value::Int(9))];
        assert_eq!(replay(&r, &illegal), None);
    }

    #[test]
    fn register_commutativity_declared_vs_definition() {
        let r = reg();
        let states: Vec<Value> = (-2..=2).map(Value::Int).collect();
        let read3 = (Op::Read, Value::Int(3));
        let read4 = (Op::Read, Value::Int(4));
        let write3 = (Op::Write(3), Value::Ok);
        let write4 = (Op::Write(4), Value::Ok);
        // Reads commute, declared and by definition.
        assert!(r.commutes_backward(&read3, &read4));
        assert!(commute_by_definition(&r, &read3, &read4, &states));
        // Write/read conflict both ways.
        assert!(!r.commutes_backward(&write3, &read3));
        assert!(!commute_by_definition(&r, &write3, &read3, &states));
        // Distinct writes conflict by definition too.
        assert!(!commute_by_definition(&r, &write3, &write4, &states));
        // Equal writes: declared conflicting (conservative) although the
        // definition lets them commute.
        assert!(!r.commutes_backward(&write3, &write3.clone()));
        assert!(commute_by_definition(
            &r,
            &write3,
            &(Op::Write(3), Value::Ok),
            &states
        ));
    }

    #[test]
    fn object_types_indexing() {
        let tys = ObjectTypes::uniform(3, Arc::new(RwRegister::new(7)));
        assert_eq!(tys.len(), 3);
        assert!(!tys.is_empty());
        assert_eq!(tys.get(nt_model::ObjId(2)).initial(), Value::Int(7));
        assert_eq!(tys.iter().count(), 3);
    }

    #[test]
    fn resolve_ops_through_tree() {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let u = tree.add_access(a, x, Op::Write(9));
        let resolved = resolve_ops(&tree, &[(u, Value::Ok)]);
        assert_eq!(resolved, vec![(Op::Write(9), Value::Ok)]);
    }
}
