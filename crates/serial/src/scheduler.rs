//! The serial scheduler automaton (§2.2.3).
//!
//! The serial scheduler runs transactions according to a depth-first
//! traversal of the naming tree: no two siblings are ever simultaneously
//! live, a transaction can be aborted only before it is created, and
//! completions are reported to parents. Serial systems — the composition of
//! this scheduler, serial objects, and transaction automata — define the
//! correctness condition every concurrent system must meet.

use nt_automata::Component;
use nt_model::{Action, TxId, TxTree, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The serial scheduler automaton for one system type.
pub struct SerialScheduler {
    tree: Arc<TxTree>,
    create_requested: BTreeSet<TxId>,
    created: BTreeSet<TxId>,
    commit_requested: BTreeMap<TxId, Value>,
    committed: BTreeSet<TxId>,
    aborted: BTreeSet<TxId>,
    reported: BTreeSet<TxId>,
    /// Whether the scheduler may spontaneously abort requested-but-uncreated
    /// transactions (the paper allows it; deterministic replays disable it).
    pub allow_spontaneous_abort: bool,
}

impl SerialScheduler {
    /// A fresh serial scheduler over the given naming tree.
    pub fn new(tree: Arc<TxTree>) -> Self {
        SerialScheduler {
            tree,
            create_requested: BTreeSet::new(),
            created: BTreeSet::new(),
            commit_requested: BTreeMap::new(),
            committed: BTreeSet::new(),
            aborted: BTreeSet::new(),
            reported: BTreeSet::new(),
            allow_spontaneous_abort: false,
        }
    }

    fn is_completed(&self, t: TxId) -> bool {
        self.committed.contains(&t) || self.aborted.contains(&t)
    }

    /// §2.2.3 CREATE precondition: requested (except `T0`), not yet created
    /// or aborted, and — the *serial* discipline — every created sibling has
    /// completed.
    fn can_create(&self, t: TxId) -> bool {
        if self.created.contains(&t) || self.aborted.contains(&t) {
            return false;
        }
        if t != TxId::ROOT && !self.create_requested.contains(&t) {
            return false;
        }
        if let Some(p) = self.tree.parent(t) {
            for &s in self.tree.children(p) {
                if s != t && self.created.contains(&s) && !self.is_completed(s) {
                    return false; // a sibling is live
                }
            }
        }
        true
    }

    /// True iff `t` committed (for tests).
    pub fn is_committed(&self, t: TxId) -> bool {
        self.committed.contains(&t)
    }
}

impl Component for SerialScheduler {
    fn name(&self) -> String {
        "serial-scheduler".into()
    }

    fn is_input(&self, a: &Action) -> bool {
        match a {
            Action::RequestCreate(t) => *t != TxId::ROOT,
            // REQUEST_COMMITs of *non-access* transactions come from
            // transaction automata; those of accesses come from objects.
            // Both are scheduler inputs.
            Action::RequestCommit(_, _) => true,
            _ => false,
        }
    }

    fn is_output(&self, a: &Action) -> bool {
        match a {
            Action::Create(_) => true,
            Action::Commit(t) | Action::Abort(t) => *t != TxId::ROOT,
            Action::ReportCommit(t, _) | Action::ReportAbort(t) => *t != TxId::ROOT,
            _ => false,
        }
    }

    fn apply(&mut self, a: &Action) {
        match a {
            Action::RequestCreate(t) => {
                self.create_requested.insert(*t);
            }
            Action::RequestCommit(t, v) => {
                self.commit_requested.insert(*t, v.clone());
            }
            Action::Create(t) => {
                self.created.insert(*t);
            }
            Action::Commit(t) => {
                self.committed.insert(*t);
            }
            Action::Abort(t) => {
                self.aborted.insert(*t);
            }
            Action::ReportCommit(t, _) | Action::ReportAbort(t) => {
                self.reported.insert(*t);
            }
            _ => unreachable!("serial scheduler shares no other action"),
        }
    }

    fn enabled_outputs(&self, buf: &mut Vec<Action>) {
        // CREATE(T0) needs no request.
        if self.can_create(TxId::ROOT) {
            buf.push(Action::Create(TxId::ROOT));
        }
        for &t in &self.create_requested {
            if self.can_create(t) {
                buf.push(Action::Create(t));
            }
            if self.allow_spontaneous_abort && !self.created.contains(&t) && !self.is_completed(t) {
                buf.push(Action::Abort(t));
            }
        }
        for (&t, v) in &self.commit_requested {
            if t != TxId::ROOT && !self.is_completed(t) {
                buf.push(Action::Commit(t));
            }
            if self.committed.contains(&t) && !self.reported.contains(&t) {
                buf.push(Action::ReportCommit(t, v.clone()));
            }
        }
        for &t in &self.aborted {
            if !self.reported.contains(&t) {
                buf.push(Action::ReportAbort(t));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_siblings() -> (Arc<TxTree>, TxId, TxId) {
        let mut tree = TxTree::new();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        (Arc::new(tree), a, b)
    }

    fn enabled(s: &SerialScheduler) -> Vec<Action> {
        let mut buf = Vec::new();
        s.enabled_outputs(&mut buf);
        buf
    }

    #[test]
    fn creates_root_first() {
        let (tree, _a, _b) = two_siblings();
        let s = SerialScheduler::new(tree);
        assert_eq!(enabled(&s), vec![Action::Create(TxId::ROOT)]);
    }

    #[test]
    fn no_two_siblings_live() {
        let (tree, a, b) = two_siblings();
        let mut s = SerialScheduler::new(tree);
        s.apply(&Action::Create(TxId::ROOT));
        s.apply(&Action::RequestCreate(a));
        s.apply(&Action::RequestCreate(b));
        // Both creations enabled while neither is live…
        let e = enabled(&s);
        assert!(e.contains(&Action::Create(a)));
        assert!(e.contains(&Action::Create(b)));
        // …but once a is created, b must wait.
        s.apply(&Action::Create(a));
        let e = enabled(&s);
        assert!(!e.contains(&Action::Create(b)));
        // a completes → b may run.
        s.apply(&Action::RequestCommit(a, Value::Ok));
        s.apply(&Action::Commit(a));
        let e = enabled(&s);
        assert!(e.contains(&Action::Create(b)));
        assert!(e.contains(&Action::ReportCommit(a, Value::Ok)));
    }

    #[test]
    fn abort_only_before_creation() {
        let (tree, a, _b) = two_siblings();
        let mut s = SerialScheduler::new(tree);
        s.allow_spontaneous_abort = true;
        s.apply(&Action::Create(TxId::ROOT));
        s.apply(&Action::RequestCreate(a));
        assert!(enabled(&s).contains(&Action::Abort(a)));
        s.apply(&Action::Create(a));
        assert!(
            !enabled(&s).contains(&Action::Abort(a)),
            "the serial scheduler never aborts a created transaction"
        );
    }

    #[test]
    fn reports_after_completion_only_once() {
        let (tree, a, _b) = two_siblings();
        let mut s = SerialScheduler::new(tree);
        s.apply(&Action::Create(TxId::ROOT));
        s.apply(&Action::RequestCreate(a));
        s.apply(&Action::Create(a));
        s.apply(&Action::RequestCommit(a, Value::Int(3)));
        s.apply(&Action::Commit(a));
        assert!(enabled(&s).contains(&Action::ReportCommit(a, Value::Int(3))));
        s.apply(&Action::ReportCommit(a, Value::Int(3)));
        assert!(!enabled(&s)
            .iter()
            .any(|x| matches!(x, Action::ReportCommit(t, _) if *t == a)));
    }

    #[test]
    fn no_commit_without_request() {
        let (tree, a, _b) = two_siblings();
        let mut s = SerialScheduler::new(tree);
        s.apply(&Action::Create(TxId::ROOT));
        s.apply(&Action::RequestCreate(a));
        s.apply(&Action::Create(a));
        assert!(!enabled(&s).iter().any(|x| matches!(x, Action::Commit(_))));
    }
}
