//! The serial object automaton `S_X` (§2.2.2, §3.1), generalized over any
//! [`SerialType`].
//!
//! A serial object answers one invocation at a time: `CREATE(T)` (input)
//! activates access `T`; `REQUEST_COMMIT(T, v)` (output) responds with the
//! value determined by the type's transition function and updates the state.
//! With [`crate::types::RwRegister`] this is exactly the read/write serial
//! object of §3.1, whose `REQUEST_COMMIT` preconditions force each read to
//! return the most recently written value.

use crate::types::SerialType;
use nt_automata::Component;
use nt_model::{Action, ObjId, TxId, TxTree, Value};
use std::sync::Arc;

/// The serial object automaton for one object name.
pub struct SerialObject {
    tree: Arc<TxTree>,
    x: ObjId,
    ty: Arc<dyn SerialType>,
    /// The paper's `active` component: the invoked-but-unanswered access.
    active: Option<TxId>,
    /// The paper's `data` component.
    data: Value,
}

impl SerialObject {
    /// A fresh serial object for `x` with specification `ty`.
    pub fn new(tree: Arc<TxTree>, x: ObjId, ty: Arc<dyn SerialType>) -> Self {
        let data = ty.initial();
        SerialObject {
            tree,
            x,
            ty,
            active: None,
            data,
        }
    }

    /// Current state value (for inspection in tests).
    pub fn data(&self) -> &Value {
        &self.data
    }

    /// The active (invoked, unanswered) access, if any.
    pub fn active(&self) -> Option<TxId> {
        self.active
    }
}

impl Component for SerialObject {
    fn name(&self) -> String {
        format!("S({})", self.x)
    }

    fn is_input(&self, a: &Action) -> bool {
        matches!(a, Action::Create(t) if self.tree.object_of(*t) == Some(self.x))
    }

    fn is_output(&self, a: &Action) -> bool {
        matches!(a, Action::RequestCommit(t, _) if self.tree.object_of(*t) == Some(self.x))
    }

    fn apply(&mut self, a: &Action) {
        match a {
            Action::Create(t) => {
                debug_assert!(
                    self.active.is_none(),
                    "serial object well-formedness violated at {}",
                    self.name()
                );
                self.active = Some(*t);
            }
            Action::RequestCommit(t, v) => {
                debug_assert_eq!(self.active, Some(*t));
                let op = self.tree.op_of(*t).expect("access carries an op");
                let (next, value) = self.ty.apply(&self.data, op);
                debug_assert_eq!(&value, v);
                self.data = next;
                self.active = None;
            }
            _ => unreachable!("serial object shares no other action"),
        }
    }

    fn enabled_outputs(&self, buf: &mut Vec<Action>) {
        if let Some(t) = self.active {
            let op = self.tree.op_of(t).expect("access carries an op");
            let (_, value) = self.ty.apply(&self.data, op);
            buf.push(Action::RequestCommit(t, value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RwRegister;
    use nt_model::Op;

    fn setup() -> (Arc<TxTree>, SerialObject, TxId, TxId) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let w = tree.add_access(a, x, Op::Write(5));
        let r = tree.add_access(a, x, Op::Read);
        let tree = Arc::new(tree);
        let obj = SerialObject::new(Arc::clone(&tree), x, Arc::new(RwRegister::new(0)));
        (tree, obj, w, r)
    }

    #[test]
    fn read_returns_latest_write() {
        let (_tree, mut obj, w, r) = setup();
        assert_eq!(obj.data(), &Value::Int(0));

        obj.apply(&Action::Create(w));
        let mut buf = Vec::new();
        obj.enabled_outputs(&mut buf);
        assert_eq!(buf, vec![Action::RequestCommit(w, Value::Ok)]);
        obj.apply(&buf[0]);
        assert_eq!(obj.data(), &Value::Int(5));
        assert_eq!(obj.active(), None);

        obj.apply(&Action::Create(r));
        buf.clear();
        obj.enabled_outputs(&mut buf);
        assert_eq!(buf, vec![Action::RequestCommit(r, Value::Int(5))]);
        obj.apply(&buf[0]);
        assert_eq!(obj.data(), &Value::Int(5), "reads leave data unchanged");
    }

    #[test]
    fn idle_object_offers_nothing() {
        let (_tree, obj, _w, _r) = setup();
        let mut buf = Vec::new();
        obj.enabled_outputs(&mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn action_signature() {
        let (_tree, obj, w, _r) = setup();
        assert!(obj.is_input(&Action::Create(w)));
        assert!(obj.is_output(&Action::RequestCommit(w, Value::Ok)));
        assert!(!obj.is_input(&Action::Commit(w)));
        assert!(!obj.is_output(&Action::Create(w)));
    }
}
