//! Operational validation of serial behaviors (§2.2.4).
//!
//! `validate_serial_behavior` replays a purported serial behavior `γ`
//! through the serial scheduler discipline, the serial object semantics, and
//! the transaction well-formedness envelope, rejecting the first event that
//! no serial system could produce. It is the executable definition of
//! "γ is a serial behavior" used by the witness check of `nt-sgt`
//! (Theorem 8's conclusion made testable).

use crate::types::ObjectTypes;
use nt_model::wellformed::Violation;
use nt_model::{Action, TxId, TxTree, Value};
use std::collections::{HashMap, HashSet};

fn violation(at: usize, what: impl Into<String>) -> Violation {
    Violation {
        at,
        what: what.into(),
    }
}

/// Validate that `gamma` is a behavior of *some* serial system of this
/// system type: the serial scheduler and serial objects act exactly as
/// specified, and every non-access transaction's projection is
/// transaction-well-formed (so some transaction automaton could have
/// produced it).
pub fn validate_serial_behavior(
    tree: &TxTree,
    gamma: &[Action],
    types: &ObjectTypes,
) -> Result<(), Violation> {
    let mut requested: HashSet<TxId> = HashSet::new();
    let mut created: HashSet<TxId> = HashSet::new();
    let mut commit_requested: HashMap<TxId, Value> = HashMap::new();
    let mut committed: HashSet<TxId> = HashSet::new();
    let mut aborted: HashSet<TxId> = HashSet::new();
    let mut reported: HashSet<TxId> = HashSet::new();
    // Children whose reports each parent has received (for transaction wf).
    let mut reports_received: HashMap<TxId, usize> = HashMap::new();
    let mut requests_made: HashMap<TxId, usize> = HashMap::new();
    // Serial object states.
    let mut obj_state: Vec<Value> = types.iter().map(|(_, t)| t.initial()).collect();
    let mut obj_active: Vec<Option<TxId>> = vec![None; types.len()];

    let completed = |committed: &HashSet<TxId>, aborted: &HashSet<TxId>, t: TxId| -> bool {
        committed.contains(&t) || aborted.contains(&t)
    };

    for (i, a) in gamma.iter().enumerate() {
        if !a.is_serial() {
            return Err(violation(i, format!("{a} is not a serial action")));
        }
        match a {
            Action::RequestCreate(t) => {
                let Some(p) = tree.parent(*t) else {
                    return Err(violation(i, "REQUEST_CREATE(T0)"));
                };
                if p != TxId::ROOT && !created.contains(&p) {
                    return Err(violation(i, format!("parent of {t} not created")));
                }
                if p == TxId::ROOT && !created.contains(&TxId::ROOT) {
                    return Err(violation(i, "T0 not created yet"));
                }
                if commit_requested.contains_key(&p) {
                    return Err(violation(i, format!("parent of {t} already finished")));
                }
                if !requested.insert(*t) {
                    return Err(violation(i, format!("duplicate REQUEST_CREATE({t})")));
                }
                *requests_made.entry(p).or_default() += 1;
            }
            Action::Create(t) => {
                if *t != TxId::ROOT && !requested.contains(t) {
                    return Err(violation(i, format!("CREATE({t}) without request")));
                }
                if aborted.contains(t) {
                    return Err(violation(i, format!("CREATE({t}) after ABORT")));
                }
                if !created.insert(*t) {
                    return Err(violation(i, format!("duplicate CREATE({t})")));
                }
                // Serial discipline: no live sibling.
                if let Some(p) = tree.parent(*t) {
                    for &s in tree.children(p) {
                        if s != *t && created.contains(&s) && !completed(&committed, &aborted, s) {
                            return Err(violation(
                                i,
                                format!("CREATE({t}) while sibling {s} is live"),
                            ));
                        }
                    }
                }
                if let Some(x) = tree.object_of(*t) {
                    if obj_active[x.index()].is_some() {
                        return Err(violation(i, format!("object {x} already active")));
                    }
                    obj_active[x.index()] = Some(*t);
                }
            }
            Action::RequestCommit(t, v) => {
                if commit_requested.contains_key(t) {
                    return Err(violation(i, format!("duplicate REQUEST_COMMIT({t})")));
                }
                if !created.contains(t) {
                    return Err(violation(i, format!("REQUEST_COMMIT({t}) before CREATE")));
                }
                if let Some(x) = tree.object_of(*t) {
                    // Access: the serial object determines the value.
                    if obj_active[x.index()] != Some(*t) {
                        return Err(violation(i, format!("{t} is not active at {x}")));
                    }
                    let ty = types.get(x);
                    let op = tree.op_of(*t).expect("access has op");
                    let (next, expect) = ty.apply(&obj_state[x.index()], op);
                    if expect != *v {
                        return Err(violation(
                            i,
                            format!("{t} returned {v}, serial spec requires {expect}"),
                        ));
                    }
                    obj_state[x.index()] = next;
                    obj_active[x.index()] = None;
                } else {
                    // Non-access: transaction wf requires all requested
                    // children reported.
                    let made = requests_made.get(t).copied().unwrap_or(0);
                    let recv = reports_received.get(t).copied().unwrap_or(0);
                    if made != recv {
                        return Err(violation(
                            i,
                            format!("{t} requested commit with outstanding children"),
                        ));
                    }
                }
                commit_requested.insert(*t, v.clone());
            }
            Action::Commit(t) => {
                if *t == TxId::ROOT {
                    return Err(violation(i, "COMMIT(T0)"));
                }
                if !commit_requested.contains_key(t) {
                    return Err(violation(i, format!("COMMIT({t}) without request")));
                }
                if completed(&committed, &aborted, *t) {
                    return Err(violation(i, format!("{t} already completed")));
                }
                committed.insert(*t);
            }
            Action::Abort(t) => {
                if *t == TxId::ROOT {
                    return Err(violation(i, "ABORT(T0)"));
                }
                if !requested.contains(t) {
                    return Err(violation(i, format!("ABORT({t}) without request")));
                }
                if created.contains(t) {
                    return Err(violation(
                        i,
                        format!("serial scheduler never aborts created {t}"),
                    ));
                }
                if completed(&committed, &aborted, *t) {
                    return Err(violation(i, format!("{t} already completed")));
                }
                aborted.insert(*t);
            }
            Action::ReportCommit(t, v) => {
                if !committed.contains(t) {
                    return Err(violation(i, format!("REPORT_COMMIT({t}) before COMMIT")));
                }
                if commit_requested.get(t) != Some(v) {
                    return Err(violation(i, format!("REPORT_COMMIT({t}) wrong value")));
                }
                if !reported.insert(*t) {
                    return Err(violation(i, format!("duplicate report for {t}")));
                }
                if let Some(p) = tree.parent(*t) {
                    *reports_received.entry(p).or_default() += 1;
                }
            }
            Action::ReportAbort(t) => {
                if !aborted.contains(t) {
                    return Err(violation(i, format!("REPORT_ABORT({t}) before ABORT")));
                }
                if !reported.insert(*t) {
                    return Err(violation(i, format!("duplicate report for {t}")));
                }
                if let Some(p) = tree.parent(*t) {
                    *reports_received.entry(p).or_default() += 1;
                }
            }
            Action::InformCommit(..) | Action::InformAbort(..) => unreachable!(),
        }
    }
    Ok(())
}

/// Convenience predicate form of [`validate_serial_behavior`].
pub fn is_serial_behavior(tree: &TxTree, gamma: &[Action], types: &ObjectTypes) -> bool {
    validate_serial_behavior(tree, gamma, types).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::RwRegister;
    use nt_model::Op;
    use std::sync::Arc;

    fn setup() -> (TxTree, ObjectTypes, TxId, TxId, TxId, TxId) {
        let mut tree = TxTree::new();
        let x = tree.add_object();
        let a = tree.add_inner(TxId::ROOT);
        let b = tree.add_inner(TxId::ROOT);
        let w = tree.add_access(a, x, Op::Write(5));
        let r = tree.add_access(b, x, Op::Read);
        let types = ObjectTypes::uniform(1, Arc::new(RwRegister::new(0)));
        (tree, types, a, b, w, r)
    }

    fn good_gamma(a: TxId, b: TxId, w: TxId, r: TxId) -> Vec<Action> {
        vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::Create(a),
            Action::RequestCreate(w),
            Action::Create(w),
            Action::RequestCommit(w, Value::Ok),
            Action::Commit(w),
            Action::ReportCommit(w, Value::Ok),
            Action::RequestCommit(a, Value::Ok),
            Action::Commit(a),
            Action::ReportCommit(a, Value::Ok),
            Action::RequestCreate(b),
            Action::Create(b),
            Action::RequestCreate(r),
            Action::Create(r),
            Action::RequestCommit(r, Value::Int(5)),
            Action::Commit(r),
            Action::ReportCommit(r, Value::Int(5)),
            Action::RequestCommit(b, Value::Ok),
            Action::Commit(b),
        ]
    }

    #[test]
    fn accepts_serial_run() {
        let (tree, types, a, b, w, r) = setup();
        let gamma = good_gamma(a, b, w, r);
        assert!(validate_serial_behavior(&tree, &gamma, &types).is_ok());
    }

    #[test]
    fn rejects_wrong_read_value() {
        let (tree, types, a, b, w, r) = setup();
        let mut gamma = good_gamma(a, b, w, r);
        gamma[15] = Action::RequestCommit(r, Value::Int(99));
        let err = validate_serial_behavior(&tree, &gamma, &types).unwrap_err();
        assert_eq!(err.at, 15);
        assert!(err.what.contains("serial spec requires"));
    }

    #[test]
    fn rejects_live_siblings() {
        let (tree, types, a, b, _w, _r) = setup();
        let gamma = vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::RequestCreate(b),
            Action::Create(a),
            Action::Create(b), // a still live!
        ];
        let err = validate_serial_behavior(&tree, &gamma, &types).unwrap_err();
        assert_eq!(err.at, 4);
        assert!(err.what.contains("live"));
    }

    #[test]
    fn rejects_abort_after_create() {
        let (tree, types, a, _b, _w, _r) = setup();
        let gamma = vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::Create(a),
            Action::Abort(a),
        ];
        let err = validate_serial_behavior(&tree, &gamma, &types).unwrap_err();
        assert!(err.what.contains("never aborts created"));
    }

    #[test]
    fn accepts_abort_before_create() {
        let (tree, types, a, _b, _w, _r) = setup();
        let gamma = vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::Abort(a),
            Action::ReportAbort(a),
        ];
        assert!(validate_serial_behavior(&tree, &gamma, &types).is_ok());
    }

    #[test]
    fn rejects_commit_with_outstanding_children() {
        let (tree, types, a, _b, w, _r) = setup();
        let gamma = vec![
            Action::Create(TxId::ROOT),
            Action::RequestCreate(a),
            Action::Create(a),
            Action::RequestCreate(w),
            Action::Create(w),
            Action::RequestCommit(a, Value::Ok), // w unreported
        ];
        let err = validate_serial_behavior(&tree, &gamma, &types).unwrap_err();
        assert!(err.what.contains("outstanding"));
    }

    #[test]
    fn rejects_inform_actions() {
        let (tree, types, _a, _b, w, _r) = setup();
        let gamma = vec![
            Action::Create(TxId::ROOT),
            Action::InformCommit(nt_model::ObjId(0), w),
        ];
        assert!(validate_serial_behavior(&tree, &gamma, &types).is_err());
    }
}
