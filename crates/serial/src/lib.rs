//! # nt-serial
//!
//! Serial systems (§2.2 of the paper): the correctness *specification* side
//! of the workspace.
//!
//! * [`types`] — the [`types::SerialType`] trait giving each data type's
//!   serial specification (transition function + declared backward
//!   commutativity, §6.1), the read/write register of §3.1, and the
//!   definition-based commutativity oracle used by property tests;
//! * [`object`] — the serial object automaton `S_X` (§2.2.2, §3.1);
//! * [`scheduler`] — the serial scheduler automaton (§2.2.3);
//! * [`validate`] — an operational validator deciding whether a sequence is
//!   a behavior of some serial system; the executable meaning of the
//!   paper's "serially correct for `T0`" witness.

#![forbid(unsafe_code)]

pub mod object;
pub mod scheduler;
pub mod types;
pub mod validate;

pub use object::SerialObject;
pub use scheduler::SerialScheduler;
pub use types::{
    commute_by_definition, commute_refutation, legal, replay, replay_from, resolve_ops,
    ObjectTypes, OpVal, RwRegister, SerialType,
};
pub use validate::{is_serial_behavior, validate_serial_behavior};
