//! Cost of each stage of the Theorem 8 checker pipeline on a fixed
//! Moss-locking behavior: simple-behavior validation, appropriate return
//! values (replay path), current & safe (Lemma 6 path), graph + topo sort,
//! witness reconstruction, and the full end-to-end verdict.

use criterion::{criterion_group, criterion_main, Criterion};
use nt_bench::moss_trace;
use nt_model::rw::RwInitials;
use nt_model::wellformed::check_simple_behavior;
use nt_sgt::{
    appropriate_return_values, build_sg, check_current_and_safe, check_serial_correctness,
    reconstruct_witness, ConflictSource,
};
use nt_sim::WorkloadSpec;

fn bench_pipeline(c: &mut Criterion) {
    let spec = WorkloadSpec {
        seed: 5,
        top_level: 32,
        objects: 8,
        max_depth: 2,
        ..WorkloadSpec::default()
    };
    let (tree, types, serial) = moss_trace(&spec);
    let init = RwInitials::uniform(0);
    let graph = build_sg(&tree, &serial, ConflictSource::ReadWrite);
    let order = graph.topological_order().expect("acyclic");

    let mut group = c.benchmark_group("checker_pipeline");
    group.bench_function("simple_behavior_wf", |b| {
        b.iter(|| check_simple_behavior(&tree, &serial).is_ok())
    });
    group.bench_function("appropriate_values_replay", |b| {
        b.iter(|| appropriate_return_values(&tree, &serial, &types).is_ok())
    });
    group.bench_function("current_and_safe", |b| {
        b.iter(|| check_current_and_safe(&tree, &serial, &init).is_ok())
    });
    group.bench_function("build_sg_and_toposort", |b| {
        b.iter(|| {
            build_sg(&tree, &serial, ConflictSource::ReadWrite)
                .topological_order()
                .is_some()
        })
    });
    group.bench_function("witness_reconstruction", |b| {
        b.iter(|| {
            reconstruct_witness(&tree, &serial, &order, &types)
                .unwrap()
                .len()
        })
    });
    group.bench_function("full_check", |b| {
        b.iter(|| {
            check_serial_correctness(&tree, &serial, &types, ConflictSource::ReadWrite)
                .is_serially_correct()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
