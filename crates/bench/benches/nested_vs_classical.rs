//! E8 (criterion form): on flat (trivially nested) workloads, the nested
//! serialization-graph construction vs. the classical flat one — the
//! generalization's overhead should be a small constant factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nt_bench::moss_trace;
use nt_sgt::{build_classical_sg, conflict_edges, ConflictSource, SerializationGraph};
use nt_sim::WorkloadSpec;

fn bench_nested_vs_classical(c: &mut Criterion) {
    let mut group = c.benchmark_group("nested_vs_classical");
    for &top in &[16usize, 64, 128] {
        let spec = WorkloadSpec {
            seed: 23,
            top_level: top,
            objects: (top / 4).max(2),
            max_depth: 0,
            ..WorkloadSpec::default()
        };
        let (tree, _types, serial) = moss_trace(&spec);
        group.bench_with_input(BenchmarkId::new("nested", top), &serial, |b, s| {
            b.iter(|| {
                let mut g = SerializationGraph::new();
                conflict_edges(&tree, s, ConflictSource::ReadWrite, &mut g);
                g.is_acyclic()
            })
        });
        group.bench_with_input(BenchmarkId::new("classical", top), &serial, |b, s| {
            b.iter(|| build_classical_sg(&tree, s).is_acyclic())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nested_vs_classical);
criterion_main!(benches);
