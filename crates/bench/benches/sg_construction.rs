//! E5 (criterion form): cost of the serialization-graph construction —
//! `conflict(β)` + `precedes(β)` + cycle check — as behavior size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nt_bench::moss_trace;
use nt_sgt::{build_sg, ConflictSource};
use nt_sim::WorkloadSpec;

fn bench_build_sg(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_sg");
    for &top in &[16usize, 64, 256] {
        let spec = WorkloadSpec {
            seed: 7,
            top_level: top,
            objects: (top / 2).max(4),
            max_depth: 2,
            ..WorkloadSpec::default()
        };
        let (tree, _types, serial) = moss_trace(&spec);
        group.throughput(Throughput::Elements(serial.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("events", serial.len()),
            &serial,
            |b, serial| {
                b.iter(|| {
                    let g = build_sg(&tree, serial, ConflictSource::ReadWrite);
                    assert!(g.is_acyclic());
                    g.edge_count()
                })
            },
        );
    }
    group.finish();
}

fn bench_hotspot_quadratic(c: &mut Criterion) {
    // Hotspot object: conflict enumeration is quadratic in per-object
    // operations; this group documents that worst case.
    let mut group = c.benchmark_group("build_sg_hotspot");
    for &top in &[16usize, 32, 64] {
        let spec = WorkloadSpec {
            seed: 11,
            top_level: top,
            objects: 2,
            hotspot: 0.9,
            max_depth: 1,
            ..WorkloadSpec::default()
        };
        let (tree, _types, serial) = moss_trace(&spec);
        group.bench_with_input(BenchmarkId::new("txs", top), &serial, |b, serial| {
            b.iter(|| build_sg(&tree, serial, ConflictSource::ReadWrite).edge_count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build_sg, bench_hotspot_quadratic);
criterion_main!(benches);
