//! E6/E7/E9 (criterion form): end-to-end simulation cost of each
//! protocol on a fixed workload family — Moss read/write, Moss exclusive,
//! undo logging, chaos, and the serial-scheduler baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use nt_locking::LockMode;
use nt_sim::{run_generic, run_serial, OpMix, Protocol, SimConfig, WorkloadSpec};

fn spec_rw() -> WorkloadSpec {
    WorkloadSpec {
        seed: 13,
        top_level: 16,
        objects: 6,
        max_depth: 2,
        mix: OpMix::ReadWrite { read_ratio: 0.6 },
        ..WorkloadSpec::default()
    }
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocols_rw_workload");
    group.bench_function("moss_rw", |b| {
        b.iter(|| {
            let mut w = spec_rw().generate();
            run_generic(
                &mut w,
                Protocol::Moss(LockMode::ReadWrite),
                &SimConfig::default(),
            )
            .steps
        })
    });
    group.bench_function("moss_exclusive", |b| {
        b.iter(|| {
            let mut w = spec_rw().generate();
            run_generic(
                &mut w,
                Protocol::Moss(LockMode::Exclusive),
                &SimConfig::default(),
            )
            .steps
        })
    });
    group.bench_function("undo_logging", |b| {
        b.iter(|| {
            let mut w = spec_rw().generate();
            run_generic(&mut w, Protocol::Undo, &SimConfig::default()).steps
        })
    });
    group.bench_function("chaos", |b| {
        b.iter(|| {
            let mut w = spec_rw().generate();
            run_generic(&mut w, Protocol::Chaos, &SimConfig::default()).steps
        })
    });
    group.bench_function("serial_scheduler", |b| {
        b.iter(|| {
            let mut w = spec_rw().generate();
            run_serial(&mut w, &SimConfig::default()).steps
        })
    });
    group.finish();

    let mut group = c.benchmark_group("protocols_counter_hotspot");
    let counter_spec = WorkloadSpec {
        seed: 13,
        top_level: 16,
        objects: 1,
        hotspot: 1.0,
        mix: OpMix::Counter { read_ratio: 0.05 },
        ..WorkloadSpec::default()
    };
    group.bench_function("undo_commuting_adds", |b| {
        b.iter(|| {
            let mut w = counter_spec.generate();
            run_generic(&mut w, Protocol::Undo, &SimConfig::default()).steps
        })
    });
    let register_spec = WorkloadSpec {
        mix: OpMix::ReadWrite { read_ratio: 0.05 },
        ..counter_spec.clone()
    };
    group.bench_function("moss_conflicting_writes", |b| {
        b.iter(|| {
            let mut w = register_spec.generate();
            run_generic(
                &mut w,
                Protocol::Moss(LockMode::ReadWrite),
                &SimConfig::default(),
            )
            .steps
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
