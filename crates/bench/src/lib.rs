//! # nt-bench
//!
//! Experiment harness for the reproduction: shared helpers used by the
//! `experiments` binary (which regenerates every table in
//! `EXPERIMENTS.md`) and the criterion benches.

use nt_locking::LockMode;
use nt_model::seq::serial_projection;
use nt_sgt::{check_serial_correctness, ConflictSource, Verdict};
use nt_sim::{run_generic, Protocol, SimConfig, SimResult, WorkloadSpec};

/// Outcome summary of checking one run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Verdict::SeriallyCorrect.
    Correct,
    /// Cyclic serialization graph.
    Cyclic,
    /// Inappropriate return values.
    Inappropriate,
    /// Malformed / witness failure (never expected).
    Other,
}

/// Run a workload under a protocol and check it, returning the sim result,
/// the verdict summary, and the serialization-graph size when available.
pub fn run_and_check(
    spec: &WorkloadSpec,
    protocol: Protocol,
    cfg: &SimConfig,
    source_rw: bool,
) -> (SimResult, CheckOutcome, usize) {
    let mut w = spec.generate();
    let r = run_generic(&mut w, protocol, cfg);
    let source = if source_rw {
        ConflictSource::ReadWrite
    } else {
        ConflictSource::Types(&w.types)
    };
    let verdict = check_serial_correctness(&w.tree, &r.trace, &w.types, source);
    let (outcome, edges) = match &verdict {
        Verdict::SeriallyCorrect { graph, .. } => (CheckOutcome::Correct, graph.edge_count()),
        Verdict::Cyclic { graph, .. } => (CheckOutcome::Cyclic, graph.edge_count()),
        Verdict::InappropriateReturnValues(_) => (CheckOutcome::Inappropriate, 0),
        _ => (CheckOutcome::Other, 0),
    };
    (r, outcome, edges)
}

/// Convenience: a Moss run's serial projection plus tree/types, for
/// checker micro-benchmarks.
pub fn moss_trace(
    spec: &WorkloadSpec,
) -> (
    std::sync::Arc<nt_model::TxTree>,
    nt_serial::ObjectTypes,
    Vec<nt_model::Action>,
) {
    let mut w = spec.generate();
    let r = run_generic(
        &mut w,
        Protocol::Moss(LockMode::ReadWrite),
        &SimConfig::default(),
    );
    assert!(r.quiescent);
    (w.tree, w.types, serial_projection(&r.trace))
}

/// Simple fixed-width table printer for experiment outputs.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn print(&self) {
        let mut width: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let body: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect();
            println!("| {} |", body.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_and_check_moss_is_correct() {
        let spec = WorkloadSpec {
            top_level: 4,
            ..WorkloadSpec::default()
        };
        let (r, outcome, edges) = run_and_check(
            &spec,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig::default(),
            true,
        );
        assert!(r.quiescent);
        assert_eq!(outcome, CheckOutcome::Correct);
        let _ = edges;
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "bbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }
}
