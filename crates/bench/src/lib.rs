//! # nt-bench
//!
//! Experiment harness for the reproduction: shared helpers used by the
//! `experiments` binary (which regenerates every table in
//! `EXPERIMENTS.md`) and the criterion benches.

#![forbid(unsafe_code)]

use nt_locking::LockMode;
use nt_model::seq::serial_projection;
use nt_obs::json::JsonObj;
use nt_obs::Event;
use nt_sgt::{check_serial_correctness_traced, ConflictSource, Verdict};
use nt_sim::{run_generic, Protocol, SimConfig, SimResult, WorkloadSpec};

/// Outcome summary of checking one run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Verdict::SeriallyCorrect.
    Correct,
    /// Cyclic serialization graph.
    Cyclic,
    /// Inappropriate return values.
    Inappropriate,
    /// Malformed / witness failure (never expected).
    Other,
}

/// Run a workload under a protocol and check it, returning the sim result,
/// the verdict summary, and the serialization-graph size when available.
pub fn run_and_check(
    spec: &WorkloadSpec,
    protocol: Protocol,
    cfg: &SimConfig,
    source_rw: bool,
) -> (SimResult, CheckOutcome, usize) {
    let mut w = spec.generate();
    let r = run_generic(&mut w, protocol, cfg);
    let source = if source_rw {
        ConflictSource::ReadWrite
    } else {
        ConflictSource::Types(&w.types)
    };
    let verdict = check_serial_correctness_traced(&w.tree, &r.trace, &w.types, source, &cfg.trace);
    let (outcome, edges) = match &verdict {
        Verdict::SeriallyCorrect { graph, .. } => (CheckOutcome::Correct, graph.edge_count()),
        Verdict::Cyclic { graph, .. } => (CheckOutcome::Cyclic, graph.edge_count()),
        Verdict::InappropriateReturnValues(_) => (CheckOutcome::Inappropriate, 0),
        _ => (CheckOutcome::Other, 0),
    };
    if outcome != CheckOutcome::Correct && cfg.trace.enabled() {
        // A non-correct verdict under tracing is worth a flight dump: the
        // recorder's tail shows what the protocol did just before the
        // checker rejected the behavior.
        cfg.trace.record(Event::Violation {
            reason: format!("checker verdict: {}", verdict.name()),
        });
        cfg.trace
            .dump_flight_to_stderr(&format!("checker verdict: {}", verdict.name()));
    }
    (r, outcome, edges)
}

/// Convenience: a Moss run's serial projection plus tree/types, for
/// checker micro-benchmarks.
pub fn moss_trace(
    spec: &WorkloadSpec,
) -> (
    std::sync::Arc<nt_model::TxTree>,
    nt_serial::ObjectTypes,
    Vec<nt_model::Action>,
) {
    let mut w = spec.generate();
    let r = run_generic(
        &mut w,
        Protocol::Moss(LockMode::ReadWrite),
        &SimConfig::default(),
    );
    assert!(r.quiescent);
    (w.tree, w.types, serial_projection(&r.trace))
}

// The one-line smoke summary builder moved to `nt-telemetry` so the
// load driver's per-connection sweep cells share it; re-exported here
// for the bench binaries.
pub use nt_telemetry::SmokeLine;

/// Simple fixed-width table printer for experiment outputs.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Snapshot as a JSON object: `{"headers": [...], "rows": [[...]]}`
    /// (cells stay strings — they are already formatted for humans, and
    /// string cells keep the snapshot schema uniform across experiments).
    pub fn to_json(&self) -> String {
        let row_json = |cells: &[String]| {
            let quoted: Vec<String> = cells
                .iter()
                .map(|c| {
                    let mut s = String::new();
                    nt_obs::json::escape_str(c, &mut s);
                    s
                })
                .collect();
            format!("[{}]", quoted.join(","))
        };
        let mut o = JsonObj::new();
        o.raw("headers", row_json(&self.headers));
        let rows: Vec<String> = self.rows.iter().map(|r| row_json(r)).collect();
        o.raw("rows", format!("[{}]", rows.join(",")));
        o.build()
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn print(&self) {
        let mut width: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let body: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = width[i]))
                .collect();
            println!("| {} |", body.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = width.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
        println!();
    }
}

/// One experiment's snapshot inside a [`Report`].
struct ExperimentSnapshot {
    id: String,
    title: String,
    tables: Vec<String>,
}

/// Structured experiment reporting: every experiment registers its title
/// and tables here; tables still render to stdout for humans, and the
/// whole report serializes to one JSON document
/// (`BENCH_experiments.json`), so downstream tooling never scrapes the
/// markdown.
#[derive(Default)]
pub struct Report {
    experiments: Vec<ExperimentSnapshot>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start an experiment section: prints the markdown heading and opens
    /// a snapshot that subsequent [`Report::table`] calls attach to.
    pub fn section(&mut self, id: &str, title: &str) {
        println!("## {title}\n");
        self.experiments.push(ExperimentSnapshot {
            id: id.to_string(),
            title: title.to_string(),
            tables: Vec::new(),
        });
    }

    /// Print a table to stdout and record its JSON snapshot under the
    /// current section.
    pub fn table(&mut self, t: &Table) {
        t.print();
        self.experiments
            .last_mut()
            .expect("section() before table()")
            .tables
            .push(t.to_json());
    }

    /// Number of experiments recorded.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// True when no experiment has been recorded.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// The whole report as a JSON document.
    pub fn to_json(&self) -> String {
        let exps: Vec<String> = self
            .experiments
            .iter()
            .map(|e| {
                let mut o = JsonObj::new();
                o.str("id", &e.id);
                o.str("title", &e.title);
                o.raw("tables", format!("[{}]", e.tables.join(",")));
                o.build()
            })
            .collect();
        let mut root = JsonObj::new();
        root.str("schema", "nt-bench/experiments/v1");
        root.raw("experiments", format!("[{}]", exps.join(",")));
        root.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_sections_and_tables() {
        let mut rep = Report::new();
        rep.section("e0", "demo");
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "x \"quoted\"".into()]);
        rep.table(&t);
        assert_eq!(rep.len(), 1);
        let j = rep.to_json();
        let v = nt_obs::json::Json::parse(&j).expect("report JSON parses");
        let exps = v.get("experiments").unwrap();
        let nt_obs::json::Json::Arr(items) = exps else {
            panic!("experiments array");
        };
        assert_eq!(items.len(), 1);
        assert_eq!(
            items[0].get("id").and_then(nt_obs::json::Json::as_str),
            Some("e0")
        );
    }

    #[test]
    fn run_and_check_moss_is_correct() {
        let spec = WorkloadSpec {
            top_level: 4,
            ..WorkloadSpec::default()
        };
        let (r, outcome, edges) = run_and_check(
            &spec,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig::default(),
            true,
        );
        assert!(r.quiescent);
        assert_eq!(outcome, CheckOutcome::Correct);
        let _ = edges;
    }

    #[test]
    fn smoke_line_reports_percentiles_uniformly() {
        let mut h = nt_telemetry::HistSnapshot::new();
        for v in 1..=100u64 {
            h.observe(v * 10);
        }
        let line = SmokeLine::new("demo").percentiles("req_us", &h).build();
        let v = nt_obs::json::Json::parse(&line).expect("smoke line parses");
        let num = |k: &str| v.get(k).and_then(nt_obs::json::Json::as_num).unwrap();
        assert!(num("req_us_p50") > 0.0);
        assert!(num("req_us_p95") >= num("req_us_p50"));
        assert!(num("req_us_p99") >= num("req_us_p95"));
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "bbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }
}
