//! Live-certifier overhead and memory-ceiling harness (experiment E20).
//!
//! Two measurements against real loopback servers:
//!
//! 1. **Overhead sweep** — the E16 closed-loop contended workload at each
//!    connection count, run twice per cell on fresh servers: live
//!    certification off, then on (same seed, same total top count). The
//!    reported overhead is the throughput delta; the target is < 5%. The
//!    live cell's `CERT` verdict must be `ok` with an advanced watermark.
//! 2. **Watermark-GC soak** — one persistent `--live-certify` server
//!    driven by repeated load waves while the `CERT` document is sampled
//!    between waves: the watermark must advance monotonically and the
//!    resident graph (nodes/edges) must stay bounded — far below the
//!    total number of tops processed — demonstrating the GC's memory
//!    ceiling. Default soak is a few seconds so the committed artifact is
//!    reproducible in CI; `--soak-secs 600` runs the full ten-minute soak
//!    from the issue.
//!
//! Results land in `BENCH_sgt.json` (gated by `tools/check_benches.sh`).
//!
//! ```sh
//! cargo run --release -p nt-bench --bin sgt_bench                  # sweep + short soak
//! cargo run --release -p nt-bench --bin sgt_bench -- --soak-secs 600
//! cargo run --release -p nt-bench --bin sgt_bench -- --smoke       # CI gate
//! ```

use nt_bench::SmokeLine;
use nt_net::{run_load, Conn, ConnConfig, LoadConfig, NetServer, ServerConfig};
use nt_obs::json::{Json, JsonObj};
use std::time::{Duration, Instant};

const CONN_SWEEP: [usize; 4] = [1, 2, 4, 8];
const TOTAL_TOPS: usize = 64;
/// Short default so the committed artifact regenerates quickly; the
/// full issue soak is `--soak-secs 600`.
const DEFAULT_SOAK_SECS: u64 = 5;
/// Soak-server transaction arena (the engine's arena is fixed-capacity
/// by design, so the soak carries a large one and stops before it is
/// spent — the certifier's resident graph is what must stay flat).
const SOAK_CAPACITY: usize = 1 << 21;

fn sweep_load(connections: usize) -> LoadConfig {
    LoadConfig {
        connections,
        tops_per_conn: TOTAL_TOPS / connections,
        objects: 6,
        hotspot: 0.5,
        read_ratio: 0.5,
        max_depth: 2,
        seed: 20,
        ..LoadConfig::default()
    }
}

/// The live serialization-graph certificate of a running server.
struct Cert {
    ok: bool,
    watermark: u64,
    processed: u64,
    nodes: u64,
    edges: u64,
}

fn fetch_cert(addr: &str, load: &LoadConfig) -> Cert {
    let mut conn = Conn::connect(addr, 0, ConnConfig::from(load)).expect("connect for CERT");
    let doc = conn.cert().expect("CERT answered");
    let v = Json::parse(&doc).expect("cert document parses");
    assert_eq!(v.get("mode").and_then(Json::as_str), Some("live"), "{doc}");
    let num = |k: &str| v.get(k).and_then(Json::as_num).unwrap_or(0.0) as u64;
    Cert {
        ok: v.get("ok") == Some(&Json::Bool(true)),
        watermark: num("watermark"),
        processed: num("processed"),
        nodes: num("nodes"),
        edges: num("edges"),
    }
}

struct CellRun {
    committed: u64,
    wall_us: u64,
    cert: Option<Cert>,
}

impl CellRun {
    fn throughput(&self) -> f64 {
        self.committed as f64 / (self.wall_us as f64 / 1e6)
    }
}

/// One cell: a fresh loopback server with live certification on or off,
/// driven by the standard closed-loop load. Best-of-3 wall clock.
fn run_cell(connections: usize, live: bool) -> CellRun {
    let mut best: Option<CellRun> = None;
    for _ in 0..3 {
        let server = NetServer::bind(ServerConfig {
            live_certify: live,
            ..ServerConfig::default()
        })
        .expect("bind loopback");
        let addr = server.local_addr().to_string();
        let handle = server.serve();
        let load = sweep_load(connections);
        let report = run_load(&addr, &load).expect("load runs");
        let cert = live.then(|| fetch_cert(&addr, &load));
        handle.wait();
        if let Some(c) = &cert {
            assert!(c.ok, "{connections} conns: live certifier found a cycle");
            assert!(c.watermark > 0, "{connections} conns: watermark stuck");
            assert!(c.processed > 0, "{connections} conns: nothing processed");
        }
        let run = CellRun {
            committed: report.committed_tops,
            wall_us: report.wall_us,
            cert,
        };
        best = match best {
            Some(b) if b.wall_us <= run.wall_us => Some(b),
            _ => Some(run),
        };
    }
    best.expect("two runs happened")
}

struct Row {
    connections: usize,
    committed: u64,
    tput_off: f64,
    tput_on: f64,
    overhead_pct: f64,
    cert_ok: bool,
    watermark: u64,
    resident_nodes: u64,
    resident_edges: u64,
}

impl Row {
    fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.num("connections", self.connections as u64)
            .num("committed_tops", self.committed)
            .float("throughput_off_tps", self.tput_off)
            .float("throughput_live_tps", self.tput_on)
            .float("overhead_pct", self.overhead_pct)
            .bool("cert_ok", self.cert_ok)
            .num("watermark", self.watermark)
            .num("resident_nodes", self.resident_nodes)
            .num("resident_edges", self.resident_edges);
        o.build()
    }
}

fn run_sweep() -> Vec<Row> {
    println!(
        "| {:5} | {:9} | {:12} | {:12} | {:8} | {:9} | {:9} |",
        "conns", "committed", "tput_off_tps", "tput_live_tps", "ovhd_%", "watermark", "res_nodes"
    );
    println!(
        "|-------|-----------|--------------|--------------|----------|-----------|-----------|"
    );
    CONN_SWEEP
        .iter()
        .map(|&connections| {
            let off = run_cell(connections, false);
            let mut on = run_cell(connections, true);
            let overhead_pct = 100.0 * (off.throughput() - on.throughput()) / off.throughput();
            let cert = on.cert.take().expect("live cell fetched a cert");
            let row = Row {
                connections,
                committed: on.committed,
                tput_off: off.throughput(),
                tput_on: on.throughput(),
                overhead_pct,
                cert_ok: cert.ok,
                watermark: cert.watermark,
                resident_nodes: cert.nodes,
                resident_edges: cert.edges,
            };
            println!(
                "| {:5} | {:9} | {:12.1} | {:12.1} | {:8.2} | {:9} | {:9} |",
                row.connections,
                row.committed,
                row.tput_off,
                row.tput_on,
                row.overhead_pct,
                row.watermark,
                row.resident_nodes,
            );
            assert!(row.committed > 0, "live cell committed nothing");
            row
        })
        .collect()
}

struct Soak {
    secs: f64,
    waves: u64,
    tops_total: u64,
    processed: u64,
    max_nodes: u64,
    max_edges: u64,
    watermark_start: u64,
    watermark_end: u64,
}

/// One persistent live-certify server under repeated load waves, the
/// `CERT` document sampled after each: the watermark must only advance
/// and the resident graph must stay far below the total work processed.
fn run_soak(soak_secs: u64) -> Soak {
    let server = NetServer::bind(ServerConfig {
        live_certify: true,
        capacity: SOAK_CAPACITY,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.serve();
    let deadline = Instant::now() + Duration::from_secs(soak_secs);
    let start = Instant::now();
    let mut s = Soak {
        secs: 0.0,
        waves: 0,
        tops_total: 0,
        processed: 0,
        max_nodes: 0,
        max_edges: 0,
        watermark_start: 0,
        watermark_end: 0,
    };
    let mut last_watermark = 0u64;
    // The between-wave samples below see a quiescent, fully pruned graph;
    // a concurrent sampler catches the resident graph mid-load, where the
    // GC ceiling actually shows.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let sampler = {
        let stop = std::sync::Arc::clone(&stop);
        let addr = addr.clone();
        std::thread::spawn(move || {
            let load = sweep_load(1);
            let mut max = (0u64, 0u64);
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let cert = fetch_cert(&addr, &load);
                max.0 = max.0.max(cert.nodes);
                max.1 = max.1.max(cert.edges);
                std::thread::sleep(Duration::from_millis(20));
            }
            max
        })
    };
    // Every wire request registers at most one transaction, so cumulative
    // requests bound arena consumption; stop at 3/4 before exhaustion.
    let request_budget = (SOAK_CAPACITY as u64 / 4) * 3;
    let mut requests_total = 0u64;
    while Instant::now() < deadline {
        if requests_total >= request_budget {
            println!(
                "soak: stopping after {} waves — arena request budget spent ({requests_total})",
                s.waves
            );
            break;
        }
        let load = LoadConfig {
            seed: 1000 + s.waves,
            ..sweep_load(4)
        };
        let report = run_load(&addr, &load).expect("soak wave runs");
        s.waves += 1;
        s.tops_total += report.committed_tops;
        requests_total += report.requests;
        let cert = fetch_cert(&addr, &load);
        assert!(
            cert.ok,
            "soak wave {}: live certifier found a cycle",
            s.waves
        );
        assert!(
            cert.watermark >= last_watermark,
            "soak wave {}: watermark regressed {} -> {}",
            s.waves,
            last_watermark,
            cert.watermark
        );
        if s.waves == 1 {
            s.watermark_start = cert.watermark;
        }
        last_watermark = cert.watermark;
        s.watermark_end = cert.watermark;
        s.processed = cert.processed;
        s.max_nodes = s.max_nodes.max(cert.nodes);
        s.max_edges = s.max_edges.max(cert.edges);
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let (mid_nodes, mid_edges) = sampler.join().expect("sampler thread");
    s.max_nodes = s.max_nodes.max(mid_nodes);
    s.max_edges = s.max_edges.max(mid_edges);
    handle.wait();
    s.secs = start.elapsed().as_secs_f64();
    assert!(s.waves >= 2, "soak too short to observe watermark movement");
    assert!(
        s.watermark_end > s.watermark_start,
        "watermark never advanced across the soak"
    );
    assert!(
        s.max_nodes < s.tops_total,
        "resident graph ({} nodes) grew to the total top count ({}) — GC is not pruning",
        s.max_nodes,
        s.tops_total
    );
    println!(
        "soak: {:.1}s, {} waves, {} tops, processed {}, max resident {} nodes / {} edges, watermark {} -> {}",
        s.secs,
        s.waves,
        s.tops_total,
        s.processed,
        s.max_nodes,
        s.max_edges,
        s.watermark_start,
        s.watermark_end
    );
    s
}

fn smoke() {
    // The CI gate: one 4-connection live cell; the CERT verdict must be
    // ok with an advanced watermark and a pruned resident graph.
    let server = NetServer::bind(ServerConfig {
        live_certify: true,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.serve();
    let load = LoadConfig {
        tops_per_conn: 8,
        ..sweep_load(4)
    };
    let report = run_load(&addr, &load).expect("load runs");
    let cert = fetch_cert(&addr, &load);
    handle.wait();
    SmokeLine::new("sgt-bench-smoke")
        .num("committed_tops", report.committed_tops)
        .bool("cert_ok", cert.ok)
        .num("watermark", cert.watermark)
        .num("processed", cert.processed)
        .num("resident_nodes", cert.nodes)
        .num("resident_edges", cert.edges)
        .emit();
    assert!(cert.ok, "sgt smoke: live certifier found a cycle");
    assert!(cert.watermark > 0, "sgt smoke: watermark never advanced");
    assert!(report.committed_tops > 0, "sgt smoke committed nothing");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let mut soak_secs = DEFAULT_SOAK_SECS;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--soak-secs" => {
                soak_secs = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("usage: sgt_bench [--smoke] [--soak-secs SECS]");
                i += 2;
            }
            other => {
                panic!("unknown argument {other:?} (usage: sgt_bench [--smoke] [--soak-secs SECS])")
            }
        }
    }
    let rows = run_sweep();
    let soak = run_soak(soak_secs);
    let mut doc = JsonObj::new();
    doc.str("benchmark", "sgt_bench")
        .num(
            "host_cores",
            std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        )
        .num("total_tops", TOTAL_TOPS as u64)
        .raw(
            "rows",
            format!(
                "[{}]",
                rows.iter().map(Row::to_json).collect::<Vec<_>>().join(",")
            ),
        );
    let mut s = JsonObj::new();
    s.float("secs", soak.secs)
        .num("waves", soak.waves)
        .num("tops_total", soak.tops_total)
        .num("processed", soak.processed)
        .num("max_resident_nodes", soak.max_nodes)
        .num("max_resident_edges", soak.max_edges)
        .num("watermark_start", soak.watermark_start)
        .num("watermark_end", soak.watermark_end);
    doc.raw("soak", s.build());
    std::fs::write("BENCH_sgt.json", doc.build()).expect("write BENCH_sgt.json");
    eprintln!("wrote BENCH_sgt.json ({} cells + soak)", rows.len());
}
