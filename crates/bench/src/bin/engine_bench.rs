//! Throughput harness for the threaded engine (`nt-engine`), experiment
//! E15.
//!
//! Sweeps worker-thread counts over two read/write workloads:
//!
//! * **partitioned** — the keyspace is split into disjoint partitions and
//!   top-level transactions are striped across them
//!   (`WorkloadSpec::object_partitions`), so conflicts are rare and
//!   scaling is limited mostly by the engine itself;
//! * **contended** — few objects plus a hotspot, so transactions conflict,
//!   block, deadlock, and retry.
//!
//! Accesses carry a simulated storage latency (`access_latency_us`),
//! making the workload latency-bound: throughput scales with threads when
//! the engine overlaps access latency across workers — a meaningful
//! measurement even on a single hardware core (this is the I/O-bound
//! regime real lock managers live in; CPU-bound scaling would additionally
//! need physical cores).
//!
//! Every run's recorded history is certified against Theorem 17 post-hoc;
//! a run that fails certification fails the whole harness. Results land in
//! `BENCH_engine.json`.
//!
//! ```sh
//! cargo run --release -p nt-bench --bin engine_bench            # sweep
//! cargo run --release -p nt-bench --bin engine_bench -- --smoke # CI gate
//! ```

use nt_engine::{run_workload, EngineConfig, EngineReport};
use nt_obs::json::JsonObj;
use nt_sim::{Workload, WorkloadSpec};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn partitioned_spec() -> WorkloadSpec {
    WorkloadSpec {
        top_level: 32,
        objects: 32,
        object_partitions: 8,
        retry_attempts: 1,
        seed: 15,
        ..WorkloadSpec::default()
    }
}

fn contended_spec() -> WorkloadSpec {
    WorkloadSpec {
        top_level: 16,
        objects: 4,
        hotspot: 0.6,
        retry_attempts: 2,
        seed: 15,
        ..WorkloadSpec::default()
    }
}

fn preset(name: &str) -> EngineConfig {
    EngineConfig::presets()
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("preset {name} exists"))
        .1
}

struct Row {
    workload: &'static str,
    threads: usize,
    report: EngineReport,
    certified: bool,
    sg_nodes: usize,
    sg_edges: usize,
}

impl Row {
    fn throughput(&self) -> f64 {
        self.report.committed_top as f64 / self.report.wall.as_secs_f64()
    }

    fn to_json(&self) -> String {
        let (p50, p95, p99) = self.report.top_latency.p50_p95_p99();
        let mut o = JsonObj::new();
        o.str("workload", self.workload)
            .num("threads", self.threads as u64)
            .float("wall_ms", self.report.wall.as_secs_f64() * 1e3)
            .num("committed_top", self.report.committed_top as u64)
            .num("aborted_top", self.report.aborted_top as u64)
            .num("deadlock_victims", self.report.victims.len() as u64)
            .num("lock_grants", self.report.stats.granted)
            .num("lock_blocks", self.report.stats.blocked)
            .num("timeout_rescues", self.report.stats.timeout_rescues)
            .float("throughput_tps", self.throughput())
            .num("top_us_p50", p50)
            .num("top_us_p95", p95)
            .num("top_us_p99", p99)
            .bool("certified", self.certified)
            .num("sg_nodes", self.sg_nodes as u64)
            .num("sg_edges", self.sg_edges as u64);
        o.build()
    }
}

fn run_cell(workload: &'static str, w: &Workload, cfg: &EngineConfig) -> Row {
    let report = run_workload(w, cfg).expect("engine run");
    let cert = report.certify();
    let row = Row {
        workload,
        threads: cfg.threads,
        certified: cert.is_serially_correct(),
        sg_nodes: cert.sg_nodes,
        sg_edges: cert.sg_edges,
        report,
    };
    let (p50, p95, _) = row.report.top_latency.p50_p95_p99();
    println!(
        "| {:11} | {:7} | {:8.1} | {:9} | {:7} | {:7} | {:10.1} | {:7} | {:7} | {:9} |",
        row.workload,
        row.threads,
        row.report.wall.as_secs_f64() * 1e3,
        row.report.committed_top,
        row.report.aborted_top,
        row.report.victims.len(),
        row.throughput(),
        p50,
        p95,
        if row.certified { "acyclic" } else { "FAILED" },
    );
    assert!(
        row.certified,
        "{workload}@{} threads: recorded history failed certification: {}",
        cfg.threads,
        cert.verdict.name()
    );
    row
}

fn smoke() {
    // The CI gate: one 4-thread contended run, certified, exit 0. Output
    // is one machine-readable JSON line (shared shape with net_bench and
    // nt-load smokes).
    let w = contended_spec().generate();
    let cfg = EngineConfig {
        access_latency_us: 100,
        ..preset("ci-smoke")
    };
    let report = run_workload(&w, &cfg).expect("engine smoke run");
    let cert = report.certify();
    nt_bench::SmokeLine::new("engine-smoke")
        .num("committed_top", report.committed_top as u64)
        .num("aborted_top", report.aborted_top as u64)
        .num("victims", report.victims.len() as u64)
        .num("actions", report.history.len() as u64)
        .num("sg_nodes", cert.sg_nodes as u64)
        .num("sg_edges", cert.sg_edges as u64)
        .percentiles("top_us", &report.top_latency)
        .bool("serially_correct", cert.is_serially_correct())
        .emit();
    assert!(!report.gave_up, "engine smoke run hit the watchdog");
    assert!(
        cert.is_serially_correct(),
        "engine smoke run failed SGT certification"
    );
    assert!(
        report.committed_top > 0,
        "engine smoke run committed nothing"
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    println!(
        "| {:11} | {:7} | {:8} | {:9} | {:7} | {:7} | {:10} | {:7} | {:7} | {:9} |",
        "workload",
        "threads",
        "wall_ms",
        "committed",
        "aborted",
        "victims",
        "tput_tps",
        "p50_us",
        "p95_us",
        "SGT"
    );
    println!("|-------------|---------|----------|-----------|---------|---------|------------|---------|---------|-----------|");
    let mut rows: Vec<Row> = Vec::new();
    let partitioned = partitioned_spec().generate();
    for &threads in &THREAD_SWEEP {
        let cfg = EngineConfig {
            threads,
            ..preset("bench-partitioned")
        };
        rows.push(run_cell("partitioned", &partitioned, &cfg));
    }
    let contended = contended_spec().generate();
    for &threads in &THREAD_SWEEP {
        let cfg = EngineConfig {
            threads,
            ..preset("bench-contended")
        };
        rows.push(run_cell("contended", &contended, &cfg));
    }
    let tput = |workload: &str, threads: usize| {
        rows.iter()
            .find(|r| r.workload == workload && r.threads == threads)
            .expect("cell ran")
            .throughput()
    };
    let scaling = tput("partitioned", 4) / tput("partitioned", 1);
    println!("\npartitioned scaling 1→4 threads: {scaling:.2}x");
    let mut doc = JsonObj::new();
    doc.str("benchmark", "engine_bench")
        .num(
            "host_cores",
            std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        )
        .float("partitioned_scaling_1_to_4", scaling)
        .raw(
            "rows",
            format!(
                "[{}]",
                rows.iter().map(Row::to_json).collect::<Vec<_>>().join(",")
            ),
        );
    std::fs::write("BENCH_engine.json", doc.build()).expect("write BENCH_engine.json");
    eprintln!("wrote BENCH_engine.json ({} cells)", rows.len());
    assert!(
        scaling >= 2.0,
        "partitioned workload must scale ≥2x from 1 to 4 threads (got {scaling:.2}x)"
    );
}
