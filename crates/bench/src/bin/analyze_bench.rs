//! Precision harness for the static serializability analyzer
//! (`nt-lint`'s `analyze` pass), experiment E17.
//!
//! Sweeps a corpus of workload shapes — partitioned, hotspot-contended,
//! nested-parallel, nested-sequential, plus the planted-cycle golden
//! plan — through the potential conflict graph analysis, then measures
//! both sides of the analyzer's contract:
//!
//! * **soundness** — every plan certified "statically serializable under
//!   all schedules" is run on the multi-threaded engine and its recorded
//!   history must certify with zero Theorem 17 violations;
//! * **precision** — every flagged potential-cycle witness is handed to
//!   the witness-validation harness, which synthesizes a concrete
//!   schedule from the witness's orientation constraints and reports
//!   whether the Theorem 8/19 checker judges it cyclic (a *reproduced*
//!   witness is a true positive, not an artifact of over-approximation).
//!
//! Results land in `BENCH_analyze.json`.
//!
//! ```sh
//! cargo run --release -p nt-bench --bin analyze_bench            # sweep
//! cargo run --release -p nt-bench --bin analyze_bench -- --smoke # CI gate
//! ```

use nt_bench::SmokeLine;
use nt_engine::{run_plan, EngineConfig, EnginePlan};
use nt_lint::analyze::{analyze, validate_witness};
use nt_lint::{selftest, StaticPlan};
use nt_obs::json::JsonObj;
use nt_sim::WorkloadSpec;

/// One corpus group: a workload shape swept over several seeds.
struct Group {
    name: &'static str,
    specs: Vec<WorkloadSpec>,
    planted: Vec<StaticPlan>,
}

fn corpus() -> Vec<Group> {
    let seeds = 0..6u64;
    vec![
        Group {
            name: "flat-partitioned",
            specs: seeds
                .clone()
                .map(|seed| WorkloadSpec {
                    objects: 8,
                    top_level: 8,
                    max_depth: 0,
                    subtx_prob: 0.0,
                    object_partitions: 8,
                    seed,
                    ..WorkloadSpec::default()
                })
                .collect(),
            planted: Vec::new(),
        },
        Group {
            name: "flat-hotspot",
            specs: seeds
                .clone()
                .map(|seed| WorkloadSpec {
                    objects: 4,
                    top_level: 6,
                    max_depth: 0,
                    subtx_prob: 0.0,
                    hotspot: 0.8,
                    seed,
                    ..WorkloadSpec::default()
                })
                .collect(),
            planted: Vec::new(),
        },
        Group {
            name: "nested-parallel",
            specs: seeds
                .clone()
                .map(|seed| WorkloadSpec {
                    objects: 6,
                    top_level: 6,
                    max_depth: 2,
                    subtx_prob: 0.6,
                    sequential_prob: 0.0,
                    seed,
                    ..WorkloadSpec::default()
                })
                .collect(),
            planted: Vec::new(),
        },
        Group {
            name: "nested-sequential",
            specs: seeds
                .map(|seed| WorkloadSpec {
                    objects: 6,
                    top_level: 6,
                    max_depth: 2,
                    subtx_prob: 0.6,
                    sequential_prob: 1.0,
                    seed,
                    ..WorkloadSpec::default()
                })
                .collect(),
            planted: Vec::new(),
        },
        Group {
            name: "planted",
            specs: Vec::new(),
            planted: vec![selftest::planted_cycle_plan()],
        },
    ]
}

#[derive(Default)]
struct Row {
    name: &'static str,
    plans: usize,
    certified: usize,
    flagged: usize,
    witnesses: usize,
    realizable: usize,
    reproduced: usize,
    confirmed_plans: usize,
    engine_runs: usize,
    engine_violations: usize,
}

impl Row {
    fn precision(&self) -> f64 {
        if self.witnesses == 0 {
            1.0
        } else {
            self.reproduced as f64 / self.witnesses as f64
        }
    }

    fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("group", self.name)
            .num("plans", self.plans as u64)
            .num("certified", self.certified as u64)
            .num("flagged", self.flagged as u64)
            .num("witnesses", self.witnesses as u64)
            .num("realizable", self.realizable as u64)
            .num("reproduced", self.reproduced as u64)
            .num("confirmed_plans", self.confirmed_plans as u64)
            .float("witness_precision", self.precision())
            .num("engine_runs", self.engine_runs as u64)
            .num("engine_violations", self.engine_violations as u64);
        o.build()
    }
}

/// Analyze one plan, validating witnesses when flagged and engine-running
/// when certified (only possible for plans backed by a workload).
fn measure(row: &mut Row, sp: &StaticPlan, engine_plan: Option<&EnginePlan>) {
    row.plans += 1;
    let a = analyze(sp);
    if a.certified() {
        row.certified += 1;
        if let Some(plan) = engine_plan {
            let cfg = EngineConfig {
                threads: 8,
                ..EngineConfig::default()
            };
            let report = run_plan(plan, &cfg).expect("engine run");
            row.engine_runs += 1;
            row.engine_violations += report.certify().violations;
        }
        return;
    }
    row.flagged += 1;
    let mut any = false;
    for w in &a.witnesses {
        row.witnesses += 1;
        let v = validate_witness(sp, w);
        if v.realizable {
            row.realizable += 1;
        }
        if v.reproduced {
            row.reproduced += 1;
            any = true;
        }
    }
    if any {
        row.confirmed_plans += 1;
    }
}

fn run_group(g: &Group) -> Row {
    let mut row = Row {
        name: g.name,
        ..Row::default()
    };
    for spec in &g.specs {
        let w = spec.generate();
        let sp = StaticPlan::from_workload(g.name, &w);
        let ep = EnginePlan::from_workload(&w);
        measure(&mut row, &sp, Some(&ep));
    }
    for sp in &g.planted {
        measure(&mut row, sp, None);
    }
    println!(
        "| {:17} | {:5} | {:9} | {:7} | {:9} | {:10} | {:10} | {:9.2} | {:11} |",
        row.name,
        row.plans,
        row.certified,
        row.flagged,
        row.witnesses,
        row.realizable,
        row.reproduced,
        row.precision(),
        row.engine_violations,
    );
    row
}

fn smoke() {
    // The CI gate: the planted plan must be flagged and reproduce, and
    // one partitioned workload must certify and stay engine-sound.
    let planted = selftest::planted_cycle_plan();
    let a = analyze(&planted);
    assert!(!a.certified(), "planted cycle must be flagged");
    let v = validate_witness(&planted, &a.witnesses[0]);
    assert!(
        v.reproduced,
        "planted witness must reproduce (got {})",
        v.verdict
    );

    let spec = WorkloadSpec {
        objects: 8,
        top_level: 8,
        max_depth: 0,
        subtx_prob: 0.0,
        object_partitions: 8,
        seed: 1,
        ..WorkloadSpec::default()
    };
    let w = spec.generate();
    let sp = StaticPlan::from_workload("smoke", &w);
    assert!(analyze(&sp).certified(), "partitioned plan must certify");
    let report = run_plan(
        &EnginePlan::from_workload(&w),
        &EngineConfig {
            threads: 8,
            ..EngineConfig::default()
        },
    )
    .expect("engine run");
    let cert = report.certify();
    SmokeLine::new("analyze-bench-smoke")
        .num("planted_witnesses", a.witnesses.len() as u64)
        .bool("planted_reproduced", v.reproduced)
        .bool("certified_sound", cert.violations == 0)
        .emit();
    assert_eq!(
        cert.violations, 0,
        "certified plan failed engine certification"
    );
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    println!(
        "| {:17} | {:5} | {:9} | {:7} | {:9} | {:10} | {:10} | {:9} | {:11} |",
        "group",
        "plans",
        "certified",
        "flagged",
        "witnesses",
        "realizable",
        "reproduced",
        "precision",
        "engine_viol"
    );
    println!(
        "|-------------------|-------|-----------|---------|-----------|------------|------------|-----------|-------------|"
    );
    let rows: Vec<Row> = corpus().iter().map(run_group).collect();
    let witnesses: usize = rows.iter().map(|r| r.witnesses).sum();
    let reproduced: usize = rows.iter().map(|r| r.reproduced).sum();
    let overall = if witnesses == 0 {
        1.0
    } else {
        reproduced as f64 / witnesses as f64
    };
    let mut doc = JsonObj::new();
    doc.str("benchmark", "analyze_bench")
        .num(
            "host_cores",
            std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        )
        .num("witnesses", witnesses as u64)
        .num("reproduced", reproduced as u64)
        .float("overall_witness_precision", overall)
        .raw(
            "rows",
            format!(
                "[{}]",
                rows.iter().map(Row::to_json).collect::<Vec<_>>().join(",")
            ),
        );
    std::fs::write("BENCH_analyze.json", doc.build()).expect("write BENCH_analyze.json");
    eprintln!("wrote BENCH_analyze.json ({} groups)", rows.len());

    // The analyzer's contract, enforced over the whole corpus.
    assert!(
        rows.iter().all(|r| r.engine_violations == 0),
        "a certified plan produced a non-serializable engine run"
    );
    let planted = rows.iter().find(|r| r.name == "planted").expect("group");
    assert!(
        planted.flagged == planted.plans && planted.reproduced >= 1,
        "the planted cycle must be flagged and reproduce"
    );
    assert!(
        rows.iter()
            .find(|r| r.name == "flat-partitioned")
            .expect("group")
            .certified
            > 0,
        "partitioned workloads must produce certified plans"
    );
}
