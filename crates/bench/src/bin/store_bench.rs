//! Durability-cost harness for the WAL-backed store (`nt-store`),
//! experiment E19.
//!
//! Sweeps the server's [`DurabilityMode`] — no durability wait, fsync
//! before every mutating ack, and group commit at two windows — over
//! the *same* contended closed-loop workload on a fresh data directory
//! per cell, so the only variable is where the ack barrier sits. Each
//! cell records with runtime telemetry enabled: the durability wait is
//! attributed by phase histogram — `log_wait` on the threaded front end
//! (one barrier per mutating ack) or `coalesce` on the reactor front
//! end (one barrier per reply flush, covering the whole burst) — and
//! the server's WAL counters report the fsync amortization
//! (`syncs / committed top`). Every cell's history
//! is fetched and certified (Theorem 17) and every cell's data dir is
//! reopened afterward to prove the recovery path certifies what the
//! load left behind. Results land in `BENCH_store.json`.
//!
//! ```sh
//! cargo run --release -p nt-bench --bin store_bench            # sweep
//! cargo run --release -p nt-bench --bin store_bench -- --smoke # CI gate
//! ```

use nt_bench::SmokeLine;
use nt_engine::DurabilityMode;
use nt_net::{fetch_and_certify, run_load, ConnConfig, LoadConfig, NetServer, ServerConfig};
use nt_obs::json::{Json, JsonObj};
use std::path::PathBuf;

const TOTAL_TOPS: usize = 64;
const CONNECTIONS: usize = 4;

fn modes() -> Vec<(String, DurabilityMode)> {
    vec![
        ("none".to_string(), DurabilityMode::None),
        ("fsync".to_string(), DurabilityMode::FsyncPerCommit),
        (
            "group:100".to_string(),
            DurabilityMode::GroupCommit { window_us: 100 },
        ),
        (
            "group:500".to_string(),
            DurabilityMode::GroupCommit { window_us: 500 },
        ),
    ]
}

fn sweep_load() -> LoadConfig {
    LoadConfig {
        connections: CONNECTIONS,
        tops_per_conn: TOTAL_TOPS / CONNECTIONS,
        objects: 6,
        hotspot: 0.5,
        read_ratio: 0.5,
        max_depth: 2,
        seed: 19,
        ..LoadConfig::default()
    }
}

struct Row {
    mode: String,
    committed: u64,
    requests: u64,
    wall_us: u64,
    wal_appends: u64,
    wal_syncs: u64,
    log_wait_mean_us: f64,
    log_wait_p95_us: u64,
    coalesce_mean_us: f64,
    coalesce_p95_us: u64,
    req_p50_us: u64,
    req_p95_us: u64,
    req_p99_us: u64,
    certified: bool,
    reopen_certified: bool,
    reopen_history_len: u64,
}

impl Row {
    fn throughput(&self) -> f64 {
        self.committed as f64 / (self.wall_us as f64 / 1e6)
    }

    fn syncs_per_commit(&self) -> f64 {
        self.wal_syncs as f64 / self.committed.max(1) as f64
    }

    fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("mode", &self.mode)
            .float("wall_ms", self.wall_us as f64 / 1e3)
            .num("committed_tops", self.committed)
            .num("requests", self.requests)
            .float("throughput_tps", self.throughput())
            .num("wal_appends", self.wal_appends)
            .num("wal_syncs", self.wal_syncs)
            .float("syncs_per_commit", self.syncs_per_commit())
            .float("log_wait_mean_us", self.log_wait_mean_us)
            .num("log_wait_p95_us", self.log_wait_p95_us)
            .float("coalesce_mean_us", self.coalesce_mean_us)
            .num("coalesce_p95_us", self.coalesce_p95_us)
            .num("request_us_p50", self.req_p50_us)
            .num("request_us_p95", self.req_p95_us)
            .num("request_us_p99", self.req_p99_us)
            .bool("certified", self.certified)
            .bool("reopen_certified", self.reopen_certified)
            .num("reopen_history_len", self.reopen_history_len);
        o.build()
    }
}

fn num(v: &Json, path: &[&str]) -> f64 {
    let mut cur = v.clone();
    for k in path {
        cur = cur.get(k).cloned().unwrap_or(Json::Null);
    }
    cur.as_num().unwrap_or(0.0)
}

/// Run one durability cell on a fresh data dir, then reopen the dir
/// through the recovery path to prove what the run left is certifiable.
fn run_cell(tag: &str, mode: DurabilityMode, dir: &PathBuf) -> Row {
    let _ = std::fs::remove_dir_all(dir);
    let cfg = ServerConfig {
        data_dir: Some(dir.to_string_lossy().into_owned()),
        durability: mode,
        telemetry: true,
        ..ServerConfig::default()
    };
    let server = NetServer::bind(cfg).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.serve();
    let probe = handle.probe();
    let load = sweep_load();
    let report = run_load(&addr, &load).expect("load runs");
    let cert = fetch_and_certify(&addr, ConnConfig::from(&load)).expect("history certifies");
    let stats = Json::parse(&probe.stats_json()).expect("stats parse");
    let tele = Json::parse(&probe.telemetry().to_json()).expect("telemetry parse");
    handle.wait();

    // Reopen through recovery: the drained dir must come back certified
    // with the whole history intact.
    let reopen = NetServer::bind(ServerConfig {
        data_dir: Some(dir.to_string_lossy().into_owned()),
        durability: DurabilityMode::None,
        ..ServerConfig::default()
    })
    .expect("reopen data dir");
    let rep = reopen.recovery_report().expect("store mounted");
    let (reopen_certified, reopen_history_len) = (rep.certified, rep.history_len as u64);
    reopen.serve().wait();

    let row = Row {
        mode: tag.to_string(),
        committed: report.committed_tops,
        requests: report.requests,
        wall_us: report.wall_us,
        wal_appends: num(&stats, &["wal_appended"]) as u64,
        wal_syncs: num(&stats, &["wal_syncs"]) as u64,
        log_wait_mean_us: num(&tele, &["phases", "log_wait", "mean_us"]),
        log_wait_p95_us: num(&tele, &["phases", "log_wait", "p95_us"]) as u64,
        coalesce_mean_us: num(&tele, &["phases", "coalesce", "mean_us"]),
        coalesce_p95_us: num(&tele, &["phases", "coalesce", "p95_us"]) as u64,
        req_p50_us: report.req_hist.p50_p95_p99().0,
        req_p95_us: report.req_hist.p50_p95_p99().1,
        req_p99_us: report.req_hist.p50_p95_p99().2,
        certified: cert.is_serially_correct(),
        reopen_certified,
        reopen_history_len,
    };
    println!(
        "| {:9} | {:8.1} | {:9} | {:10.1} | {:9} | {:8.2} | {:12.1} | {:7} | {:9} |",
        row.mode,
        row.wall_us as f64 / 1e3,
        row.committed,
        row.throughput(),
        row.wal_syncs,
        row.syncs_per_commit(),
        row.log_wait_mean_us.max(row.coalesce_mean_us),
        row.req_p95_us,
        if row.certified && row.reopen_certified {
            "acyclic"
        } else {
            "FAILED"
        },
    );
    assert!(row.certified, "{tag}: live history failed certification");
    assert!(
        row.reopen_certified,
        "{tag}: recovery re-certification failed"
    );
    let _ = std::fs::remove_dir_all(dir);
    row
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nt-store-bench-{}-{name}", std::process::id()))
}

fn smoke() {
    // The CI gate: one fsync cell plus its recovery reopen, exit 0.
    let dir = scratch("smoke");
    let row = run_cell("fsync", DurabilityMode::FsyncPerCommit, &dir);
    SmokeLine::new("store-bench-smoke")
        .str("mode", &row.mode)
        .num("committed_tops", row.committed)
        .num("wal_appends", row.wal_appends)
        .num("wal_syncs", row.wal_syncs)
        .num("reopen_history_len", row.reopen_history_len)
        .bool("serially_correct", row.certified)
        .bool("reopen_certified", row.reopen_certified)
        .emit();
    assert!(row.committed > 0, "store smoke committed nothing");
    assert!(row.wal_syncs > 0, "fsync mode must have synced");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    println!(
        "| {:9} | {:8} | {:9} | {:10} | {:9} | {:8} | {:12} | {:7} | {:9} |",
        "mode",
        "wall_ms",
        "committed",
        "tput_tps",
        "wal_sync",
        "sync/ct",
        "barrier_us",
        "p95_us",
        "SGT"
    );
    println!(
        "|-----------|----------|-----------|------------|-----------|----------|--------------|---------|-----------|"
    );
    let rows: Vec<Row> = modes()
        .iter()
        .map(|(tag, mode)| run_cell(tag, *mode, &scratch(tag)))
        .collect();
    let mut doc = JsonObj::new();
    doc.str("benchmark", "store_bench")
        .num(
            "host_cores",
            std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        )
        .num("total_tops", TOTAL_TOPS as u64)
        .num("connections", CONNECTIONS as u64)
        .raw(
            "rows",
            format!(
                "[{}]",
                rows.iter().map(Row::to_json).collect::<Vec<_>>().join(",")
            ),
        );
    std::fs::write("BENCH_store.json", doc.build()).expect("write BENCH_store.json");
    eprintln!("wrote BENCH_store.json ({} cells)", rows.len());
    assert!(
        rows.iter().all(|r| r.committed > 0),
        "every cell must commit work"
    );
}
