//! Telemetry harness for the traced networked server (`nt-telemetry` +
//! `nt-net`), experiment E18.
//!
//! Two questions, both measured:
//!
//! 1. **Attribution** — rerun the E16 connection sweep with runtime
//!    telemetry enabled and decompose each request's latency into the
//!    server's phase stamps (decode→enqueue, queue wait, execute with
//!    its lock-wait share, respond). The server-side span plus one
//!    measured loopback `PING` round-trip (the wire + framing time the
//!    span cannot see) must account for ≥ 90% of the mean client-side
//!    request latency — otherwise the trace is lying about where time
//!    goes.
//! 2. **Overhead** — a paired, repeated, uncontended cell (median of 5
//!    runs each way) measures what *full tracing* costs in the
//!    worst-case CPU-bound regime, where requests are microseconds and
//!    every probe site fires. The number is reported, bounded by a
//!    sanity cap, and broken down to a per-request cost. The separate
//!    ≤3% claim for the telemetry-*disabled* default path is measured
//!    against the untraced baseline by regenerating `BENCH_engine.json`
//!    and comparing the latency-bound E15 cells against the
//!    pre-telemetry table (EXPERIMENTS.md E18).
//!
//! Every traced cell's history is still fetched over the wire and
//! certified against Theorem 17 post-hoc. Results land in
//! `BENCH_telemetry.json`.
//!
//! ```sh
//! cargo run --release -p nt-bench --bin telemetry_bench   # ~20 s
//! ```

use nt_net::{run_load, Conn, ConnConfig, LoadConfig, NetServer, Request, Response, ServerConfig};
use nt_obs::json::JsonObj;
use nt_telemetry::ReqSpan;
use std::time::Instant;

const CONN_SWEEP: [usize; 4] = [1, 2, 4, 8];
const TOTAL_TOPS: usize = 64;
const PINGS: u32 = 64;
const OVERHEAD_REPEATS: usize = 5;
const OVERHEAD_CONNS: usize = 2;
const OVERHEAD_TOPS_PER_CONN: usize = 256;

/// The E16 sweep cell, byte-for-byte: same spec, same seed, total work
/// held constant so cells are comparable with `BENCH_net.json`.
fn sweep_load(connections: usize) -> LoadConfig {
    LoadConfig {
        connections,
        tops_per_conn: TOTAL_TOPS / connections,
        objects: 6,
        hotspot: 0.5,
        read_ratio: 0.5,
        max_depth: 2,
        seed: 16,
        ..LoadConfig::default()
    }
}

fn mean<F: Fn(&ReqSpan) -> u64>(spans: &[ReqSpan], f: F) -> f64 {
    if spans.is_empty() {
        return 0.0;
    }
    spans.iter().map(|s| f(s) as f64).sum::<f64>() / spans.len() as f64
}

struct PhaseRow {
    connections: usize,
    spans: usize,
    decode_enqueue_us: f64,
    queue_wait_us: f64,
    execute_us: f64,
    lock_wait_us: f64,
    respond_us: f64,
    span_total_us: f64,
    ping_rtt_us: f64,
    client_req_us: f64,
}

impl PhaseRow {
    /// Fraction of the mean client-observed request latency the server
    /// span plus one measured wire round-trip explains.
    fn coverage(&self) -> f64 {
        (self.span_total_us + self.ping_rtt_us) / self.client_req_us
    }

    fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.num("connections", self.connections as u64)
            .num("spans", self.spans as u64)
            .float("decode_enqueue_us", self.decode_enqueue_us)
            .float("queue_wait_us", self.queue_wait_us)
            .float("execute_us", self.execute_us)
            .float("lock_wait_us", self.lock_wait_us)
            .float("respond_us", self.respond_us)
            .float("span_total_us", self.span_total_us)
            .float("ping_rtt_us", self.ping_rtt_us)
            .float("client_req_us", self.client_req_us)
            .float("coverage", self.coverage());
        o.build()
    }
}

/// Run one traced sweep cell: drive the load, snapshot the span ring,
/// measure the loopback RTT with PINGs, certify the history.
fn run_traced_cell(connections: usize) -> PhaseRow {
    let server = NetServer::bind(ServerConfig {
        telemetry: true,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.serve();
    let probe = handle.probe();
    let load = sweep_load(connections);
    let report = run_load(&addr, &load).expect("load runs");
    // Snapshot the spans the load produced before the PING probe adds
    // its own (tiny) spans to the ring.
    let spans = probe.telemetry().spans();
    assert!(!spans.is_empty(), "traced cell retained no spans");

    // The wire-and-framing floor the server span cannot see: a PING
    // touches no lock and executes in nanoseconds, so its round-trip is
    // almost entirely client encode + loopback + server decode/respond.
    let mut conn = Conn::connect(&addr, 9000, ConnConfig::default()).expect("connect");
    let mut rtt_sum_us = 0.0;
    for _ in 0..PINGS {
        let t = Instant::now();
        assert!(matches!(conn.request(&Request::Ping), Ok(Response::Pong)));
        rtt_sum_us += t.elapsed().as_secs_f64() * 1e6;
    }
    let cert = nt_net::fetch_and_certify(&addr, ConnConfig::from(&load)).expect("history fetched");
    assert!(
        cert.is_serially_correct(),
        "traced cell failed certification"
    );
    conn.shutdown_server().expect("shutdown");
    drop(conn);
    handle.wait();

    let row = PhaseRow {
        connections,
        spans: spans.len(),
        decode_enqueue_us: mean(&spans, ReqSpan::decode_enqueue_us),
        queue_wait_us: mean(&spans, ReqSpan::queue_wait_us),
        execute_us: mean(&spans, ReqSpan::execute_us),
        lock_wait_us: mean(&spans, |s| s.lock_wait_us),
        respond_us: mean(&spans, ReqSpan::respond_us),
        span_total_us: mean(&spans, ReqSpan::total_us),
        ping_rtt_us: rtt_sum_us / f64::from(PINGS),
        client_req_us: report.req_hist.mean(),
    };
    println!(
        "| {:5} | {:5} | {:9.1} | {:8.1} | {:7.1} | {:9.1} | {:7.1} | {:8.1} | {:7.1} | {:9.1} | {:7.2} |",
        row.connections,
        row.spans,
        row.decode_enqueue_us,
        row.queue_wait_us,
        row.execute_us,
        row.lock_wait_us,
        row.respond_us,
        row.span_total_us,
        row.ping_rtt_us,
        row.client_req_us,
        row.coverage(),
    );
    row
}

/// Throughput (committed tops/s) of one cell with telemetry on or off.
fn cell_tps(telemetry: bool) -> f64 {
    let server = NetServer::bind(ServerConfig {
        telemetry,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.serve();
    // Uncontended on purpose: no deadlocks, no backoff sleeps, no retry
    // variance — the paired delta isolates the per-probe telemetry cost
    // instead of the contended workload's scheduling noise.
    let load = LoadConfig {
        tops_per_conn: OVERHEAD_TOPS_PER_CONN,
        objects: 64,
        hotspot: 0.0,
        ..sweep_load(OVERHEAD_CONNS)
    };
    let report = run_load(&addr, &load).expect("load runs");
    let mut conn = Conn::connect(&addr, 9000, ConnConfig::default()).expect("connect");
    conn.shutdown_server().expect("shutdown");
    drop(conn);
    handle.wait();
    assert_eq!(report.gave_up, 0, "overhead cell exhausted retries");
    report.committed_tops as f64 / (report.wall_us as f64 / 1e6)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite tps"));
    xs[xs.len() / 2]
}

fn main() {
    println!("phase attribution (mean µs per request, traced E16 sweep):\n");
    println!(
        "| {:5} | {:5} | {:9} | {:8} | {:7} | {:9} | {:7} | {:8} | {:7} | {:9} | {:7} |",
        "conns",
        "spans",
        "dec_enq",
        "queue",
        "exec",
        "lock_wait",
        "respond",
        "span_tot",
        "ping",
        "client",
        "cover"
    );
    println!("|-------|-------|-----------|----------|---------|-----------|---------|----------|---------|-----------|---------|");
    let rows: Vec<PhaseRow> = CONN_SWEEP.iter().map(|&c| run_traced_cell(c)).collect();
    for r in &rows {
        assert!(
            r.coverage() >= 0.90,
            "{} connections: span + wire RTT explain only {:.0}% of client latency",
            r.connections,
            r.coverage() * 100.0
        );
    }

    // Paired overhead runs, interleaved so drift hits both modes alike.
    let mut disabled = Vec::with_capacity(OVERHEAD_REPEATS);
    let mut enabled = Vec::with_capacity(OVERHEAD_REPEATS);
    for _ in 0..OVERHEAD_REPEATS {
        disabled.push(cell_tps(false));
        enabled.push(cell_tps(true));
    }
    let dis = median(disabled.clone());
    let en = median(enabled.clone());
    let overhead_pct = (dis - en) / dis * 100.0;
    // Per top-level transaction, then per request (~8 requests/top on
    // this spec): the absolute price of one fully traced request.
    let per_top_us = (1e6 / en - 1e6 / dis).max(0.0);
    println!(
        "\nfull-tracing overhead ({OVERHEAD_CONNS}-connection uncontended cell, median of {OVERHEAD_REPEATS}):\n"
    );
    println!("| mode     | tput (tx/s) |");
    println!("|----------|-------------|");
    println!("| disabled | {dis:11.1} |");
    println!("| enabled  | {en:11.1} |");
    println!("\nenabled-tracing cost: {overhead_pct:.2}% ({per_top_us:.2} µs per top)");
    assert!(
        overhead_pct <= 25.0,
        "full-tracing overhead {overhead_pct:.2}% exceeds the 25% sanity cap"
    );

    let mut doc = JsonObj::new();
    doc.str("benchmark", "telemetry_bench")
        .num(
            "host_cores",
            std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        )
        .num("total_tops", TOTAL_TOPS as u64)
        .raw(
            "phase_rows",
            format!(
                "[{}]",
                rows.iter()
                    .map(PhaseRow::to_json)
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        )
        .float("tps_disabled_median", dis)
        .float("tps_enabled_median", en)
        .float("enabled_overhead_pct", overhead_pct)
        .float("enabled_overhead_us_per_top", per_top_us);
    std::fs::write("BENCH_telemetry.json", doc.build()).expect("write BENCH_telemetry.json");
    eprintln!("wrote BENCH_telemetry.json ({} traced cells)", rows.len());
}
