//! Regenerates every experiment table of `EXPERIMENTS.md` (E1–E12, E14;
//! E13 is the static certification run by `nt-lint`).
//!
//! The paper (PODS 1990) is a theory paper with no empirical tables or
//! figures; each experiment makes one of its theorems or claims
//! empirically falsifiable. Run with:
//!
//! ```sh
//! cargo run --release -p nt-bench --bin experiments           # all
//! cargo run --release -p nt-bench --bin experiments -- e5 e6  # subset
//! ```
//!
//! Besides the human-readable markdown tables, a structured snapshot of
//! every table is written to `BENCH_experiments.json` after a run.
//!
//! Observability (see `nt-obs` and DESIGN.md): `--trace-out PATH.jsonl`
//! runs a small traced simulation + check and writes the deterministic
//! event journal there, plus a Chrome `trace_event` export next to it
//! (`PATH.chrome.json`, loadable in `chrome://tracing` / Perfetto). Add
//! `--metrics-out PATH` to also dump the metrics registry as JSON
//! (otherwise a plain-text summary goes to stdout). With no experiment
//! names, `--trace-out` runs only the traced demo.
//!
//! Fault campaigns (see `nt-faults` and E14): `--fault-plan PLAN.json`
//! replays a serialized fault-plan repro card — workload, seeds, and fault
//! schedule all come from the document — checks the run, and fails loudly
//! if the verdict differs from the plan's `expect` field. `--fault-seed N`
//! overrides the fault-stream seed (both for a replayed plan and for the
//! E14 campaign library). With no experiment names, `--fault-plan` runs
//! only the replay.

use nt_bench::{run_and_check, CheckOutcome, Report, Table};
use nt_faults::{minimize, BackoffPolicy, FaultEvent, FaultKind, FaultPlan};
use nt_locking::LockMode;
use nt_model::seq::serial_projection;
use nt_model::TxId;
use nt_sgt::{build_classical_sg, build_sg, check_serial_correctness, ConflictSource, Verdict};
use nt_sim::{run_generic, run_serial, OpMix, Protocol, SimConfig, WorkloadSpec};
use std::time::Instant;

const SEEDS_PER_CELL: u64 = 20;

/// Render a `SimResult::blocked_by_object` breakdown as
/// `"X<i>:<n>/<total>"` for the most-contended object (`"-"` when nothing
/// ever blocked), for the E6/E9 contention columns.
fn hottest_object(blocked: &[u64]) -> String {
    let total: u64 = blocked.iter().sum();
    if total == 0 {
        return "-".to_string();
    }
    let (i, n) = blocked
        .iter()
        .enumerate()
        .max_by_key(|&(_, n)| *n)
        .expect("non-empty when total > 0");
    format!("X{i}:{n}/{total}")
}

fn main() {
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut fault_plan_path: Option<String> = None;
    let mut fault_seed: Option<u64> = None;
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-out" => trace_out = Some(args.next().expect("--trace-out needs a path")),
            "--metrics-out" => metrics_out = Some(args.next().expect("--metrics-out needs a path")),
            "--fault-plan" => {
                fault_plan_path = Some(args.next().expect("--fault-plan needs a path"));
            }
            "--fault-seed" => {
                fault_seed = Some(
                    args.next()
                        .expect("--fault-seed needs a number")
                        .parse()
                        .expect("--fault-seed must be a u64"),
                );
            }
            other => names.push(other.to_string()),
        }
    }
    // `--trace-out` / `--fault-plan` alone mean "just the side task" (fast;
    // used by CI).
    let side_only = (trace_out.is_some() || fault_plan_path.is_some()) && names.is_empty();
    let want = |name: &str| !side_only && (names.is_empty() || names.iter().any(|a| a == name));
    let mut rep = Report::new();
    if want("e1") {
        e1_moss_validation(&mut rep);
    }
    if want("e2") {
        e2_undolog_validation(&mut rep);
    }
    if want("e3") {
        e3_checker_discrimination(&mut rep);
    }
    if want("e4") {
        e4_sufficiency_gap(&mut rep);
    }
    if want("e5") {
        e5_sg_scaling(&mut rep);
    }
    if want("e6") {
        e6_concurrency_benefit(&mut rep);
    }
    if want("e7") {
        e7_rw_vs_exclusive(&mut rep);
    }
    if want("e8") {
        e8_nested_vs_classical(&mut rep);
    }
    if want("e9") {
        e9_commutativity_benefit(&mut rep);
    }
    if want("e10") {
        e10_abort_storm(&mut rep);
    }
    if want("e11") {
        e11_mvto_beyond_sgt(&mut rep);
    }
    if want("e12") {
        e12_certifier(&mut rep);
    }
    if want("e14") {
        e14_fault_campaigns(&mut rep, fault_seed.unwrap_or(29));
    }
    if let Some(path) = &trace_out {
        run_traced_demo(path, metrics_out.as_deref());
    }
    if let Some(path) = &fault_plan_path {
        replay_fault_plan(path, fault_seed);
    }
    if !rep.is_empty() {
        std::fs::write("BENCH_experiments.json", rep.to_json())
            .expect("write BENCH_experiments.json");
        eprintln!("wrote BENCH_experiments.json ({} experiments)", rep.len());
    }
}

/// The traced demo behind `--trace-out`: one small Moss run plus the full
/// checker with every `nt-obs` sink enabled, exported as a schema-validated
/// JSONL journal and a Chrome trace, both re-parsed before being written
/// (the exports gate themselves).
fn run_traced_demo(trace_out: &str, metrics_out: Option<&str>) {
    let trace = nt_obs::Recorder::full();
    nt_obs::install_panic_flight_dump(trace.clone());
    let spec = WorkloadSpec {
        seed: 42,
        top_level: 6,
        objects: 3,
        hotspot: 0.5,
        mix: OpMix::ReadWrite { read_ratio: 0.5 },
        ..WorkloadSpec::default()
    };
    let cfg = SimConfig {
        seed: 42,
        trace: trace.clone(),
        ..SimConfig::default()
    };
    let (r, outcome, _) = run_and_check(&spec, Protocol::Moss(LockMode::ReadWrite), &cfg, true);
    assert!(r.quiescent, "traced demo must quiesce");
    assert_eq!(
        outcome,
        CheckOutcome::Correct,
        "traced demo must check clean"
    );
    let jsonl = trace.journal_jsonl().expect("recorder keeps the journal");
    let events = match nt_obs::schema::validate_journal(&jsonl) {
        Ok(n) => n,
        Err((line, msg)) => panic!("journal schema violation at line {line}: {msg}"),
    };
    std::fs::write(trace_out, &jsonl).expect("write journal");
    let chrome_path = match trace_out.strip_suffix(".jsonl") {
        Some(stem) => format!("{stem}.chrome.json"),
        None => format!("{trace_out}.chrome.json"),
    };
    let chrome = trace
        .chrome_trace_json()
        .expect("recorder keeps the journal");
    nt_obs::json::Json::parse(&chrome).expect("chrome trace must be valid JSON");
    std::fs::write(&chrome_path, &chrome).expect("write chrome trace");
    match metrics_out {
        Some(p) => {
            let mj = trace.metrics_json().expect("recorder keeps metrics");
            nt_obs::json::Json::parse(&mj).expect("metrics must be valid JSON");
            std::fs::write(p, &mj).expect("write metrics");
            println!("metrics -> {p}");
        }
        None => {
            if let Some(m) = trace.metrics_snapshot() {
                println!("{}", m.summary());
            }
        }
    }
    println!("trace: {events} events -> {trace_out} (+ {chrome_path} for chrome://tracing)");
}

/// E1 — Theorem 17: Moss-locking behaviors are serially correct for T0,
/// across workload shapes and fault rates. Paper prediction: 100%.
fn e1_moss_validation(rep: &mut Report) {
    rep.section("e1", "E1 — Theorem 17 validation (Moss read/write locking)");
    let mut t = Table::new(&[
        "depth",
        "objects",
        "read%",
        "abort_p",
        "runs",
        "correct",
        "avg SG edges",
        "victims",
    ]);
    for &(depth, objects, read, abort_p) in &[
        (0u32, 4usize, 0.5f64, 0.0f64),
        (2, 4, 0.5, 0.0),
        (2, 2, 0.2, 0.0),
        (2, 8, 0.8, 0.0),
        (3, 4, 0.5, 0.01),
        (2, 4, 0.5, 0.03),
        (4, 2, 0.3, 0.02),
    ] {
        let mut correct = 0u64;
        let mut edges_total = 0usize;
        let mut victims = 0usize;
        for seed in 0..SEEDS_PER_CELL {
            let spec = WorkloadSpec {
                seed,
                top_level: 8,
                objects,
                max_depth: depth,
                mix: OpMix::ReadWrite { read_ratio: read },
                ..WorkloadSpec::default()
            };
            let cfg = SimConfig {
                seed: seed ^ 0xabcd,
                abort_prob: abort_p,
                ..SimConfig::default()
            };
            let (r, outcome, edges) =
                run_and_check(&spec, Protocol::Moss(LockMode::ReadWrite), &cfg, true);
            if outcome == CheckOutcome::Correct {
                correct += 1;
            }
            edges_total += edges;
            victims += r.deadlock_victims;
        }
        t.row(vec![
            depth.to_string(),
            objects.to_string(),
            format!("{:.0}", read * 100.0),
            format!("{abort_p}"),
            SEEDS_PER_CELL.to_string(),
            format!("{correct}/{SEEDS_PER_CELL}"),
            format!("{:.1}", edges_total as f64 / SEEDS_PER_CELL as f64),
            victims.to_string(),
        ]);
    }
    rep.table(&t);
}

/// E2 — Theorem 25: undo-logging behaviors are serially correct for T0,
/// for all five data types. Paper prediction: 100%.
fn e2_undolog_validation(rep: &mut Report) {
    rep.section(
        "e2",
        "E2 — Theorem 25 validation (undo logging, arbitrary types)",
    );
    let mut t = Table::new(&[
        "type",
        "abort_p",
        "runs",
        "correct",
        "avg SG edges",
        "victims",
    ]);
    for (name, mix) in [
        ("register", OpMix::ReadWrite { read_ratio: 0.5 }),
        ("counter", OpMix::Counter { read_ratio: 0.25 }),
        ("account", OpMix::Account { read_ratio: 0.2 }),
        ("intset", OpMix::IntSet),
        ("queue", OpMix::Queue),
        ("kvmap", OpMix::KvMap),
    ] {
        for &abort_p in &[0.0, 0.02] {
            let mut correct = 0u64;
            let mut edges_total = 0usize;
            let mut victims = 0usize;
            for seed in 0..SEEDS_PER_CELL {
                let spec = WorkloadSpec {
                    seed: seed + 31,
                    mix,
                    top_level: 8,
                    objects: 3,
                    ..WorkloadSpec::default()
                };
                let cfg = SimConfig {
                    seed,
                    abort_prob: abort_p,
                    ..SimConfig::default()
                };
                let (r, outcome, edges) = run_and_check(&spec, Protocol::Undo, &cfg, false);
                if outcome == CheckOutcome::Correct {
                    correct += 1;
                }
                edges_total += edges;
                victims += r.deadlock_victims;
            }
            t.row(vec![
                name.into(),
                format!("{abort_p}"),
                SEEDS_PER_CELL.to_string(),
                format!("{correct}/{SEEDS_PER_CELL}"),
                format!("{:.1}", edges_total as f64 / SEEDS_PER_CELL as f64),
                victims.to_string(),
            ]);
        }
    }
    rep.table(&t);
}

/// E3 — the checker discriminates: uncontrolled (chaos) systems are
/// rejected, increasingly so with contention and aborts.
fn e3_checker_discrimination(rep: &mut Report) {
    rep.section("e3", "E3 — checker discrimination on uncontrolled systems");
    let mut t = Table::new(&[
        "hotspot",
        "abort_p",
        "runs",
        "correct",
        "cyclic",
        "inappropriate",
    ]);
    for &(hotspot, abort_p) in &[(0.0, 0.0), (0.5, 0.0), (0.9, 0.0), (0.5, 0.03), (0.9, 0.03)] {
        let mut c = [0u64; 3];
        for seed in 0..SEEDS_PER_CELL {
            let spec = WorkloadSpec {
                seed: seed + 200,
                top_level: 10,
                objects: 2,
                hotspot,
                mix: OpMix::ReadWrite { read_ratio: 0.5 },
                ..WorkloadSpec::default()
            };
            let cfg = SimConfig {
                seed,
                abort_prob: abort_p,
                ..SimConfig::default()
            };
            let (_, outcome, _) = run_and_check(&spec, Protocol::Chaos, &cfg, true);
            match outcome {
                CheckOutcome::Correct => c[0] += 1,
                CheckOutcome::Cyclic => c[1] += 1,
                CheckOutcome::Inappropriate => c[2] += 1,
                CheckOutcome::Other => panic!("unexpected verdict"),
            }
        }
        t.row(vec![
            format!("{hotspot}"),
            format!("{abort_p}"),
            SEEDS_PER_CELL.to_string(),
            c[0].to_string(),
            c[1].to_string(),
            c[2].to_string(),
        ]);
    }
    rep.table(&t);
}

/// E4 — sufficiency, not necessity: a serially-correct behavior whose
/// graph is cyclic (see tests/sufficiency_gap.rs for the machine-checked
/// construction).
fn e4_sufficiency_gap(rep: &mut Report) {
    rep.section("e4", "E4 — acyclicity is sufficient, not necessary");
    // Count, among REJECTED chaos runs without aborts, how many are
    // nevertheless "value-coincidence serializable": we approximate by
    // re-checking with commutativity conflicts for the register type,
    // which ignores equal-value write/write conflicts the rw table keeps.
    let mut rejected_rw = 0u64;
    let mut also_rejected_general = 0u64;
    for seed in 0..60 {
        let spec = WorkloadSpec {
            seed: seed + 500,
            top_level: 10,
            objects: 2,
            hotspot: 0.8,
            mix: OpMix::ReadWrite { read_ratio: 0.6 },
            ..WorkloadSpec::default()
        };
        let mut w = spec.generate();
        let r = run_generic(&mut w, Protocol::Chaos, &SimConfig::default());
        let v_rw = check_serial_correctness(&w.tree, &r.trace, &w.types, ConflictSource::ReadWrite);
        if matches!(v_rw, Verdict::Cyclic { .. }) {
            rejected_rw += 1;
            let v_gen = check_serial_correctness(
                &w.tree,
                &r.trace,
                &w.types,
                ConflictSource::Types(&w.types),
            );
            if !v_gen.is_serially_correct() {
                also_rejected_general += 1;
            }
        }
    }
    let mut t = Table::new(&[
        "rw-cyclic runs",
        "still rejected by §6.1 conflicts",
        "accepted by finer relation",
    ]);
    t.row(vec![
        rejected_rw.to_string(),
        also_rejected_general.to_string(),
        (rejected_rw - also_rejected_general).to_string(),
    ]);
    rep.table(&t);
    println!(
        "(Plus the hand-constructed cyclic-yet-correct behavior in \
         tests/sufficiency_gap.rs, verified by explicit serial witness.)\n"
    );
}

/// E5 — checker scalability: SG construction + full check cost vs.
/// behavior length.
fn e5_sg_scaling(rep: &mut Report) {
    rep.section("e5", "E5 — serialization-graph checker scaling");
    let mut t = Table::new(&[
        "top-level txs",
        "events",
        "SG nodes",
        "SG edges",
        "build ms",
        "full check ms",
    ]);
    for &top in &[16usize, 32, 64, 128, 256, 512] {
        let spec = WorkloadSpec {
            seed: 7,
            top_level: top,
            objects: (top / 2).max(4),
            max_depth: 2,
            ..WorkloadSpec::default()
        };
        let mut w = spec.generate();
        let r = run_generic(
            &mut w,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig::default(),
        );
        let serial = serial_projection(&r.trace);
        let t0 = Instant::now();
        let g = build_sg(&w.tree, &serial, ConflictSource::ReadWrite);
        let build = t0.elapsed();
        let t1 = Instant::now();
        let verdict =
            check_serial_correctness(&w.tree, &r.trace, &w.types, ConflictSource::ReadWrite);
        let full = t1.elapsed();
        assert!(verdict.is_serially_correct());
        t.row(vec![
            top.to_string(),
            serial.len().to_string(),
            g.node_count().to_string(),
            g.edge_count().to_string(),
            format!("{:.2}", build.as_secs_f64() * 1e3),
            format!("{:.2}", full.as_secs_f64() * 1e3),
        ]);
    }
    rep.table(&t);
}

/// E6 — the concurrency benefit of nested locking over the serial
/// scheduler (the paper's §1 motivation), in scheduler rounds.
fn e6_concurrency_benefit(rep: &mut Report) {
    rep.section(
        "e6",
        "E6 — concurrency benefit: Moss locking vs serial scheduler",
    );
    let mut t = Table::new(&[
        "top-level txs",
        "objects",
        "serial rounds",
        "moss rounds",
        "speedup",
        "hot object (blocked)",
    ]);
    for &(top, objects) in &[(4usize, 8usize), (8, 8), (16, 16), (32, 32)] {
        let spec = WorkloadSpec {
            seed: 11,
            top_level: top,
            objects,
            mix: OpMix::ReadWrite { read_ratio: 0.6 },
            ..WorkloadSpec::default()
        };
        let mut ws = spec.generate();
        let rs = run_serial(&mut ws, &SimConfig::default());
        let mut wm = spec.generate();
        let rm = run_generic(
            &mut wm,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig::default(),
        );
        assert!(rs.quiescent && rm.quiescent);
        t.row(vec![
            top.to_string(),
            objects.to_string(),
            rs.rounds.to_string(),
            rm.rounds.to_string(),
            format!("{:.1}x", rs.rounds as f64 / rm.rounds as f64),
            hottest_object(&rm.blocked_by_object),
        ]);
    }
    rep.table(&t);
}

/// E7 — what the read/write lock distinction buys: read-ratio sweep,
/// Moss read/write vs exclusive-only locking.
fn e7_rw_vs_exclusive(rep: &mut Report) {
    rep.section("e7", "E7 — read/write locks vs exclusive-only locks");
    let mut t = Table::new(&[
        "read%",
        "rw rounds",
        "excl rounds",
        "rw wait",
        "excl wait",
        "rw victims",
        "excl victims",
    ]);
    for &read in &[0.0, 0.25, 0.5, 0.75, 0.95] {
        let mut acc = [0f64; 6];
        let n = 10u64;
        for seed in 0..n {
            let spec = WorkloadSpec {
                seed: seed + 900,
                top_level: 12,
                objects: 3,
                hotspot: 0.5,
                mix: OpMix::ReadWrite { read_ratio: read },
                ..WorkloadSpec::default()
            };
            let mut w1 = spec.generate();
            let r1 = run_generic(
                &mut w1,
                Protocol::Moss(LockMode::ReadWrite),
                &SimConfig {
                    seed,
                    ..SimConfig::default()
                },
            );
            let mut w2 = spec.generate();
            let r2 = run_generic(
                &mut w2,
                Protocol::Moss(LockMode::Exclusive),
                &SimConfig {
                    seed,
                    ..SimConfig::default()
                },
            );
            acc[0] += r1.rounds as f64;
            acc[1] += r2.rounds as f64;
            acc[2] += r1.wait_rounds as f64;
            acc[3] += r2.wait_rounds as f64;
            acc[4] += r1.deadlock_victims as f64;
            acc[5] += r2.deadlock_victims as f64;
        }
        let n = n as f64;
        t.row(vec![
            format!("{:.0}", read * 100.0),
            format!("{:.0}", acc[0] / n),
            format!("{:.0}", acc[1] / n),
            format!("{:.0}", acc[2] / n),
            format!("{:.0}", acc[3] / n),
            format!("{:.1}", acc[4] / n),
            format!("{:.1}", acc[5] / n),
        ]);
    }
    rep.table(&t);
}

/// E8 — nested construction vs the classical flat one, on flat workloads:
/// same verdicts, comparable cost (the generalization is cheap).
fn e8_nested_vs_classical(rep: &mut Report) {
    rep.section(
        "e8",
        "E8 — nested vs classical serialization graphs (flat workloads)",
    );
    let mut t = Table::new(&["runs", "agree", "nested ms (total)", "classical ms (total)"]);
    let mut agree = 0u64;
    let runs = 40u64;
    let mut nested_time = 0f64;
    let mut classical_time = 0f64;
    for seed in 0..runs {
        let spec = WorkloadSpec {
            seed: seed + 700,
            top_level: 12,
            objects: 3,
            max_depth: 0,
            hotspot: 0.5,
            ..WorkloadSpec::default()
        };
        let mut w = spec.generate();
        let r = run_generic(&mut w, Protocol::Chaos, &SimConfig::default());
        let serial = serial_projection(&r.trace);
        let t0 = Instant::now();
        let mut conflicts_only = nt_sgt::SerializationGraph::new();
        nt_sgt::conflict_edges(
            &w.tree,
            &serial,
            ConflictSource::ReadWrite,
            &mut conflicts_only,
        );
        let nested_acyclic = conflicts_only.is_acyclic();
        nested_time += t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let classical = build_classical_sg(&w.tree, &serial);
        let classical_acyclic = classical.is_acyclic();
        classical_time += t1.elapsed().as_secs_f64();
        if nested_acyclic == classical_acyclic {
            agree += 1;
        }
    }
    t.row(vec![
        runs.to_string(),
        format!("{agree}/{runs}"),
        format!("{:.2}", nested_time * 1e3),
        format!("{:.2}", classical_time * 1e3),
    ]);
    rep.table(&t);
}

/// E9 — commutativity benefit (§6 motivation): increment-heavy hotspot,
/// commuting counters under undo logging vs conflicting registers under
/// Moss locking.
fn e9_commutativity_benefit(rep: &mut Report) {
    rep.section("e9", "E9 — commutativity benefit on an increment hotspot");
    let mut t = Table::new(&[
        "top-level txs",
        "counter+undo rounds",
        "register+moss rounds",
        "counter victims",
        "register victims",
        "counter blocked",
        "register blocked",
    ]);
    for &top in &[8usize, 16, 32] {
        let counter_spec = WorkloadSpec {
            seed: 3,
            top_level: top,
            objects: 1,
            hotspot: 1.0,
            mix: OpMix::Counter { read_ratio: 0.05 },
            ..WorkloadSpec::default()
        };
        let register_spec = WorkloadSpec {
            mix: OpMix::ReadWrite { read_ratio: 0.05 },
            ..counter_spec.clone()
        };
        let mut wc = counter_spec.generate();
        let rc = run_generic(&mut wc, Protocol::Undo, &SimConfig::default());
        let mut wr = register_spec.generate();
        let rr = run_generic(
            &mut wr,
            Protocol::Moss(LockMode::ReadWrite),
            &SimConfig::default(),
        );
        assert!(rc.quiescent && rr.quiescent);
        t.row(vec![
            top.to_string(),
            rc.rounds.to_string(),
            rr.rounds.to_string(),
            rc.deadlock_victims.to_string(),
            rr.deadlock_victims.to_string(),
            hottest_object(&rc.blocked_by_object),
            hottest_object(&rr.blocked_by_object),
        ]);
    }
    rep.table(&t);
}

/// E12 — online SGT certification: the construction as a scheduler.
/// Correctness 100% (the gate enforces the Theorem 8 hypotheses), and on
/// write-heavy hotspots optimistic ordering beats lock waiting.
fn e12_certifier(rep: &mut Report) {
    rep.section("e12", "E12 — online SGT certification vs Moss locking");
    let mut t = Table::new(&[
        "read%",
        "hotspot",
        "runs",
        "correct",
        "cert rounds",
        "moss rounds",
        "cert victims",
        "moss victims",
    ]);
    for &(read, hotspot) in &[(0.05f64, 0.9f64), (0.5, 0.9), (0.5, 0.2), (0.9, 0.9)] {
        let n = 10u64;
        let mut correct = 0u64;
        let mut acc = [0f64; 4];
        for seed in 0..n {
            let spec = WorkloadSpec {
                seed: seed + 70,
                top_level: 12,
                objects: 2,
                hotspot,
                mix: OpMix::ReadWrite { read_ratio: read },
                ..WorkloadSpec::default()
            };
            let cfg = SimConfig {
                seed,
                ..SimConfig::default()
            };
            let (rc, outcome, _) = run_and_check(&spec, Protocol::Certifier, &cfg, true);
            if outcome == CheckOutcome::Correct {
                correct += 1;
            }
            let mut wm = spec.generate();
            let rm = run_generic(&mut wm, Protocol::Moss(LockMode::ReadWrite), &cfg);
            acc[0] += rc.rounds as f64;
            acc[1] += rm.rounds as f64;
            acc[2] += rc.deadlock_victims as f64;
            acc[3] += rm.deadlock_victims as f64;
        }
        let nf = n as f64;
        t.row(vec![
            format!("{:.0}", read * 100.0),
            format!("{hotspot}"),
            n.to_string(),
            format!("{correct}/{n}"),
            format!("{:.0}", acc[0] / nf),
            format!("{:.0}", acc[1] / nf),
            format!("{:.1}", acc[2] / nf),
            format!("{:.1}", acc[3] / nf),
        ]);
    }
    rep.table(&t);
}

/// E11 — multiversion timestamp ordering vs the §4 technique: every run
/// is serially correct (proved by pseudotime witness), but under
/// concurrency most runs escape the sufficient condition — acyclicity +
/// appropriate values is not necessary (the paper's own §1 caveat about
/// multiversion implementations).
fn e11_mvto_beyond_sgt(rep: &mut Report) {
    use nt_model::seq::{serial_projection, tx_projection};
    use nt_model::{SiblingOrder, TxId};
    use nt_sgt::reconstruct_witness;
    rep.section(
        "e11",
        "E11 — MVTO: serially correct yet outside the sufficient condition",
    );
    let mut t = Table::new(&[
        "txs",
        "hotspot",
        "seq%",
        "runs",
        "witness-correct",
        "SGT accepts",
        "SGT: inappropriate",
        "SGT: cyclic",
    ]);
    for &(top, hotspot, seqp) in &[
        (1usize, 0.0f64, 1.0f64), // strictly serial control
        (10, 0.0, 0.3),
        (10, 0.5, 0.3),
        (10, 0.9, 0.3),
    ] {
        let mut witness_ok = 0u64;
        let mut c = [0u64; 3];
        for seed in 0..SEEDS_PER_CELL {
            let spec = WorkloadSpec {
                seed: seed + 300,
                top_level: top,
                objects: 2,
                hotspot,
                sequential_prob: seqp,
                mix: OpMix::ReadWrite { read_ratio: 0.5 },
                ..WorkloadSpec::default()
            };
            let mut w = spec.generate();
            let r = run_generic(
                &mut w,
                Protocol::Mvto,
                &SimConfig {
                    seed,
                    ..SimConfig::default()
                },
            );
            assert!(r.quiescent);
            let serial = serial_projection(&r.trace);
            let order = SiblingOrder::from_lists(r.pseudotime_order.clone().unwrap());
            if let Ok(gamma) = reconstruct_witness(&w.tree, &serial, &order, &w.types) {
                if tx_projection(&w.tree, &gamma, TxId::ROOT)
                    == tx_projection(&w.tree, &serial, TxId::ROOT)
                {
                    witness_ok += 1;
                }
            }
            match check_serial_correctness(&w.tree, &r.trace, &w.types, ConflictSource::ReadWrite) {
                Verdict::SeriallyCorrect { .. } => c[0] += 1,
                Verdict::InappropriateReturnValues(_) => c[1] += 1,
                Verdict::Cyclic { .. } => c[2] += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        t.row(vec![
            top.to_string(),
            format!("{hotspot}"),
            format!("{:.0}", seqp * 100.0),
            SEEDS_PER_CELL.to_string(),
            format!("{witness_ok}/{SEEDS_PER_CELL}"),
            c[0].to_string(),
            c[1].to_string(),
            c[2].to_string(),
        ]);
    }
    rep.table(&t);
}

/// E10 — abort storms: correctness under heavy failure injection; undo
/// erasure and lock discard leave no trace.
fn e10_abort_storm(rep: &mut Report) {
    rep.section(
        "e10",
        "E10 — abort storm (recovery correctness under failures)",
    );
    let mut t = Table::new(&[
        "abort_p",
        "protocol",
        "runs",
        "correct",
        "avg committed top",
        "avg injected aborts",
    ]);
    for &abort_p in &[0.0, 0.01, 0.05, 0.2] {
        for (name, protocol, rw) in [
            ("moss", Protocol::Moss(LockMode::ReadWrite), true),
            ("undo/counter", Protocol::Undo, false),
        ] {
            let mut correct = 0u64;
            let mut committed = 0usize;
            let mut injected = 0usize;
            for seed in 0..SEEDS_PER_CELL {
                let spec = WorkloadSpec {
                    seed: seed + 77,
                    top_level: 10,
                    mix: if rw {
                        OpMix::ReadWrite { read_ratio: 0.5 }
                    } else {
                        OpMix::Counter { read_ratio: 0.3 }
                    },
                    ..WorkloadSpec::default()
                };
                let cfg = SimConfig {
                    seed,
                    abort_prob: abort_p,
                    ..SimConfig::default()
                };
                let (r, outcome, _) = run_and_check(&spec, protocol, &cfg, rw);
                if outcome == CheckOutcome::Correct {
                    correct += 1;
                }
                committed += r.committed_top;
                injected += r.injected_aborts;
            }
            t.row(vec![
                format!("{abort_p}"),
                name.into(),
                SEEDS_PER_CELL.to_string(),
                format!("{correct}/{SEEDS_PER_CELL}"),
                format!("{:.1}", committed as f64 / SEEDS_PER_CELL as f64),
                format!("{:.1}", injected as f64 / SEEDS_PER_CELL as f64),
            ]);
        }
    }
    rep.table(&t);
    let _ = TxId::ROOT;
}

/// Map a plan's protocol label onto the simulator protocol plus the
/// conflict source flavor the checker should use for it (`true` = the
/// read/write table). `"any"` — the library placeholder — defaults to Moss
/// read/write locking.
fn protocol_of(label: &str) -> (Protocol, bool) {
    match label {
        "moss-rw" | "any" => (Protocol::Moss(LockMode::ReadWrite), true),
        "moss-ex" => (Protocol::Moss(LockMode::Exclusive), true),
        "undo" => (Protocol::Undo, false),
        "mvto" => (Protocol::Mvto, true),
        "certifier" => (Protocol::Certifier, true),
        "chaos" => (Protocol::Chaos, true),
        other => panic!("unknown plan protocol {other:?}"),
    }
}

/// Expand a plan's embedded workload parameters into a full spec.
fn spec_of_plan(plan: &FaultPlan) -> WorkloadSpec {
    let pw = plan.workload.clone().unwrap_or_default();
    WorkloadSpec {
        seed: pw.seed,
        top_level: pw.top_level,
        objects: pw.objects,
        hotspot: pw.hotspot,
        mix: OpMix::ReadWrite {
            read_ratio: pw.read_ratio,
        },
        retry_attempts: pw.retry_attempts,
        ..WorkloadSpec::default()
    }
}

/// `--fault-plan PATH`: replay a serialized repro card end to end and gate
/// on its expected verdict.
fn replay_fault_plan(path: &str, fault_seed: Option<u64>) {
    let doc = std::fs::read_to_string(path).expect("read fault plan");
    let plan = FaultPlan::from_json(doc.trim()).expect("parse fault plan");
    let spec = spec_of_plan(&plan);
    let (protocol, rw) = protocol_of(&plan.protocol);
    let cfg = SimConfig {
        seed: plan.sim_seed,
        fault_seed: fault_seed.unwrap_or(plan.fault_seed),
        fault_plan: Some(plan.clone()),
        // Backoff only matters when the workload carries retry replicas;
        // leaving it off otherwise keeps the replay byte-faithful to runs
        // recorded without it.
        retry: (spec.retry_attempts > 0).then(BackoffPolicy::default),
        ..SimConfig::default()
    };
    let (r, outcome, _) = run_and_check(&spec, protocol, &cfg, rw);
    let verdict = if outcome == CheckOutcome::Correct {
        "serially-correct"
    } else {
        "violation"
    };
    println!(
        "fault-plan {:?} ({} events) on {}: {} faults injected, {} recoveries, verdict {verdict}",
        plan.name,
        plan.events.len(),
        protocol.name(),
        r.plan_faults,
        r.crash_recoveries,
    );
    if let Some(expect) = &plan.expect {
        assert_eq!(
            verdict, expect,
            "replay of {path} produced {verdict:?} but the plan expects {expect:?}"
        );
        println!("verdict matches the plan's expect field");
    }
}

/// The E14 chaos counterexample workload: gentle enough that chaos passes
/// the checker with no faults, so the fault plan is load-bearing. (Pinned
/// to the same card as `tests/fault_campaigns.rs` and the committed golden
/// plan `tests/golden/chaos_min.plan.json`.)
fn chaos_counterexample_spec() -> WorkloadSpec {
    WorkloadSpec {
        seed: 5,
        top_level: 3,
        objects: 2,
        hotspot: 0.0,
        mix: OpMix::ReadWrite { read_ratio: 0.6 },
        ..WorkloadSpec::default()
    }
}

/// Does chaos violate serial correctness under this plan (pinned seeds)?
fn chaos_fails_under(plan: &FaultPlan) -> bool {
    let mut w = chaos_counterexample_spec().generate();
    let cfg = SimConfig {
        seed: 2,
        fault_seed: 9,
        fault_plan: Some(plan.clone()),
        ..SimConfig::default()
    };
    let r = run_generic(&mut w, Protocol::Chaos, &cfg);
    !check_serial_correctness(&w.tree, &r.trace, &w.types, ConflictSource::ReadWrite)
        .is_serially_correct()
}

/// E14 — deterministic fault campaigns: under every plan in the shipped
/// library (storms, orphans, crashes, delayed and duplicated informs), the
/// recoverable protocols stay 100% serially correct with retry-with-backoff
/// salvaging victims; chaos under a plan produces a violation whose
/// minimized schedule is a small committed repro card.
fn e14_fault_campaigns(rep: &mut Report, fault_seed: u64) {
    rep.section(
        "e14",
        "E14 — fault-injection campaigns (recovery, retry, minimization)",
    );
    let n = 10u64;
    let mut t = Table::new(&[
        "plan",
        "protocol",
        "runs",
        "correct",
        "avg faults",
        "recoveries",
        "retries sched/salv/exh",
    ]);
    for plan in FaultPlan::library(fault_seed) {
        for (pname, protocol, rw) in [
            ("moss-rw", Protocol::Moss(LockMode::ReadWrite), true),
            ("undo", Protocol::Undo, false),
        ] {
            let mut correct = 0u64;
            let mut faults = 0usize;
            let mut recoveries = 0usize;
            let mut retry = [0u64; 3];
            for seed in 0..n {
                let spec = WorkloadSpec {
                    seed: seed + 11,
                    top_level: 6,
                    objects: 3,
                    hotspot: 0.5,
                    mix: OpMix::ReadWrite { read_ratio: 0.5 },
                    retry_attempts: 1,
                    ..WorkloadSpec::default()
                };
                let cfg = SimConfig {
                    seed,
                    fault_seed,
                    fault_plan: Some(plan.clone()),
                    retry: Some(BackoffPolicy::default()),
                    ..SimConfig::default()
                };
                let (r, outcome, _) = run_and_check(&spec, protocol, &cfg, rw);
                assert!(r.quiescent && !r.watchdog_fired, "campaign must finish");
                if outcome == CheckOutcome::Correct {
                    correct += 1;
                }
                faults += r.plan_faults;
                recoveries += r.crash_recoveries;
                retry[0] += r.retry.scheduled;
                retry[1] += r.retry.salvaged;
                retry[2] += r.retry.exhausted;
            }
            assert_eq!(
                correct, n,
                "recoverable protocols must be 100% correct under plan {:?}",
                plan.name
            );
            t.row(vec![
                plan.name.clone(),
                pname.into(),
                n.to_string(),
                format!("{correct}/{n}"),
                format!("{:.1}", faults as f64 / n as f64),
                recoveries.to_string(),
                format!("{}/{}/{}", retry[0], retry[1], retry[2]),
            ]);
        }
    }
    rep.table(&t);

    // The discrimination half: chaos under a campaign plan violates serial
    // correctness, and the minimizer shrinks the schedule to a small core
    // that replays to the same verdict (committed as
    // tests/golden/chaos_min.plan.json, re-validated in CI).
    assert!(
        !chaos_fails_under(&FaultPlan::new("empty", "chaos")),
        "baseline chaos run must pass so the faults are load-bearing"
    );
    let mut full = FaultPlan::new("chaos-campaign", "chaos");
    full.sim_seed = 2;
    full.fault_seed = 9;
    full.events = vec![
        FaultEvent {
            round: 2,
            kind: FaultKind::AbortStorm {
                rate: 0.6,
                window: 10,
            },
        },
        FaultEvent {
            round: 3,
            kind: FaultKind::AbortTx { tx: 5 },
        },
        FaultEvent {
            round: 4,
            kind: FaultKind::OrphanSubtree { tx: 3 },
        },
        FaultEvent {
            round: 5,
            kind: FaultKind::DelayInform { obj: 0, rounds: 4 },
        },
        FaultEvent {
            round: 6,
            kind: FaultKind::DuplicateInform { obj: 1 },
        },
    ];
    assert!(
        chaos_fails_under(&full),
        "chaos under the campaign plan must violate serial correctness"
    );
    let minimal = minimize(&full, chaos_fails_under);
    assert!(
        (1..=4).contains(&minimal.events.len()),
        "minimized counterexample must be small but non-empty"
    );
    assert!(
        chaos_fails_under(&minimal),
        "minimized plan must replay to the same verdict"
    );
    let mut t2 = Table::new(&[
        "baseline verdict",
        "full plan events",
        "full verdict",
        "minimized events",
        "minimized verdict",
    ]);
    t2.row(vec![
        "serially-correct".into(),
        full.events.len().to_string(),
        "violation".into(),
        minimal.events.len().to_string(),
        "violation".into(),
    ]);
    rep.table(&t2);
    println!(
        "(Minimized chaos schedule: {}; committed as tests/golden/chaos_min.plan.json.)\n",
        minimal
            .events
            .iter()
            .map(|e| format!("{}@{}", e.kind.name(), e.round))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
