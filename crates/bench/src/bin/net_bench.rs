//! Throughput harness for the networked server (`nt-net`), experiments
//! E16 and E21.
//!
//! E16 sweeps client connection counts over a contended closed-loop
//! workload against a fresh loopback server per cell (now fronted by the
//! `nt-reactor` event loop by default), keeping the *total* number of
//! top-level transactions constant so cells are comparable: more
//! connections means the same work arriving with more concurrency.
//!
//! E21 pushes the reactor out to 64 connections with `BATCH` framing:
//! per-connection work is held constant (so offered load scales with the
//! connection count) and every pipelined sibling-access run goes out as
//! batch frames — one syscall round-trip, and under durability one
//! group-commit barrier, per frame. A final cell mounts a WAL in
//! `group:100` durability with batching on, the configuration E19
//! measured at its slowest, to show the coalesced barrier amortizing.
//!
//! Each cell's recorded history is fetched over the wire and certified
//! against Theorem 17 post-hoc; a cell that fails certification fails
//! the whole harness. Results land in `BENCH_net.json`.
//!
//! ```sh
//! cargo run --release -p nt-bench --bin net_bench               # sweep
//! cargo run --release -p nt-bench --bin net_bench -- --smoke    # CI gate
//! cargo run --release -p nt-bench --bin net_bench -- --gc-sweep # debug:
//! #   just the group-commit cell across batch sizes 1..16
//! ```

use nt_bench::SmokeLine;
use nt_engine::DurabilityMode;
use nt_net::{fetch_and_certify, run_load, ConnConfig, LoadConfig, NetServer, ServerConfig};
use nt_obs::json::JsonObj;
use nt_telemetry::HistSnapshot;

const CONN_SWEEP: [usize; 4] = [1, 2, 4, 8];
const TOTAL_TOPS: usize = 64;

/// E21: the batched reactor sweep. Per-connection work is fixed at
/// [`E21_TOPS_PER_CONN`] so the offered load grows with the sweep.
const E21_SWEEP: [usize; 4] = [8, 16, 32, 64];
const E21_TOPS_PER_CONN: usize = 8;
const E21_BATCH: usize = 16;

fn sweep_load(connections: usize) -> LoadConfig {
    LoadConfig {
        connections,
        tops_per_conn: TOTAL_TOPS / connections,
        objects: 6,
        hotspot: 0.5,
        read_ratio: 0.5,
        max_depth: 2,
        seed: 16,
        // Closed-loop cells retry until the work commits: a cell's tops
        // are its denominator, so a gave-up top would skew the sweep.
        top_retries: 20,
        ..LoadConfig::default()
    }
}

fn e21_load(connections: usize) -> LoadConfig {
    LoadConfig {
        connections,
        tops_per_conn: E21_TOPS_PER_CONN,
        batch: E21_BATCH,
        // E21 measures *connection handling*, not lock contention: a wide
        // cold object space keeps 2PL conflicts (and their abort/backoff
        // noise) out of the sweep, so throughput tracks how the front end
        // scales with sockets — the thing the reactor changes.
        objects: 512,
        hotspot: 0.0,
        read_ratio: 0.7,
        max_depth: 2,
        seed: 21,
        top_retries: 20,
        ..LoadConfig::default()
    }
}

struct Row {
    connections: usize,
    batch: usize,
    committed: u64,
    aborted: u64,
    gave_up: u64,
    requests: u64,
    retries: u64,
    wall_us: u64,
    req_hist: HistSnapshot,
    top_hist: HistSnapshot,
    certified: bool,
    sg_nodes: usize,
    sg_edges: usize,
}

impl Row {
    fn throughput(&self) -> f64 {
        self.committed as f64 / (self.wall_us as f64 / 1e6)
    }

    fn to_json(&self) -> String {
        let (rp50, rp95, rp99) = self.req_hist.p50_p95_p99();
        let (tp50, tp95, tp99) = self.top_hist.p50_p95_p99();
        let mut o = JsonObj::new();
        o.num("connections", self.connections as u64)
            .num("batch", self.batch as u64)
            .float("wall_ms", self.wall_us as f64 / 1e3)
            .num("committed_tops", self.committed)
            .num("aborted_tops", self.aborted)
            .num("gave_up", self.gave_up)
            .num("requests", self.requests)
            .num("retries", self.retries)
            .float("throughput_tps", self.throughput())
            .num("request_us_p50", rp50)
            .num("request_us_p95", rp95)
            .num("request_us_p99", rp99)
            .num("top_us_p50", tp50)
            .num("top_us_p95", tp95)
            .num("top_us_p99", tp99)
            .bool("certified", self.certified)
            .num("sg_nodes", self.sg_nodes as u64)
            .num("sg_edges", self.sg_edges as u64);
        o.build()
    }
}

/// Run one sweep cell against a fresh loopback server.
fn run_cell(cfg: ServerConfig, load: &LoadConfig) -> Row {
    let connections = load.connections;
    let server = NetServer::bind(cfg).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.serve();
    let report = run_load(&addr, load).expect("load runs");
    let cert = fetch_and_certify(&addr, ConnConfig::from(load)).expect("history certifies");
    handle.wait();
    let row = Row {
        connections,
        batch: load.batch.max(1),
        committed: report.committed_tops,
        aborted: report.aborted_tops,
        gave_up: report.gave_up,
        requests: report.requests,
        retries: report.retries,
        wall_us: report.wall_us,
        req_hist: report.req_hist.clone(),
        top_hist: report.top_hist.clone(),
        certified: cert.is_serially_correct(),
        sg_nodes: cert.sg_nodes,
        sg_edges: cert.sg_edges,
    };
    let (rp50, rp95, _) = row.req_hist.p50_p95_p99();
    println!(
        "| {:5} | {:5} | {:8.1} | {:9} | {:7} | {:8} | {:10.1} | {:7} | {:7} | {:9} |",
        row.connections,
        row.batch,
        row.wall_us as f64 / 1e3,
        row.committed,
        row.aborted,
        row.requests,
        row.throughput(),
        rp50,
        rp95,
        if row.certified { "acyclic" } else { "FAILED" },
    );
    assert!(
        row.certified,
        "{connections} connections: recorded history failed certification"
    );
    assert_eq!(row.gave_up, 0, "tops exhausted their retry budget");
    row
}

/// The batched group-commit cell: the E19 durability configuration that
/// measured slowest (`group:100`), re-run with `BATCH` framing so one
/// `wait_durable` barrier covers a whole frame of ops. Compared in
/// `tools/check_benches.sh` against the unbatched `group:100` row of
/// `BENCH_store.json`.
fn run_group_commit_cell(batch: usize) -> Row {
    let dir = std::env::temp_dir().join(format!("nt-net-bench-gc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServerConfig {
        data_dir: Some(dir.to_string_lossy().into_owned()),
        durability: DurabilityMode::GroupCommit { window_us: 100 },
        ..ServerConfig::default()
    };
    // The E19 shape: 4 connections, 64 total tops — but batched.
    let load = LoadConfig {
        batch,
        ..sweep_load(4)
    };
    let row = run_cell(cfg, &load);
    let _ = std::fs::remove_dir_all(&dir);
    row
}

fn smoke() {
    // The CI gate: one 4-connection contended cell, certified, exit 0.
    let server = NetServer::bind(ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.serve();
    let load = LoadConfig {
        tops_per_conn: 8,
        ..sweep_load(4)
    };
    let report = run_load(&addr, &load).expect("load runs");
    let cert = fetch_and_certify(&addr, ConnConfig::from(&load)).expect("history certifies");
    handle.wait();
    SmokeLine::new("net-bench-smoke")
        .num("connections", load.connections as u64)
        .num("committed_tops", report.committed_tops)
        .num("aborted_tops", report.aborted_tops)
        .num("requests", report.requests)
        .num("sg_nodes", cert.sg_nodes as u64)
        .num("sg_edges", cert.sg_edges as u64)
        .percentiles("request_us", &report.req_hist)
        .percentiles("top_us", &report.top_hist)
        .bool("serially_correct", cert.is_serially_correct())
        .emit();
    assert!(cert.is_serially_correct(), "net smoke failed certification");
    assert!(report.committed_tops > 0, "net smoke committed nothing");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if std::env::args().any(|a| a == "--gc-sweep") {
        // Debug mode: just the group-commit cell across batch sizes.
        for b in [1usize, 2, 4, 8, 16] {
            let _ = run_group_commit_cell(b);
        }
        return;
    }
    println!(
        "| {:5} | {:5} | {:8} | {:9} | {:7} | {:8} | {:10} | {:7} | {:7} | {:9} |",
        "conns",
        "batch",
        "wall_ms",
        "committed",
        "aborted",
        "requests",
        "tput_tps",
        "p50_us",
        "p95_us",
        "SGT"
    );
    println!(
        "|-------|-------|----------|-----------|---------|----------|------------|---------|---------|-----------|"
    );
    // E16: fixed total work, unbatched, reactor front end (the default).
    let rows: Vec<Row> = CONN_SWEEP
        .iter()
        .map(|&c| run_cell(ServerConfig::default(), &sweep_load(c)))
        .collect();
    // E21: offered load scales with connections, batch frames on.
    let e21_rows: Vec<Row> = E21_SWEEP
        .iter()
        .map(|&c| run_cell(ServerConfig::default(), &e21_load(c)))
        .collect();
    // The batched group-commit cell (vs E19's unbatched group:100).
    let gc = run_group_commit_cell(E21_BATCH);
    let mut doc = JsonObj::new();
    doc.str("benchmark", "net_bench")
        .num(
            "host_cores",
            std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        )
        .num("total_tops", TOTAL_TOPS as u64)
        .raw(
            "rows",
            format!(
                "[{}]",
                rows.iter().map(Row::to_json).collect::<Vec<_>>().join(",")
            ),
        )
        .raw(
            "e21_rows",
            format!(
                "[{}]",
                e21_rows
                    .iter()
                    .map(Row::to_json)
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        )
        .raw("group_commit", gc.to_json());
    std::fs::write("BENCH_net.json", doc.build()).expect("write BENCH_net.json");
    eprintln!(
        "wrote BENCH_net.json ({} + {} cells + group-commit)",
        rows.len(),
        e21_rows.len()
    );
    assert!(
        rows.iter().chain(&e21_rows).all(|r| r.committed > 0) && gc.committed > 0,
        "every cell must commit work"
    );
}
