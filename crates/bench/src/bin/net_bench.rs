//! Throughput harness for the networked server (`nt-net`), experiment
//! E16.
//!
//! Sweeps client connection counts over a contended closed-loop workload
//! against a fresh loopback server per cell, keeping the *total* number
//! of top-level transactions constant so cells are comparable: more
//! connections means the same work arriving with more concurrency. Each
//! cell's recorded history is fetched over the wire and certified
//! against Theorem 17 post-hoc; a cell that fails certification fails
//! the whole harness. Results land in `BENCH_net.json`.
//!
//! ```sh
//! cargo run --release -p nt-bench --bin net_bench            # sweep
//! cargo run --release -p nt-bench --bin net_bench -- --smoke # CI gate
//! ```

use nt_bench::SmokeLine;
use nt_net::{fetch_and_certify, run_load, ConnConfig, LoadConfig, NetServer, ServerConfig};
use nt_obs::json::JsonObj;
use nt_telemetry::HistSnapshot;

const CONN_SWEEP: [usize; 4] = [1, 2, 4, 8];
const TOTAL_TOPS: usize = 64;

fn sweep_load(connections: usize) -> LoadConfig {
    LoadConfig {
        connections,
        tops_per_conn: TOTAL_TOPS / connections,
        objects: 6,
        hotspot: 0.5,
        read_ratio: 0.5,
        max_depth: 2,
        seed: 16,
        ..LoadConfig::default()
    }
}

struct Row {
    connections: usize,
    committed: u64,
    aborted: u64,
    gave_up: u64,
    requests: u64,
    retries: u64,
    wall_us: u64,
    req_hist: HistSnapshot,
    top_hist: HistSnapshot,
    certified: bool,
    sg_nodes: usize,
    sg_edges: usize,
}

impl Row {
    fn throughput(&self) -> f64 {
        self.committed as f64 / (self.wall_us as f64 / 1e6)
    }

    fn to_json(&self) -> String {
        let (rp50, rp95, rp99) = self.req_hist.p50_p95_p99();
        let (tp50, tp95, tp99) = self.top_hist.p50_p95_p99();
        let mut o = JsonObj::new();
        o.num("connections", self.connections as u64)
            .float("wall_ms", self.wall_us as f64 / 1e3)
            .num("committed_tops", self.committed)
            .num("aborted_tops", self.aborted)
            .num("gave_up", self.gave_up)
            .num("requests", self.requests)
            .num("retries", self.retries)
            .float("throughput_tps", self.throughput())
            .num("request_us_p50", rp50)
            .num("request_us_p95", rp95)
            .num("request_us_p99", rp99)
            .num("top_us_p50", tp50)
            .num("top_us_p95", tp95)
            .num("top_us_p99", tp99)
            .bool("certified", self.certified)
            .num("sg_nodes", self.sg_nodes as u64)
            .num("sg_edges", self.sg_edges as u64);
        o.build()
    }
}

/// Run one sweep cell against a fresh loopback server.
fn run_cell(connections: usize) -> Row {
    let server = NetServer::bind(ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.serve();
    let load = sweep_load(connections);
    let report = run_load(&addr, &load).expect("load runs");
    let cert = fetch_and_certify(&addr, ConnConfig::from(&load)).expect("history certifies");
    handle.wait();
    let row = Row {
        connections,
        committed: report.committed_tops,
        aborted: report.aborted_tops,
        gave_up: report.gave_up,
        requests: report.requests,
        retries: report.retries,
        wall_us: report.wall_us,
        req_hist: report.req_hist.clone(),
        top_hist: report.top_hist.clone(),
        certified: cert.is_serially_correct(),
        sg_nodes: cert.sg_nodes,
        sg_edges: cert.sg_edges,
    };
    let (rp50, rp95, _) = row.req_hist.p50_p95_p99();
    println!(
        "| {:5} | {:8.1} | {:9} | {:7} | {:8} | {:10.1} | {:7} | {:7} | {:9} |",
        row.connections,
        row.wall_us as f64 / 1e3,
        row.committed,
        row.aborted,
        row.requests,
        row.throughput(),
        rp50,
        rp95,
        if row.certified { "acyclic" } else { "FAILED" },
    );
    assert!(
        row.certified,
        "{connections} connections: recorded history failed certification"
    );
    assert_eq!(row.gave_up, 0, "tops exhausted their retry budget");
    row
}

fn smoke() {
    // The CI gate: one 4-connection contended cell, certified, exit 0.
    let server = NetServer::bind(ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr().to_string();
    let handle = server.serve();
    let load = LoadConfig {
        tops_per_conn: 8,
        ..sweep_load(4)
    };
    let report = run_load(&addr, &load).expect("load runs");
    let cert = fetch_and_certify(&addr, ConnConfig::from(&load)).expect("history certifies");
    handle.wait();
    SmokeLine::new("net-bench-smoke")
        .num("connections", load.connections as u64)
        .num("committed_tops", report.committed_tops)
        .num("aborted_tops", report.aborted_tops)
        .num("requests", report.requests)
        .num("sg_nodes", cert.sg_nodes as u64)
        .num("sg_edges", cert.sg_edges as u64)
        .percentiles("request_us", &report.req_hist)
        .percentiles("top_us", &report.top_hist)
        .bool("serially_correct", cert.is_serially_correct())
        .emit();
    assert!(cert.is_serially_correct(), "net smoke failed certification");
    assert!(report.committed_tops > 0, "net smoke committed nothing");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    println!(
        "| {:5} | {:8} | {:9} | {:7} | {:8} | {:10} | {:7} | {:7} | {:9} |",
        "conns",
        "wall_ms",
        "committed",
        "aborted",
        "requests",
        "tput_tps",
        "p50_us",
        "p95_us",
        "SGT"
    );
    println!(
        "|-------|----------|-----------|---------|----------|------------|---------|---------|-----------|"
    );
    let rows: Vec<Row> = CONN_SWEEP.iter().map(|&c| run_cell(c)).collect();
    let mut doc = JsonObj::new();
    doc.str("benchmark", "net_bench")
        .num(
            "host_cores",
            std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        )
        .num("total_tops", TOTAL_TOPS as u64)
        .raw(
            "rows",
            format!(
                "[{}]",
                rows.iter().map(Row::to_json).collect::<Vec<_>>().join(",")
            ),
        );
    std::fs::write("BENCH_net.json", doc.build()).expect("write BENCH_net.json");
    eprintln!("wrote BENCH_net.json ({} cells)", rows.len());
    assert!(
        rows.iter().all(|r| r.committed > 0),
        "every cell must commit work"
    );
}
