//! Minimal `poll(2)` readiness shim for the workspace, without `libc`.
//!
//! The rest of the tree is `forbid(unsafe_code)`; this shim is the second
//! crate (after `sigshim`) allowed to touch a C API, and it exposes exactly
//! one operation: block until any of a set of file descriptors is ready,
//! via POSIX `poll(2)`. `nt-reactor` builds its readiness event loop on
//! top of this, registering nonblocking sockets plus a self-pipe waker.
//!
//! The interest/readiness masks are the portable POSIX subset only
//! ([`POLLIN`], [`POLLOUT`]) plus the result-only bits the kernel may set
//! ([`POLLERR`], [`POLLHUP`], [`POLLNVAL`]). [`PollFd`] is `repr(C)` and
//! layout-identical to `struct pollfd` on every Unix this workspace
//! targets (fd `int`, events/revents `short`).
//!
//! On non-Unix targets [`poll`] degrades to an error return, never UB.

/// Readable (or, for a listener, accept-ready). Interest and result bit.
pub const POLLIN: i16 = 0x001;
/// Writable without blocking. Interest and result bit.
pub const POLLOUT: i16 = 0x004;
/// Error condition. Result-only bit; ignored in `events`.
pub const POLLERR: i16 = 0x008;
/// Peer hung up. Result-only bit; ignored in `events`.
pub const POLLHUP: i16 = 0x010;
/// The fd is not open. Result-only bit; ignored in `events`.
pub const POLLNVAL: i16 = 0x020;

/// One entry in a [`poll`] set: mirror of C `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollFd {
    /// File descriptor to watch (a negative fd is ignored by the kernel).
    pub fd: i32,
    /// Requested events (`POLLIN | POLLOUT` subset).
    pub events: i16,
    /// Returned events, written by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for the interest mask `events`, with `revents` cleared.
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// True when any requested or error/hangup event fired.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }

    /// True when the fd is readable (or the peer hung up, which also
    /// surfaces as a readable EOF to the caller's `read`).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// True when the fd is writable (errors count: the caller's `write`
    /// will surface the real errno).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR) != 0
    }
}

#[cfg(unix)]
mod imp {
    use super::PollFd;
    use std::io;

    // `nfds_t` is `unsigned long` on Linux and the BSDs this workspace
    // targets; `c_ulong` matches it on both 32- and 64-bit.
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
    }

    pub fn poll_impl(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `PollFd` is `repr(C)` and layout-identical to the C
        // `struct pollfd` (int, short, short); the pointer/length pair
        // comes from a live mutable slice, so the kernel writes `revents`
        // only inside bounds. `poll(2)` touches no other caller memory.
        let rc = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::PollFd;
    use std::io;

    pub fn poll_impl(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "poll(2) unavailable on this platform",
        ))
    }
}

/// Block until at least one fd in `fds` is ready, an error is pending, or
/// `timeout_ms` elapses (`-1` blocks indefinitely, `0` polls). Returns the
/// number of entries with nonzero `revents`. `EINTR` is surfaced as an
/// error (kind `Interrupted`); callers retry.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
    imp::poll_impl(fds, timeout_ms)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;

    #[test]
    fn pipe_pair_reports_readable_after_write() {
        let (mut tx, rx) = std::os::unix::net::UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        // Nothing written yet: a zero-timeout poll reports no readiness.
        assert_eq!(poll(&mut fds, 0).expect("poll"), 0);
        assert!(!fds[0].readable());
        tx.write_all(b"x").expect("write");
        let n = poll(&mut fds, 1000).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn writable_socket_reports_pollout() {
        let (tx, _rx) = std::os::unix::net::UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(tx.as_raw_fd(), POLLOUT)];
        let n = poll(&mut fds, 1000).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn timeout_zero_with_no_events_returns_zero() {
        let (_tx, rx) = std::os::unix::net::UnixStream::pair().expect("socketpair");
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 0).expect("poll"), 0);
        assert!(!fds[0].ready());
    }
}
