//! Minimal POSIX signal handling for the workspace, without `libc`.
//!
//! The rest of the tree is `forbid(unsafe_code)`; this shim is the one
//! crate that touches the C signal API, and it exposes exactly three
//! things: install flag-setting handlers for the two exit signals
//! (`SIGTERM`, `SIGINT`), poll which exit signal (if any) has been
//! delivered, and send a signal to a process (`kill(2)`, used by the
//! crash-campaign driver). The handler itself performs a single atomic
//! store — async-signal-safe per POSIX — so callers poll
//! [`last_signal`] from an ordinary thread and run their graceful-drain
//! logic outside signal context.
//!
//! On non-Unix targets everything degrades to a no-op: [`install_exit_handlers`]
//! and [`send`] return `false`, and [`last_signal`] stays `None`.

use std::sync::atomic::{AtomicI32, Ordering};

/// `SIGINT` (interactive interrupt, Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGKILL` (uncatchable; only meaningful as a [`send`] argument).
pub const SIGKILL: i32 = 9;
/// `SIGTERM` (polite termination request).
pub const SIGTERM: i32 = 15;

static LAST_SIGNAL: AtomicI32 = AtomicI32::new(0);

#[cfg(unix)]
mod imp {
    use super::LAST_SIGNAL;
    use std::sync::atomic::Ordering;

    type SigHandler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
        fn kill(pid: i32, sig: i32) -> i32;
    }

    extern "C" fn note(sig: i32) {
        // Async-signal-safe: one atomic store, no allocation, no locks.
        LAST_SIGNAL.store(sig, Ordering::Relaxed);
    }

    pub fn install(signum: i32) -> bool {
        // SAFETY: `signal(2)` replaces the process disposition for
        // `signum` with `note`, a static fn item that lives for the whole
        // program and performs only an atomic store (async-signal-safe).
        // The returned previous handler is intentionally discarded.
        let _prev = unsafe { signal(signum, note) };
        true
    }

    pub fn send(pid: u32, sig: i32) -> bool {
        let Ok(pid) = i32::try_from(pid) else {
            return false;
        };
        // SAFETY: `kill(2)` takes two plain integers and touches no
        // caller memory; any invalid pid/signal is reported via the
        // return value, not UB.
        (unsafe { kill(pid, sig) }) == 0
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install(_signum: i32) -> bool {
        false
    }

    pub fn send(_pid: u32, _sig: i32) -> bool {
        false
    }
}

/// Install flag-setting handlers for `SIGTERM` and `SIGINT`. Returns
/// `false` when the platform has no POSIX signals (non-Unix).
pub fn install_exit_handlers() -> bool {
    imp::install(SIGTERM) && imp::install(SIGINT)
}

/// Send `sig` to process `pid` (`kill(2)`). Returns `false` on failure
/// or on platforms without POSIX signals.
pub fn send(pid: u32, sig: i32) -> bool {
    imp::send(pid, sig)
}

/// The most recent exit signal delivered since
/// [`install_exit_handlers`], or `None`.
pub fn last_signal() -> Option<i32> {
    match LAST_SIGNAL.load(Ordering::Relaxed) {
        0 => None,
        s => Some(s),
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn handlers_catch_a_self_delivered_sigterm() {
        assert!(install_exit_handlers());
        assert_eq!(last_signal(), None);
        assert!(send(std::process::id(), SIGTERM));
        // Delivery is asynchronous; give the kernel a beat.
        for _ in 0..100 {
            if last_signal().is_some() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(last_signal(), Some(SIGTERM));
    }

    #[test]
    fn send_to_an_impossible_pid_fails() {
        assert!(!send(u32::MAX, 0));
    }
}
