//! Workspace-local stand-in for the subset of the `proptest` 1.x API this
//! workspace uses: the [`proptest!`] macro with a `proptest_config` inner
//! attribute, `prop_assert!`/`prop_assert_eq!`, [`strategy::Strategy`] with
//! `prop_map`/`boxed`, [`strategy::Just`], [`prop_oneof!`], [`any`],
//! integer-range strategies, tuple strategies, and
//! [`collection::vec`].
//!
//! The workspace builds in environments with no access to crates.io; this
//! crate keeps the property tests runnable there. Semantics match upstream
//! with two deliberate simplifications:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message instead of a minimized counterexample.
//! * **Deterministic runs.** Generation is seeded from a fixed seed, so a
//!   failure reproduces by re-running the test (upstream needs a
//!   regression file for that).

use std::fmt;

pub mod test_runner {
    //! Test-case driving: configuration and the RNG-bearing runner.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Subset of upstream's run configuration: the number of cases.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drives test-case generation: owns the RNG strategies draw from.
    pub struct TestRunner {
        rng: StdRng,
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner for the given configuration (fixed generation seed —
        /// see the crate docs).
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(0x5eed_cafe),
                config,
            }
        }

        /// A runner with a fixed seed and the default configuration
        /// (upstream's name for the same thing).
        pub fn deterministic() -> Self {
            TestRunner::new(ProptestConfig::default())
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Uniform draw below `n` (n > 0).
        pub fn below(&mut self, n: usize) -> usize {
            self.rng.gen_range(0..n)
        }

        /// Raw 64 random bits.
        pub fn bits(&mut self) -> u64 {
            self.rng.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRunner;
    use std::fmt;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generated value plus (upstream) its shrink state. Without
    /// shrinking this is just a value holder.
    pub trait ValueTree {
        /// The value type produced.
        type Value;
        /// The current candidate value.
        fn current(&self) -> Self::Value;
    }

    /// The single [`ValueTree`] implementation: a generated value.
    pub struct Candidate<T>(T);

    impl<T: Clone> ValueTree for Candidate<T> {
        type Value = T;
        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// A way of generating values of some type.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Clone + fmt::Debug + 'static;

        /// Generate one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Upstream's entry point: a value tree for one case. Never fails
        /// here; the `Result` keeps call sites (`.new_tree(..).unwrap()`)
        /// source-compatible.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<Candidate<Self::Value>, String>
        where
            Self: Sized,
        {
            Ok(Candidate(self.generate(runner)))
        }

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: Clone + fmt::Debug + 'static,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Arc<dyn ErasedStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    /// Object-safe generation, implemented blanket-wise for strategies.
    trait ErasedStrategy<T> {
        fn erased_generate(&self, runner: &mut TestRunner) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn erased_generate(&self, runner: &mut TestRunner) -> S::Value {
            self.generate(runner)
        }
    }

    impl<T: Clone + fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            self.0.erased_generate(runner)
        }
    }

    /// Always generates a clone of the held value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + fmt::Debug + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adaptor.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        U: Clone + fmt::Debug + 'static,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// Uniform choice among type-erased alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T: Clone + fmt::Debug + 'static> Union<T> {
        /// A union of the given (non-empty) alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: Clone + fmt::Debug + 'static> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, runner: &mut TestRunner) -> T {
            let i = runner.below(self.arms.len());
            self.arms[i].generate(runner)
        }
    }

    /// Full-range strategy behind [`crate::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    macro_rules! impl_any_int {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.bits() as $t
                }
            }
        )*};
    }

    impl_any_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, runner: &mut TestRunner) -> bool {
            runner.bits() & 1 == 1
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    use rand::SampleRange;
                    self.clone().sample_from(&mut Bits(runner))
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    use rand::SampleRange;
                    self.clone().sample_from(&mut Bits(runner))
                }
            }
        )*};
    }

    /// Adapts the runner's bit stream to the `rand` sampling traits.
    struct Bits<'a>(&'a mut TestRunner);

    impl rand::Rng for Bits<'_> {
        fn next_u64(&mut self) -> u64 {
            self.0.bits()
        }
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(runner),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// A strategy generating any value of `T` (full range for integers).
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRunner;
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for VecStrategy<S>
    where
        S: Strategy,
        S::Value: Clone + fmt::Debug + 'static,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + runner.below(span);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs, in one import.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Upstream re-exports the crate under this alias so call sites can
    /// say `prop::collection::vec(..)`.
    pub use crate as prop;
}

/// Assert inside a property (panics on failure; upstream would shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strategies = ($($strat,)+);
            for _case in 0..runner.cases() {
                let ($($arg,)+) = strategies.generate(&mut runner);
                $body
            }
        }
        $crate::__proptest_fns!{ $cfg; $($rest)* }
    };
}

/// Shared `Debug` plumbing used by generated code; kept public so macro
/// expansions can reference it.
#[doc(hidden)]
pub fn __debug_fmt<T: fmt::Debug>(t: &T) -> String {
    format!("{t:?}")
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::{Strategy, ValueTree};
    use crate::test_runner::TestRunner;

    #[test]
    fn ranges_tuples_and_vec_generate_in_bounds() {
        let mut runner = TestRunner::deterministic();
        let strat = (0i64..5, prop::collection::vec(any::<u8>(), 2..6));
        for _ in 0..200 {
            let (x, v) = strat.generate(&mut runner);
            assert!((0..5).contains(&x));
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_map_and_boxed_compose() {
        let mut runner = TestRunner::deterministic();
        let strat: BoxedStrategy<i64> =
            prop_oneof![Just(7i64), (0i64..3).prop_map(|x| x + 100),].boxed();
        let mut seen_just = false;
        let mut seen_mapped = false;
        for _ in 0..200 {
            let v = strat.new_tree(&mut runner).unwrap().current();
            match v {
                7 => seen_just = true,
                100..=102 => seen_mapped = true,
                other => panic!("unexpected value {other}"),
            }
        }
        assert!(seen_just && seen_mapped);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_multiple_args(
            xs in prop::collection::vec(any::<u16>(), 1..8),
            k in 0usize..4,
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(k.min(3), k);
        }
    }
}
