//! Workspace-local stand-in for the subset of the `rand` 0.8 API this
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over (inclusive and exclusive) integer ranges,
//! [`Rng::gen_bool`], and [`seq::SliceRandom`].
//!
//! The workspace builds in environments with no access to crates.io, and
//! every consumer seeds its generators explicitly for reproducibility, so a
//! small deterministic generator is all that is needed. The engine is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for
//! simulation workloads, *not* cryptographic.
//!
//! The stream differs from upstream `rand`'s `StdRng`, which is explicitly
//! permitted: upstream documents `StdRng` as non-portable across versions,
//! and nothing in the workspace depends on particular draws.

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed `u64`s plus the derived sampling
/// helpers the workspace uses.
pub trait Rng {
    /// The next raw 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A bool that is `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]` (matching upstream).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0,1]");
        // 53 random bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A value uniformly distributed over `range`.
    ///
    /// # Panics
    /// Panics if the range is empty (matching upstream).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// A range that can be sampled uniformly. Implemented for exclusive and
/// inclusive ranges over the primitive integer types.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Random selection and permutation of slices.
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let w: usize = rng.gen_range(1..=4);
            assert!((1..=4).contains(&w));
        }
        // All values of a small range are hit.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn gen_bool_extremes_and_rough_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn shuffle_permutes_and_choose_picks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
