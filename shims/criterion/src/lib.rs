//! Workspace-local stand-in for the subset of the `criterion` 0.5 API this
//! workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`]
//! / [`BenchmarkGroup::throughput`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! The workspace builds in environments with no access to crates.io; this
//! crate keeps `cargo bench` and `cargo test` compiling and running there.
//! It is a *smoke-run harness*, not a statistics engine: each benchmark is
//! warmed up once, timed over a small adaptive batch, and reported as a
//! single median-free `time/iter` line. Use the numbers for orders of
//! magnitude only; the workspace's real measurements live in
//! `nt-bench --bin experiments`.

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall-clock spent measuring one benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(50);
/// Cap on measured iterations per benchmark.
const MAX_ITERS: u64 = 1000;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(None, &id.into(), f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration workload size (printed, not analyzed).
    pub fn throughput(&mut self, t: Throughput) {
        match t {
            Throughput::Elements(n) => {
                println!("{}: throughput {} elements/iter", self.name, n);
            }
            Throughput::Bytes(n) => {
                println!("{}: throughput {} bytes/iter", self.name, n);
            }
        }
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into(), f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id, |b| f(b, input));
        self
    }

    /// End the group (upstream finalizes reports here; nothing to do).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from just a parameter (upstream convention).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Workload size declaration for a group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to each benchmark closure; runs and times the hot loop.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time repeated calls of `routine` (adaptive small batch).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also incidentally checks the routine runs at all).
        black_box(routine());
        let started = Instant::now();
        let mut iters = 0u64;
        while iters < MAX_ITERS && started.elapsed() < MEASURE_BUDGET {
            black_box(routine());
            iters += 1;
        }
        self.total = started.elapsed();
        self.iters = iters.max(1);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: Option<&str>, id: &BenchmarkId, mut f: F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    if b.iters == 0 {
        println!("bench {label}: routine never called b.iter()");
    } else {
        let per_iter = b.total.as_nanos() / u128::from(b.iters);
        println!("bench {label}: {per_iter} ns/iter ({} iters)", b.iters);
    }
}

/// An optimization barrier (re-export of the standard one).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("ungrouped", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
