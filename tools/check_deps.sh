#!/usr/bin/env bash
# Offline unused-dependency audit: every crate's [dependencies] entry
# must be referenced somewhere in that crate's sources (src/, tests/,
# benches/) as `crate_name::…`, `use crate_name`, or an attribute path.
# Workspace-internal and external deps are treated alike. This is a
# textual heuristic, not a resolver — but it catches the real failure
# mode (a dependency edge nobody imports), and it needs no network.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for manifest in crates/*/Cargo.toml; do
    crate_dir=$(dirname "$manifest")
    # Lines between [dependencies] and the next section header.
    deps=$(awk '/^\[dependencies\]/{on=1; next} /^\[/{on=0} on && NF {print $1}' "$manifest" \
        | sed 's/[=.].*//' | sort -u)
    for dep in $deps; do
        ident=${dep//-/_}
        if ! grep -rqE "\b${ident}(::|;| as )" "$crate_dir/src" \
            $( [ -d "$crate_dir/tests" ] && echo "$crate_dir/tests" ) \
            $( [ -d "$crate_dir/benches" ] && echo "$crate_dir/benches" ); then
            echo "check_deps: $manifest declares '$dep' but $crate_dir never references $ident" >&2
            fail=1
        fi
    done
done
if [ "$fail" -eq 0 ]; then
    echo "check_deps: all declared dependencies are referenced"
fi
exit "$fail"
