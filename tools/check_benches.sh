#!/usr/bin/env bash
# Every BENCH_*.json artifact named in EXPERIMENTS.md must be committed
# at the repo root and must parse as JSON — a measured table in the docs
# with no backing artifact (or a corrupt one) fails CI.
set -euo pipefail
cd "$(dirname "$0")/.."

mapfile -t benches < <(grep -o 'BENCH_[A-Za-z0-9_]*\.json' EXPERIMENTS.md | sort -u)
if [ "${#benches[@]}" -eq 0 ]; then
    echo "check_benches: EXPERIMENTS.md names no BENCH_*.json artifacts" >&2
    exit 1
fi

fail=0
for b in "${benches[@]}"; do
    if [ ! -f "$b" ]; then
        echo "check_benches: EXPERIMENTS.md names $b but it is not committed" >&2
        fail=1
        continue
    fi
    if ! python3 -m json.tool "$b" > /dev/null 2>&1; then
        echo "check_benches: $b is not valid JSON" >&2
        fail=1
        continue
    fi
    # Existing-but-untracked artifacts pass locally yet vanish in a
    # fresh checkout (a gitignore pattern can silently swallow them).
    if git rev-parse --is-inside-work-tree > /dev/null 2>&1 \
        && ! git ls-files --error-unmatch "$b" > /dev/null 2>&1; then
        echo "check_benches: $b exists but is not tracked by git (gitignored?)" >&2
        fail=1
        continue
    fi
    echo "check_benches: $b ok"
done

# The engine and net sweeps report tail latency, not just throughput:
# every row must carry p50/p95/p99 percentile fields (E18 discipline).
check_percentiles() {
    local file=$1
    shift
    python3 - "$file" "$@" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
rows = doc["rows"]
assert rows, f"{sys.argv[1]}: empty rows"
for prefix in sys.argv[2:]:
    for q in ("p50", "p95", "p99"):
        key = f"{prefix}_{q}"
        for row in rows:
            assert key in row, f"{sys.argv[1]}: row missing {key}"
EOF
}
for spec in "BENCH_engine.json top_us" "BENCH_net.json request_us top_us" \
    "BENCH_store.json request_us"; do
    # shellcheck disable=SC2086
    if check_percentiles $spec; then
        echo "check_benches: ${spec%% *} percentiles ok"
    else
        echo "check_benches: ${spec%% *} rows lack latency percentiles" >&2
        fail=1
    fi
done

# The durability sweep's whole point is the recovery gate: every cell
# must have certified both live and after a reopen of its directory.
if python3 - <<'EOF'
import json
doc = json.load(open("BENCH_store.json"))
for row in doc["rows"]:
    assert row["certified"], f"{row['mode']}: live run failed certification"
    assert row["reopen_certified"], f"{row['mode']}: recovery failed certification"
    assert row["reopen_history_len"] > 0, f"{row['mode']}: empty recovered history"
EOF
then
    echo "check_benches: BENCH_store.json recovery gate ok"
else
    echo "check_benches: BENCH_store.json rows failed the recovery gate" >&2
    fail=1
fi

# The live-certifier sweep (E20): every live cell must have certified
# ok with an advanced watermark, and the soak must show the watermark GC
# holding the resident graph far below the total work processed. The
# <5% overhead target assumes the certifier worker can overlap on its
# own core; on a single-core host its full CPU share lands in the
# throughput delta, so the bound is relaxed there (see EXPERIMENTS.md).
if python3 - <<'EOF'
import json
doc = json.load(open("BENCH_sgt.json"))
cores = doc["host_cores"]
limit = 5.0 if cores > 1 else 60.0
for row in doc["rows"]:
    c = row["connections"]
    assert row["cert_ok"], f"{c} conns: live certifier reported a violation"
    assert row["watermark"] > 0, f"{c} conns: watermark never advanced"
    assert row["overhead_pct"] < limit, (
        f"{c} conns: {row['overhead_pct']:.1f}% overhead exceeds "
        f"{limit}% ({cores}-core host)")
soak = doc["soak"]
assert soak["watermark_end"] > soak["watermark_start"], \
    "soak: watermark never advanced"
assert soak["max_resident_nodes"] < soak["tops_total"], (
    f"soak: resident graph ({soak['max_resident_nodes']} nodes) grew to "
    f"the total top count ({soak['tops_total']}) — GC is not pruning")
EOF
then
    echo "check_benches: BENCH_sgt.json live-certify gate ok"
else
    echo "check_benches: BENCH_sgt.json failed the live-certify gate" >&2
    fail=1
fi

# The reactor sweep (E21): every cell — E16 rows, E21 batched rows, and
# the group-commit cell — must have certified over the wire, and the
# batched sweep must hold its throughput out to 64 connections. On a
# multi-core host the reactor should be flat-to-monotone (tput@64 >=
# tput@8); a single core has no parallelism to expose, so only a bounded
# decline is required there (see EXPERIMENTS.md E21). The batched
# group-commit cell must beat the unbatched group:100 row of E19 on the
# same host (again with single-core slack for run-to-run noise).
if python3 - <<'EOF'
import json
doc = json.load(open("BENCH_net.json"))
cores = doc["host_cores"]
for row in doc["rows"] + doc["e21_rows"] + [doc["group_commit"]]:
    c = row["connections"]
    assert row["certified"], f"{c} conns: cell failed wire certification"
    assert row["committed_tops"] > 0, f"{c} conns: cell committed nothing"
    assert row["gave_up"] == 0, f"{c} conns: tops gave up"
by_conns = {r["connections"]: r for r in doc["e21_rows"]}
assert 8 in by_conns and 64 in by_conns, "E21 sweep missing endpoints"
t8 = by_conns[8]["throughput_tps"]
t64 = by_conns[64]["throughput_tps"]
floor = 1.0 if cores > 1 else 0.25
assert t64 >= t8 * floor, (
    f"E21: tput@64 ({t64:.0f} tps) fell below {floor:.2f}x tput@8 "
    f"({t8:.0f} tps) on a {cores}-core host")
store = json.load(open("BENCH_store.json"))
g100 = next(r for r in store["rows"] if r["mode"] == "group:100")
gc = doc["group_commit"]["throughput_tps"]
margin = 1.0 if cores > 1 else 0.7
assert gc >= g100["throughput_tps"] * margin, (
    f"E21: batched group-commit ({gc:.0f} tps) did not beat the "
    f"unbatched group:100 row ({g100['throughput_tps']:.0f} tps, "
    f"margin {margin:.2f} on {cores} cores)")
EOF
then
    echo "check_benches: BENCH_net.json reactor gate ok"
else
    echo "check_benches: BENCH_net.json failed the reactor gate" >&2
    fail=1
fi
exit "$fail"
